"""Setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
the package can be installed in editable mode on machines without the
``wheel`` package (legacy ``setup.py develop`` path used by
``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
