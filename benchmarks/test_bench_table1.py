"""Experiment ``table1``: regenerate the measured rows of the paper's Table 1.

Paper claim (Table 1): Algorithms A, B and C are efficient, constant-rate and
resilient to adversarial insertion/deletion noise at ε/m, ε/(m log m) and
ε/(m log log m) respectively, on arbitrary topologies; prior practical
baselines are not.

Shape we assert: on each benchmarked topology every Algorithm row succeeds in
every trial at its nominal noise level, the uncoded baseline fails, and the
coded schemes' overhead is bounded (constant-rate regime).
"""

from __future__ import annotations

import pytest


from repro.experiments.table1 import build_table1


@pytest.mark.parametrize("topology", ["line", "star"])
def test_table1_measured_rows(benchmark, run_once, topology):
    rows = run_once(
        benchmark,
        build_table1,
        topologies=(topology,),
        num_nodes=5,
        phases=10,
        trials=1,
        include_analytical=False,
    )
    benchmark.extra_info["rows"] = rows

    by_scheme = {row["scheme"]: row for row in rows}
    for scheme in ("Algorithm A", "Algorithm B", "Algorithm C"):
        assert by_scheme[scheme]["success_rate"] == 1.0, f"{scheme} failed on {topology}"
        assert by_scheme[scheme]["mean_overhead"] < 150
    assert by_scheme["uncoded"]["success_rate"] == 0.0
    assert by_scheme["repetition(3)"]["mean_overhead"] == pytest.approx(3.0)
