"""Throughput benchmarks of the simulator itself (not tied to one paper table).

These give a reference point for how expensive one noise-resilient simulation
is for each scheme preset on a small workload, and they double as regression
guards: every benchmarked run must succeed.

``test_batched_window_transport_speedup`` pins the batched-transport win: it
replays the exact window traffic of one noise-sweep cell (stochastic
insertion/deletion/substitution noise at the nominal fraction) through both
the batched and the single-slot transport paths, asserts bit-identical
deliveries and statistics, and requires the batched path to be ≥3× faster.
Its wall clock is persisted like every other benchmark, so
``benchmarks/check_perf_regression.py`` gates the batched numbers session
over session.
"""

from __future__ import annotations

import time

import pytest

from repro.adversary.strategies import RandomNoiseAdversary
from repro.core.config import DEFAULT_ENGINE_CONFIG
from repro.core.engine import InteractiveCodingSimulator, simulate
from repro.core.parameters import algorithm_a, algorithm_b, algorithm_c, crs_oblivious_scheme
from repro.experiments.factories import RandomNoiseFactory
from repro.experiments.workloads import aggregation_workload, gossip_workload
from repro.network.transport import NoisyNetwork


@pytest.mark.parametrize(
    "scheme_factory", [crs_oblivious_scheme, algorithm_a, algorithm_c], ids=["crs", "algorithm_a", "algorithm_c"]
)
def test_simulate_gossip_noiseless(benchmark, run_once, scheme_factory):
    workload = gossip_workload(topology="line", num_nodes=5, phases=12, seed=0)
    result = run_once(benchmark, simulate, workload.protocol, scheme=scheme_factory(), seed=1)
    benchmark.extra_info["overhead"] = result.overhead
    assert result.success


def test_simulate_gossip_algorithm_b_under_noise(benchmark, run_once):
    workload = gossip_workload(topology="line", num_nodes=5, phases=8, seed=0)
    scheme = algorithm_b()
    fraction = scheme.nominal_noise_fraction(workload.graph)
    adversary = RandomNoiseAdversary(corruption_probability=fraction, seed=2)
    result = run_once(benchmark, simulate, workload.protocol, scheme=scheme, adversary=adversary, seed=2)
    benchmark.extra_info["overhead"] = result.overhead
    assert result.success


def test_simulate_sparse_aggregation(benchmark, run_once):
    workload = aggregation_workload(topology="grid", num_nodes=9, value_bits=8, seed=0)
    result = run_once(benchmark, simulate, workload.protocol, scheme=crs_oblivious_scheme(), seed=3)
    benchmark.extra_info["overhead"] = result.overhead
    assert result.success


def _best_of(function, repetitions=5):
    """Minimum wall clock over several runs (robust against scheduler noise)."""
    best = None
    value = None
    for _ in range(repetitions):
        start = time.perf_counter()
        value = function()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best, value


def test_batched_window_transport_speedup(benchmark, run_once):
    """The symbol hot path: one noise-sweep cell's window traffic, both paths.

    The workload is a dense-graph gossip cell at the nominal noise level with
    the noise-sweep harness's stochastic adversary (``RandomNoiseFactory`` —
    substitutions/deletions plus insertions, so every silent slot is
    adversary-reachable).  The traffic is captured from a real trial, then
    replayed through the batched and the per-slot transport; both must agree
    bit for bit, and the batched path must be ≥3× faster.
    """
    workload = gossip_workload(topology="clique", num_nodes=8, phases=6, seed=0)
    scheme = crs_oblivious_scheme()
    fraction = scheme.nominal_noise_fraction(workload.graph)
    factory = RandomNoiseFactory(fraction=fraction)

    # Capture the cell's window-exchange workload from one real trial.  The
    # capture profile routes every window through ``exchange_window`` (the
    # default profile's packed/merged dispatches would bypass the spy and
    # starve the replay of the dense meeting-points windows this gate is
    # about; the packed layer has its own gate in
    # ``test_bench_packed_transport.py``).
    capture_config = DEFAULT_ENGINE_CONFIG.with_overrides(packed=False, merge_phases=False)
    captured = []
    sim = InteractiveCodingSimulator(
        workload.protocol, scheme=scheme, adversary=factory(0), seed=0, config=capture_config
    )
    original = sim.network.exchange_window

    def spy(messages, window_rounds, phase, iteration=-1, sparse=False):
        captured.append(
            ({link: list(symbols) for link, symbols in messages.items()}, window_rounds, phase, iteration)
        )
        return original(messages, window_rounds, phase, iteration, sparse=sparse)

    sim.network.exchange_window = spy
    assert sim.run().success
    assert captured, "the trial exchanged no windows?"

    def replay(batched):
        network = NoisyNetwork(workload.graph, adversary=factory(1))
        network.batched = batched
        deliveries = [
            network.exchange_window(messages, window_rounds, phase, iteration)
            for messages, window_rounds, phase, iteration in captured
        ]
        return deliveries, network.stats, network.current_round

    per_slot_seconds, per_slot_result = _best_of(lambda: replay(False))
    batched_seconds, batched_result = _best_of(lambda: replay(True))
    # The tentpole guarantee: the fast path changes nothing observable.
    assert batched_result == per_slot_result

    result = run_once(benchmark, lambda: replay(True))
    assert result[0] == batched_result[0]

    speedup = per_slot_seconds / batched_seconds
    benchmark.extra_info["windows_replayed"] = len(captured)
    benchmark.extra_info["per_slot_seconds"] = round(per_slot_seconds, 6)
    benchmark.extra_info["batched_seconds"] = round(batched_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 3.0, f"batched transport only {speedup:.2f}x faster than per-slot"


def test_simulate_noise_sweep_cell_end_to_end(benchmark, run_once):
    """Whole-trial wall clock of the same noise-sweep cell (batched path).

    Complements the transport replay above: this is the end-to-end number a
    sweep user sees, where hashing and protocol logic share the bill with the
    transport.  The per-slot end-to-end time is recorded in ``extra_info``
    for context (no hard ratio — Amdahl caps it well below the transport-only
    speedup).
    """
    workload = gossip_workload(topology="clique", num_nodes=8, phases=6, seed=0)
    scheme = crs_oblivious_scheme()
    fraction = scheme.nominal_noise_fraction(workload.graph)
    factory = RandomNoiseFactory(fraction=fraction)

    def run_cell(batched):
        successes = 0
        for seed in range(3):
            sim = InteractiveCodingSimulator(
                workload.protocol, scheme=scheme, adversary=factory(seed), seed=seed
            )
            sim.network.batched = batched
            successes += 1 if sim.run().success else 0
        return successes

    per_slot_seconds, per_slot_successes = _best_of(lambda: run_cell(False), repetitions=2)
    successes = run_once(benchmark, run_cell, True)
    assert successes == per_slot_successes == 3
    benchmark.extra_info["per_slot_seconds"] = round(per_slot_seconds, 6)
