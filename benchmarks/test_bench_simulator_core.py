"""Throughput benchmarks of the simulator itself (not tied to one paper table).

These give a reference point for how expensive one noise-resilient simulation
is for each scheme preset on a small workload, and they double as regression
guards: every benchmarked run must succeed.
"""

from __future__ import annotations

import pytest

from repro.adversary.strategies import RandomNoiseAdversary
from repro.core.engine import simulate
from repro.core.parameters import algorithm_a, algorithm_b, algorithm_c, crs_oblivious_scheme
from repro.experiments.workloads import aggregation_workload, gossip_workload


@pytest.mark.parametrize(
    "scheme_factory", [crs_oblivious_scheme, algorithm_a, algorithm_c], ids=["crs", "algorithm_a", "algorithm_c"]
)
def test_simulate_gossip_noiseless(benchmark, run_once, scheme_factory):
    workload = gossip_workload(topology="line", num_nodes=5, phases=12, seed=0)
    result = run_once(benchmark, simulate, workload.protocol, scheme=scheme_factory(), seed=1)
    benchmark.extra_info["overhead"] = result.overhead
    assert result.success


def test_simulate_gossip_algorithm_b_under_noise(benchmark, run_once):
    workload = gossip_workload(topology="line", num_nodes=5, phases=8, seed=0)
    scheme = algorithm_b()
    fraction = scheme.nominal_noise_fraction(workload.graph)
    adversary = RandomNoiseAdversary(corruption_probability=fraction, seed=2)
    result = run_once(benchmark, simulate, workload.protocol, scheme=scheme, adversary=adversary, seed=2)
    benchmark.extra_info["overhead"] = result.overhead
    assert result.success


def test_simulate_sparse_aggregation(benchmark, run_once):
    workload = aggregation_workload(topology="grid", num_nodes=9, value_bits=8, seed=0)
    result = run_once(benchmark, simulate, workload.protocol, scheme=crs_oblivious_scheme(), seed=3)
    benchmark.extra_info["overhead"] = result.overhead
    assert result.success
