"""Shared helpers for the benchmark harness.

Every benchmark runs the regenerating code for one experiment id of
DESIGN.md's experiment index exactly once per measurement round (the
experiment functions are relatively heavy), records the wall-clock time via
pytest-benchmark, and — more importantly — asserts the *qualitative shape*
the paper claims (who wins, what fails, what stays flat).  Absolute numbers
are recorded in ``benchmark.extra_info`` so they can be copied into
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

import pytest


@pytest.fixture
def run_once() -> Callable:
    """A helper that benchmarks a heavy experiment function with one round."""

    def _run(benchmark, function: Callable, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )

    return _run
