"""Shared helpers for the benchmark harness.

Every benchmark runs the regenerating code for one experiment id of
DESIGN.md's experiment index exactly once per measurement round (the
experiment functions are relatively heavy), records the wall-clock time via
pytest-benchmark, and — more importantly — asserts the *qualitative shape*
the paper claims (who wins, what fails, what stays flat).  Absolute numbers
are recorded in ``benchmark.extra_info`` so they can be copied into
EXPERIMENTS.md.

At session end every benchmark's wall-clock stats and ``extra_info`` are
persisted as one ``bench`` record in a :class:`repro.runtime.RunStore`
(default ``benchmarks/.bench-runs``; override with ``$REPRO_BENCH_STORE``,
disable with ``REPRO_BENCH_STORE=off``).  That gives the perf trajectory a
memory: ``repro runs diff latest~1 latest --kind bench --store-dir
benchmarks/.bench-runs`` compares two sessions benchmark by benchmark and
exits non-zero on regression — ``benchmarks/check_perf_regression.py`` wraps
exactly that for CI.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Optional

import pytest

BENCH_STORE_ENV = "REPRO_BENCH_STORE"
_DEFAULT_BENCH_STORE = Path(__file__).resolve().parent / ".bench-runs"
_DISABLED_VALUES = {"", "0", "off", "none", "disabled"}

#: Set when this session deselected tests (-k/-m); a partial session must not
#: become the `latest` baseline — its missing cells would never gate again.
_SESSION_DESELECTED = False


def pytest_deselected(items):
    global _SESSION_DESELECTED
    if items:
        _SESSION_DESELECTED = True


@pytest.fixture
def run_once() -> Callable:
    """A helper that benchmarks a heavy experiment function with one round."""

    def _run(benchmark, function: Callable, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )

    return _run


def bench_store_root() -> Optional[Path]:
    """The run-store directory for benchmark sessions, or None when disabled."""
    value = os.environ.get(BENCH_STORE_ENV)
    if value is not None:
        if value.strip().lower() in _DISABLED_VALUES:
            return None
        return Path(value)
    return _DEFAULT_BENCH_STORE


def pytest_sessionfinish(session, exitstatus):
    """Persist this session's benchmarks into the run store.

    Skipped when pytest-benchmark did not run anything (e.g. a tests/-only
    invocation), when the store is disabled via the environment, or when the
    session was partial — failed/interrupted, filtered with ``-k``/``-m``, or
    covering only a subset of the benchmark files.  A partial record would
    become `latest`, and every cell it is missing would show up as
    ``only-candidate``/``only-baseline`` in the next ``runs diff`` — which
    never gates — silently disarming the perf gate for those benchmarks.
    """
    if exitstatus != 0 or _SESSION_DESELECTED:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    root = bench_store_root()
    if root is None:
        return
    bench_dir = Path(__file__).resolve().parent
    all_files = {path.name for path in bench_dir.glob("test_*.py")}
    ran_files = {
        Path(str(bench.fullname).split("::")[0]).name for bench in bench_session.benchmarks
    }
    if not all_files <= ran_files:
        return  # path-subset session (e.g. `pytest benchmarks/test_bench_x.py`)
    from repro.runtime import RunStore  # deferred: needs repro on sys.path

    rows = []
    for bench in bench_session.benchmarks:
        try:
            stats = bench.stats
            row = {
                "name": bench.name,
                "fullname": bench.fullname,
                "group": bench.group,
                "mean_seconds": stats.mean,
                "min_seconds": stats.min,
                "max_seconds": stats.max,
                "stddev_seconds": stats.stddev,
                "rounds": stats.rounds,
                "extra_info": dict(bench.extra_info),
            }
        except Exception:  # a benchmark that errored mid-run has no stats
            continue
        rows.append(row)
    if not rows:
        return
    run_id = RunStore(root).record_bench(rows)
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    message = f"benchmark run persisted as {run_id} in {root}"
    if terminal is not None:
        terminal.write_line(message)
    else:  # pragma: no cover - no terminal reporter active
        print(message)
