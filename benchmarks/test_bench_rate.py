"""Experiment ``thm1_1_rate``: constant communication rate (Theorem 1.1).

Paper claim: the simulated protocol communicates O(CC(Π)) bits — the overhead
factor does not grow with the length of the underlying protocol, nor
(as a rate) with the size of the network.

Shape we assert: tripling/sextupling CC(Π) does not increase the overhead
(it typically decreases as fixed costs amortise), and the overhead across
network sizes stays within a constant band.
"""

from __future__ import annotations



from repro.core.parameters import algorithm_a, crs_oblivious_scheme
from repro.experiments.theorem_validation import rate_vs_network_size, rate_vs_protocol_size


def test_overhead_flat_in_protocol_size(benchmark, run_once):
    points = run_once(
        benchmark,
        rate_vs_protocol_size,
        crs_oblivious_scheme(),
        phases_grid=(8, 24, 48),
        topology="clique",
        num_nodes=5,
        trials=1,
    )
    benchmark.extra_info["series"] = [point.as_dict() for point in points]
    assert all(point.success_rate == 1.0 for point in points)
    overheads = [point.overhead for point in points]
    assert overheads[-1] <= overheads[0] * 1.25, "overhead must not grow with CC(Pi)"


def test_overhead_flat_in_protocol_size_with_noise(benchmark, run_once):
    points = run_once(
        benchmark,
        rate_vs_protocol_size,
        algorithm_a(),
        phases_grid=(8, 32),
        topology="line",
        num_nodes=5,
        trials=1,
        noisy=True,
    )
    benchmark.extra_info["series"] = [point.as_dict() for point in points]
    assert points[-1].overhead <= points[0].overhead * 1.5


def test_rate_constant_across_network_sizes(benchmark, run_once):
    points = run_once(
        benchmark,
        rate_vs_network_size,
        crs_oblivious_scheme(),
        node_grid=(4, 6, 8),
        topology="line",
        phases=12,
        trials=1,
    )
    benchmark.extra_info["series"] = [point.as_dict() for point in points]
    overheads = [point.overhead for point in points]
    assert max(overheads) / min(overheads) < 3.0, "the rate must stay Theta(1) as m grows"
