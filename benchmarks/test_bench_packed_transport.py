"""Perf gate for the packed transport hot path (PR 10).

The packed plane pair ``(bits, present)`` carries a whole window per directed
link as two integers: one adversary kernel call, one whole-register stats
update and one dispatch per link, instead of one ``transmit`` per slot.  The
workload replays the window mix of ``scripts/profile_hotpath.py``'s
representative trial (gossip clique n=8, CRS scheme, nominal noise): dense
``4·τ``-round meeting-points windows on every directed link plus thin sparse
single-round phase windows, under a slot-addressed additive-oblivious pattern
at the trial's nominal noise fraction.

Shape we gate: the packed exchange must be at least **5× faster** than the
PR-9-era reference path (the per-slot ``batched=False`` dispatch that
``REFERENCE_ENGINE_CONFIG`` selects), while producing bit-identical
``ChannelStats`` — the equivalence itself is pinned much harder by
``tests/test_transport.py`` and the packed mode of
``tests/test_phase_merge_fuzz.py``.  Plane packing on the sender side is
*inside* the timed region: the gate covers the end-to-end cost of choosing
the packed representation, not just the kernel.  The measurement is recorded
in ``.bench-runs`` like every other benchmark, so ``check_perf_regression.py``
gates the trajectory session over session.
"""

from __future__ import annotations

import time

from repro.adversary.oblivious import AdditiveObliviousAdversary
from repro.core.parameters import crs_oblivious_scheme
from repro.experiments.workloads import gossip_workload
from repro.network.transport import NoisyNetwork
from repro.utils.rng import make_rng

#: The representative trial's meeting-points window: 4 hashes of τ bits each.
_DENSE_WINDOW = 32
#: Iterations replayed — enough dense windows that the measurement dwarfs
#: timer noise while staying well under a second on the reference path.
_ITERATIONS = 12
#: Thin phase windows (flag passing / simulation / rewind rounds) per
#: iteration, and the fraction of links that carry traffic in each.
_THIN_WINDOWS = 10
_THIN_DENSITY = 0.3


def _workload():
    """Graph, oblivious pattern and per-window traffic, all deterministic."""
    graph = gossip_workload("clique", 8, 6, seed=0).protocol.graph
    fraction = crs_oblivious_scheme().nominal_noise_fraction(graph)
    pattern_rng = make_rng(11)
    pattern = {}
    total_rounds = _ITERATIONS * (_DENSE_WINDOW + _THIN_WINDOWS)
    for round_index in range(total_rounds):
        for link in graph.directed_edges():
            if pattern_rng.random() < fraction:
                pattern[(round_index,) + link] = pattern_rng.choice((1, 2))
    traffic_rng = make_rng(5)
    dense = [
        {
            link: [traffic_rng.choice((0, 1)) for _ in range(_DENSE_WINDOW)]
            for link in graph.directed_edges()
        }
        for _ in range(_ITERATIONS)
    ]
    thin = [
        [
            {
                link: [traffic_rng.choice((0, 1))]
                for link in graph.directed_edges()
                if traffic_rng.random() < _THIN_DENSITY
            }
            for _ in range(_THIN_WINDOWS)
        ]
        for _ in range(_ITERATIONS)
    ]
    return graph, pattern, dense, thin


def _per_slot_seconds(graph, pattern, dense, thin):
    """The PR-9-era reference: one ``transmit`` per slot of every window."""
    network = NoisyNetwork(
        graph, adversary=AdditiveObliviousAdversary(pattern=pattern), batched=False
    )
    start = time.perf_counter()
    for iteration, window in enumerate(dense):
        network.exchange_window(window, _DENSE_WINDOW, "meeting_points", iteration)
        for messages in thin[iteration]:
            network.exchange_window(messages, 1, "simulation", iteration)
    return time.perf_counter() - start, network


def _packed_seconds(graph, pattern, dense, thin):
    """The packed path: ``(bits, present)`` planes through one kernel per link."""
    network = NoisyNetwork(
        graph, adversary=AdditiveObliviousAdversary(pattern=pattern), batched=True
    )
    full = (1 << _DENSE_WINDOW) - 1
    start = time.perf_counter()
    for iteration, window in enumerate(dense):
        planes = {}
        for link, symbols in window.items():
            bits = 0
            for position, symbol in enumerate(symbols):
                if symbol:
                    bits |= 1 << position
            planes[link] = (bits, full)
        network.exchange_window_packed(planes, _DENSE_WINDOW, "meeting_points", iteration)
        for messages in thin[iteration]:
            network.exchange_window_packed(
                {link: (symbols[0], 1) for link, symbols in messages.items()},
                1,
                "simulation",
                iteration,
            )
    return time.perf_counter() - start, network


def test_packed_transport_is_at_least_five_times_as_fast(benchmark, run_once):
    """The packed-transport gate: ≥5× over per-slot dispatch, same stats."""
    graph, pattern, dense, thin = _workload()

    def measure(runner):
        # Best of two runs per path: a scheduling spike on a shared CI runner
        # must hit both attempts to move the measurement.
        first_seconds, first_network = runner(graph, pattern, dense, thin)
        second_seconds, second_network = runner(graph, pattern, dense, thin)
        assert vars(first_network.stats) == vars(second_network.stats)
        return min(first_seconds, second_seconds), first_network

    def compare():
        reference_seconds, reference_network = measure(_per_slot_seconds)
        packed_seconds, packed_network = measure(_packed_seconds)
        # The two dispatch shapes must account identically before their
        # timings are comparable at all.
        assert vars(packed_network.stats) == vars(reference_network.stats)
        assert packed_network.current_round == reference_network.current_round
        assert packed_network.packed_dispatches > 0
        assert reference_network.packed_dispatches == 0
        return reference_seconds, packed_seconds

    reference_seconds, packed_seconds = run_once(benchmark, compare)
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 6)
    benchmark.extra_info["packed_seconds"] = round(packed_seconds, 6)
    benchmark.extra_info["speedup"] = round(reference_seconds / packed_seconds, 2)
    benchmark.extra_info["dense_window_rounds"] = _DENSE_WINDOW
    benchmark.extra_info["iterations"] = _ITERATIONS
    benchmark.extra_info["directed_links"] = len(graph.directed_edges())
    assert reference_seconds >= 5 * packed_seconds, (
        f"packed transport only {reference_seconds / packed_seconds:.2f}x faster "
        f"(per-slot {reference_seconds * 1e3:.1f} ms, packed {packed_seconds * 1e3:.1f} ms)"
    )
