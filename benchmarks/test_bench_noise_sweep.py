"""Experiment ``thm1_1_success``: success probability around the nominal noise level.

Paper claim (Theorem 1.1): Algorithm A succeeds with probability
1 − exp(−Ω(|Π|)) as long as at most an ε/m fraction of the communication is
corrupted (for sufficiently small ε).

Shape we assert: the empirical success rate is 1.0 at and below the nominal
level and collapses far above it (the crossover sits at some multiplier > 1).
"""

from __future__ import annotations



from repro.core.parameters import crs_oblivious_scheme
from repro.experiments.noise_sweep import crossover_multiplier, noise_sweep
from repro.experiments.workloads import gossip_workload


def test_success_vs_noise_curve(benchmark, run_once):
    workload = gossip_workload(topology="line", num_nodes=5, phases=10, seed=0)
    points = run_once(
        benchmark,
        noise_sweep,
        workload,
        crs_oblivious_scheme(),
        multipliers=(0.5, 1.0, 16.0, 64.0),
        trials=2,
    )
    benchmark.extra_info["curve"] = [point.as_dict() for point in points]

    by_multiplier = {point.multiplier: point for point in points}
    assert by_multiplier[0.5].success_rate == 1.0
    assert by_multiplier[1.0].success_rate == 1.0
    assert by_multiplier[64.0].success_rate == 0.0
    crossover = crossover_multiplier(points)
    assert crossover is not None and crossover > 1.0
