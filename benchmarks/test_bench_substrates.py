"""Experiment ``small_bias_quality`` plus raw substrate throughput.

These benchmarks time the three cryptographic/coding substrates the scheme is
built on and check the properties the analysis needs from them:

* the inner-product hash has ≈2^-τ collision rate over random seeds
  (Lemma 2.3),
* the AGHP δ-biased generator produces nearly balanced bits from a short
  seed (Lemma 2.5), and
* the Reed–Solomon-based binary code corrects the erasure/substitution mix
  the randomness exchange faces (Theorem 2.1).
"""

from __future__ import annotations

import random


from repro.coding.block_code import BinaryBlockCode
from repro.hashing.inner_product import FINGERPRINT_BITS, InnerProductHash, fingerprint_bits
from repro.hashing.small_bias import SmallBiasGenerator, empirical_bias


def test_inner_product_hash_collision_rate(benchmark):
    hasher = InnerProductHash(8)
    rng = random.Random(0)
    x = fingerprint_bits(b"transcript-one")
    y = fingerprint_bits(b"transcript-two")

    def measure(trials: int = 400) -> float:
        collisions = 0
        for _ in range(trials):
            seed = rng.getrandbits(hasher.seed_bits_required(FINGERPRINT_BITS))
            if hasher.digest(x, FINGERPRINT_BITS, seed) == hasher.digest(y, FINGERPRINT_BITS, seed):
                collisions += 1
        return collisions / trials

    rate = benchmark(measure)
    benchmark.extra_info["collision_rate"] = rate
    assert rate <= 6 * hasher.collision_probability()


def test_small_bias_generator_quality_and_throughput(benchmark):
    generator = SmallBiasGenerator(seed_bits=random.Random(3).getrandbits(128), field_degree=64)
    bits = benchmark(generator.bits, 0, 2000)
    bias = empirical_bias(bits)
    benchmark.extra_info["empirical_bias"] = bias
    assert len(bits) == 2000
    assert bias < 0.12


def test_randomness_exchange_code_round_trip(benchmark):
    code = BinaryBlockCode(message_bits=128)
    rng = random.Random(1)
    message = [rng.getrandbits(1) for _ in range(128)]

    def roundtrip():
        word = code.encode(message)
        for index in rng.sample(range(len(word)), int(0.03 * len(word))):
            word[index] = None if rng.random() < 0.5 else 1 - word[index]
        return code.decode(word)

    decoded = benchmark(roundtrip)
    assert decoded == message
