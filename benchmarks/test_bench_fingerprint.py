"""Infrastructure benchmark: workload-canonicalisation memoization.

Not a paper experiment — a micro-benchmark for the sweep-fingerprint hot
path.  A sweep grid shares one workload/scheme/factory object across every
trial; before memoization, ``fingerprint_trial`` re-walked the whole workload
(graph, protocol, inputs) once *per trial*.  The identity memo in
``repro.runtime.spec`` walks each unique object once and serves the canonical
payload from then on.

Shape we assert: on a large grid the memoized path canonicalises each of the
three shared ingredients exactly once (``payload_memo_stats``), produces the
same digests as unmemoised fingerprinting, and is measurably faster (≥2× here;
in practice far more — the assertion is loose so a noisy CI box cannot flake).
"""

from __future__ import annotations

import hashlib
import json
import time

from repro.core.parameters import algorithm_a
from repro.experiments.factories import RandomNoiseFactory
from repro.experiments.workloads import gossip_workload
from repro.runtime.spec import (
    TRIAL_KEY_SCHEMA,
    _package_version,
    build_trial_specs,
    canonical_payload,
    clear_payload_memo,
    derive_trial_seed,
    fingerprint_trial,
    payload_memo_stats,
)

GRID_TRIALS = 300


def _grid_specs():
    workload = gossip_workload(topology="line", num_nodes=6, phases=10)
    scheme = algorithm_a()
    factory = RandomNoiseFactory(fraction=0.004)
    seeds = [derive_trial_seed(0, trial) for trial in range(GRID_TRIALS)]
    return build_trial_specs(workload, scheme, factory, seeds)


def _fingerprint_unmemoized(spec) -> str:
    """The pre-memoization fingerprint path: canonicalise every ingredient
    per trial (kept here as the baseline the memo is measured against)."""
    payload = {
        "schema": TRIAL_KEY_SCHEMA,
        "version": _package_version(),
        "workload": canonical_payload(spec.workload)[0],
        "scheme": canonical_payload(spec.scheme)[0],
        "adversary_factory": canonical_payload(spec.adversary_factory)[0],
        "seed": spec.seed,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def test_fingerprint_memoization_on_a_large_grid(benchmark):
    # Baseline: per-trial canonicalisation over the whole grid.
    baseline_specs = _grid_specs()
    started = time.perf_counter()
    baseline_digests = [_fingerprint_unmemoized(spec) for spec in baseline_specs]
    unmemoized_seconds = time.perf_counter() - started

    # Memoized: what execute_trials actually runs.  Fresh specs per round and
    # a cleared memo, so every round measures a full cold-start grid.
    def setup():
        clear_payload_memo()
        return (_grid_specs(),), {}

    def fingerprint_grid(specs):
        return [fingerprint_trial(spec) for spec in specs]

    keys = benchmark.pedantic(fingerprint_grid, setup=setup, rounds=3, iterations=1)
    memoized_seconds = benchmark.stats.stats.mean

    benchmark.extra_info["grid_trials"] = GRID_TRIALS
    benchmark.extra_info["unmemoized_seconds"] = unmemoized_seconds
    benchmark.extra_info["memoized_seconds"] = memoized_seconds
    benchmark.extra_info["speedup"] = unmemoized_seconds / memoized_seconds

    # Same digests, bit for bit — memoization must not change the key space.
    assert [key.digest for key in keys] == baseline_digests
    assert all(key.stable for key in keys)

    # Each unique ingredient (workload, scheme, factory) was walked exactly
    # once; every other trial hit the memo.
    clear_payload_memo()
    stats_specs = _grid_specs()
    fingerprint_grid(stats_specs)
    stats = payload_memo_stats()
    assert stats["misses"] == 3
    assert stats["hits"] == 3 * (GRID_TRIALS - 1)

    assert unmemoized_seconds / memoized_seconds >= 2.0
