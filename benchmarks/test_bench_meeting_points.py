"""Experiment ``meeting_points_convergence``: cost of the per-link correction.

Paper claim (§4.2 / Appendix A): the meeting-points mechanism lets two
parties whose transcripts diverge by B chunks reconverge within O(B) hash
exchanges, truncating at most O(B) chunks beyond the common prefix.

Shape we assert: for synthetic divergences B ∈ {1, 2, 4} the number of
exchanges needed grows roughly linearly (well within a 8·B + 8 envelope) and
the truncation overshoot stays bounded.

This file also gates the meeting-points **hashing fast path**: a
representative iteration workload (two lockstep sessions on one
exchanged-seed link, the hot shape of Algorithms A/B) must run at least 2×
faster through the batched path (``seeds_for_iteration`` + ``digest_many`` +
table-driven δ-biased expansion) than through the per-call / per-bit
reference path, while the equivalence suite in
``tests/test_hashing_equivalence.py`` pins the two bit-identical.
"""

from __future__ import annotations

import time

import pytest

from repro.core.meeting_points import STATUS_SIMULATE, MeetingPointsSession
from repro.core.transcript import ChunkRecord, LinkTranscript
from repro.hashing.inner_product import InnerProductHash
from repro.hashing.seeds import CrsSeedSource, ExchangedSeedSource


def _transcript(owner, neighbor, payloads):
    transcript = LinkTranscript(owner, neighbor)
    for index, payload in enumerate(payloads, start=1):
        transcript.append(ChunkRecord(chunk_index=index, link_view=payload))
    return transcript


def _converge(divergence: int, common_length: int = 8, master_seed: int = 5):
    common = [(1, 0)] * common_length
    transcript_u = _transcript(0, 1, common + [(0, 0)] * divergence)
    transcript_v = _transcript(1, 0, common + [(1, 1)] * divergence)
    hasher = InnerProductHash(12)
    session_u = MeetingPointsSession(hasher=hasher, seed_source=CrsSeedSource(master_seed, (0, 1)))
    session_v = MeetingPointsSession(hasher=hasher, seed_source=CrsSeedSource(master_seed, (0, 1)))
    for iteration in range(200):
        message_u = session_u.build_message(iteration, transcript_u)
        message_v = session_v.build_message(iteration, transcript_v)
        outcome_u = session_u.process_reply(iteration, transcript_u, message_v)
        outcome_v = session_v.process_reply(iteration, transcript_v, message_u)
        if outcome_u.truncate_to is not None:
            transcript_u.truncate_to(outcome_u.truncate_to)
        if outcome_v.truncate_to is not None:
            transcript_v.truncate_to(outcome_v.truncate_to)
        if outcome_u.status == STATUS_SIMULATE and outcome_v.status == STATUS_SIMULATE:
            return iteration + 1, common_length - len(transcript_u)
    raise AssertionError("meeting points did not converge")


@pytest.mark.parametrize("divergence", [1, 2, 4])
def test_convergence_cost_scales_with_divergence(benchmark, run_once, divergence):
    phases, overshoot = run_once(benchmark, _converge, divergence)
    benchmark.extra_info["phases"] = phases
    benchmark.extra_info["overshoot_chunks"] = overshoot
    assert phases <= 8 * divergence + 8
    assert overshoot <= 2 * divergence + 2


# ----------------------------------------------------- hashing fast-path gate --

# A full 2·64-bit AGHP seed (x, y both non-degenerate), as a real randomness
# exchange over a degree-64 field would produce.
_LINK_SEED = 0xC082_2AE2_C145_1FD2_8B5B_1402_5E93_30CC
_WORKLOAD_ITERATIONS = 12
_WORKLOAD_TAU = 12


def _hashing_workload_seconds(source_kind: str, fast: bool) -> float:
    """Wall clock of a representative per-link iteration workload.

    Two sessions on one link exchange meeting-points messages over
    permanently diverged transcripts, so every iteration derives fresh seeds
    and hashes four values per endpoint — exactly the per-iteration hash
    traffic of the engine's consistency phase.  ``fast`` selects the batched
    path end to end; the reference path uses per-call seed derivation,
    per-bit δ-biased expansion and per-value digests (the pre-fast-path
    implementation, kept as the bit-identity oracle).
    """
    def build_source():
        if source_kind == "crs":
            return CrsSeedSource(master_seed=5, link=(0, 1))
        return ExchangedSeedSource(link_seed=_LINK_SEED, table_expansion=fast)

    hasher = InnerProductHash(_WORKLOAD_TAU)
    session_u = MeetingPointsSession(
        hasher=hasher, seed_source=build_source(), fast_hashing=fast
    )
    session_v = MeetingPointsSession(
        hasher=hasher, seed_source=build_source(), fast_hashing=fast
    )
    transcript_u = _transcript(0, 1, [(1, 0)] * 8 + [(0, 0)] * 3)
    transcript_v = _transcript(1, 0, [(1, 0)] * 8 + [(1, 1)] * 3)

    start = time.perf_counter()
    for iteration in range(_WORKLOAD_ITERATIONS):
        message_u = session_u.build_message(iteration, transcript_u)
        message_v = session_v.build_message(iteration, transcript_v)
        session_u.process_reply(iteration, transcript_u, message_v)
        session_v.process_reply(iteration, transcript_v, message_u)
    return time.perf_counter() - start


def test_batched_hashing_is_at_least_twice_as_fast(benchmark, run_once):
    """The fast-path gate: ≥2× on the exchanged-seed iteration workload."""

    def measure(source_kind: str, fast: bool) -> float:
        # Best of two runs per path: a scheduling spike on a shared CI runner
        # must hit both attempts to move the measurement.
        return min(
            _hashing_workload_seconds(source_kind, fast=fast),
            _hashing_workload_seconds(source_kind, fast=fast),
        )

    def compare():
        reference_seconds = measure("exchanged", fast=False)
        fast_seconds = measure("exchanged", fast=True)
        crs_reference_seconds = measure("crs", fast=False)
        crs_fast_seconds = measure("crs", fast=True)
        return reference_seconds, fast_seconds, crs_reference_seconds, crs_fast_seconds

    reference_seconds, fast_seconds, crs_reference, crs_fast = run_once(benchmark, compare)
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 6)
    benchmark.extra_info["fast_seconds"] = round(fast_seconds, 6)
    benchmark.extra_info["speedup"] = round(reference_seconds / fast_seconds, 2)
    # The CRS workload is reported but not gated: its seed derivation is
    # dominated by the (bit-identity-frozen) per-purpose RNG seeding, so the
    # batched path only trims the digest/unpack churn around it.
    benchmark.extra_info["crs_speedup"] = round(crs_reference / crs_fast, 2)
    assert reference_seconds >= 2 * fast_seconds, (
        f"batched hashing path only {reference_seconds / fast_seconds:.2f}x faster "
        f"(reference {reference_seconds * 1e3:.1f} ms, fast {fast_seconds * 1e3:.1f} ms)"
    )
