"""Experiment ``meeting_points_convergence``: cost of the per-link correction.

Paper claim (§4.2 / Appendix A): the meeting-points mechanism lets two
parties whose transcripts diverge by B chunks reconverge within O(B) hash
exchanges, truncating at most O(B) chunks beyond the common prefix.

Shape we assert: for synthetic divergences B ∈ {1, 2, 4} the number of
exchanges needed grows roughly linearly (well within a 8·B + 8 envelope) and
the truncation overshoot stays bounded.
"""

from __future__ import annotations

import pytest

from repro.core.meeting_points import STATUS_SIMULATE, MeetingPointsSession
from repro.core.transcript import ChunkRecord, LinkTranscript
from repro.hashing.inner_product import InnerProductHash
from repro.hashing.seeds import CrsSeedSource


def _transcript(owner, neighbor, payloads):
    transcript = LinkTranscript(owner, neighbor)
    for index, payload in enumerate(payloads, start=1):
        transcript.append(ChunkRecord(chunk_index=index, link_view=payload))
    return transcript


def _converge(divergence: int, common_length: int = 8, master_seed: int = 5):
    common = [(1, 0)] * common_length
    transcript_u = _transcript(0, 1, common + [(0, 0)] * divergence)
    transcript_v = _transcript(1, 0, common + [(1, 1)] * divergence)
    hasher = InnerProductHash(12)
    session_u = MeetingPointsSession(hasher=hasher, seed_source=CrsSeedSource(master_seed, (0, 1)))
    session_v = MeetingPointsSession(hasher=hasher, seed_source=CrsSeedSource(master_seed, (0, 1)))
    for iteration in range(200):
        message_u = session_u.build_message(iteration, transcript_u)
        message_v = session_v.build_message(iteration, transcript_v)
        outcome_u = session_u.process_reply(iteration, transcript_u, message_v)
        outcome_v = session_v.process_reply(iteration, transcript_v, message_u)
        if outcome_u.truncate_to is not None:
            transcript_u.truncate_to(outcome_u.truncate_to)
        if outcome_v.truncate_to is not None:
            transcript_v.truncate_to(outcome_v.truncate_to)
        if outcome_u.status == STATUS_SIMULATE and outcome_v.status == STATUS_SIMULATE:
            return iteration + 1, common_length - len(transcript_u)
    raise AssertionError("meeting points did not converge")


@pytest.mark.parametrize("divergence", [1, 2, 4])
def test_convergence_cost_scales_with_divergence(benchmark, run_once, divergence):
    phases, overshoot = run_once(benchmark, _converge, divergence)
    benchmark.extra_info["phases"] = phases
    benchmark.extra_info["overshoot_chunks"] = overshoot
    assert phases <= 8 * divergence + 8
    assert overshoot <= 2 * divergence + 2
