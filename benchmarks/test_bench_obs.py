"""Overhead gate for the observability subsystem.

Two budgets, measured on one end-to-end experimental cell (``run_trials``
over a noisy gossip workload, serial backend, no cache):

* **disabled** — with no obs context installed, instrumentation must cost
  (near) nothing: the engine takes its untouched loop, the transport keeps
  plain int attributes, and no lock is ever acquired.  Budget: ≤ 2% over the
  plain wall clock.  The paired measurement here is inherently jittery at
  the couple-percent level, so the in-process assert allows a small absolute
  epsilon on top; the authoritative 2% gate is the session-over-session
  bench diff (this benchmark's wall clock persists like every other, and
  ``benchmarks/check_perf_regression.py`` compares it against the pre-PR
  baseline in CI).
* **tracing enabled at full sampling** — metrics + a span per trial /
  iteration / phase must stay within 15% of the disabled wall clock.
* **flight recorder enabled** — per-slot corruption events plus a Φ
  snapshot per iteration must stay within 15% of the disabled wall clock,
  and memory stays bounded: the ring never keeps more than ``capacity``
  events however noisy the trial (oldest events drop, counted).

Every instrumented run must also be **bit-identical** to the plain run —
the overhead may only ever buy observation, never behaviour.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

from repro.core.parameters import algorithm_a
from repro.experiments.factories import RandomNoiseFactory
from repro.experiments.harness import run_trials
from repro.experiments.workloads import gossip_workload
from repro.obs import FlightRecorder, MetricsRegistry, Tracer, use_obs
from repro.runtime import SerialBackend

#: Paired-measurement jitter allowance (absolute seconds on top of the
#: fractional budget) — scheduler noise on a busy CI runner, not obs cost.
_EPSILON_SECONDS = 0.050


def _best_of(function, repetitions=5):
    best = None
    value = None
    for _ in range(repetitions):
        start = time.perf_counter()
        value = function()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best, value


def _cell():
    workload = gossip_workload(topology="line", num_nodes=5, phases=8, seed=0)
    scheme = algorithm_a()
    fraction = scheme.nominal_noise_fraction(workload.graph)
    return workload, scheme, RandomNoiseFactory(fraction=fraction)


def test_obs_overhead_disabled_and_tracing(benchmark, run_once):
    workload, scheme, factory = _cell()

    def cell():
        trial_set = run_trials(
            workload, scheme, adversary_factory=factory, trials=4, base_seed=3,
            backend=SerialBackend(), cache=None, store=None,
        )
        return [run.to_payload() for run in trial_set.runs]

    def cell_metrics_only():
        with use_obs(metrics=MetricsRegistry(), tracer=None):
            return cell()

    def cell_traced():
        with use_obs(metrics=MetricsRegistry(), tracer=Tracer(sample_every=1)):
            return cell()

    plain_seconds, plain_result = _best_of(cell)
    metrics_seconds, metrics_result = _best_of(cell_metrics_only)
    traced_seconds, traced_result = _best_of(cell_traced)

    # Observation buys data, never behaviour: all three runs bit-identical.
    assert metrics_result == plain_result
    assert traced_result == plain_result

    # The persisted wall clock of this benchmark is the plain (disabled) run,
    # so the session-over-session perf gate tracks the disabled cost directly.
    result = run_once(benchmark, cell)
    assert result == plain_result

    metrics_ratio = metrics_seconds / plain_seconds
    traced_ratio = traced_seconds / plain_seconds
    benchmark.extra_info["plain_seconds"] = round(plain_seconds, 6)
    benchmark.extra_info["metrics_ratio"] = round(metrics_ratio, 4)
    benchmark.extra_info["traced_ratio"] = round(traced_ratio, 4)

    assert metrics_seconds <= plain_seconds * 1.02 + _EPSILON_SECONDS, (
        f"metrics-only observability cost {metrics_ratio:.1%} of the plain wall clock "
        "(budget: 2% + jitter epsilon)"
    )
    assert traced_seconds <= plain_seconds * 1.15 + _EPSILON_SECONDS, (
        f"full-sampling tracing cost {traced_ratio:.1%} of the plain wall clock "
        "(budget: 15% + jitter epsilon)"
    )


def test_recorder_overhead_and_bounded_memory(benchmark, run_once):
    workload, scheme, factory = _cell()

    def cell(recorder=None):
        scope = use_obs(recorder=recorder) if recorder is not None else nullcontext()
        with scope:
            trial_set = run_trials(
                workload, scheme, adversary_factory=factory, trials=4, base_seed=3,
                backend=SerialBackend(), cache=None, store=None,
            )
        return [run.to_payload() for run in trial_set.runs], trial_set.forensics

    plain_seconds, (plain_result, no_forensics) = _best_of(lambda: cell())
    recorded_seconds, (recorded_result, forensics) = _best_of(
        lambda: cell(FlightRecorder(capacity=4096))
    )

    # Recording buys dumps, never behaviour.
    assert no_forensics is None
    assert recorded_result == plain_result
    assert forensics is not None and len(forensics) == 4

    # The persisted wall clock is the recorder-enabled run, so the
    # session-over-session perf gate tracks the enabled cost directly; the
    # disabled cost rides test_obs_overhead_disabled_and_tracing's baseline.
    result, _ = run_once(benchmark, lambda: cell(FlightRecorder(capacity=4096)))
    assert result == plain_result

    recorder_ratio = recorded_seconds / plain_seconds
    benchmark.extra_info["plain_seconds"] = round(plain_seconds, 6)
    benchmark.extra_info["recorder_ratio"] = round(recorder_ratio, 4)
    assert recorded_seconds <= plain_seconds * 1.15 + _EPSILON_SECONDS, (
        f"flight recording cost {recorder_ratio:.1%} of the plain wall clock "
        "(budget: 15% + jitter epsilon)"
    )

    # Bounded memory: squeeze the same cell through a tiny ring — the kept
    # timeline must respect the capacity while the totals keep counting, and
    # the results must STILL be bit-identical (retention only affects what is
    # remembered, never what happens).
    tiny = 8
    _, (tiny_result, tiny_forensics) = _best_of(lambda: cell(FlightRecorder(capacity=tiny)), 1)
    assert tiny_result == plain_result
    assert [dump["trial"]["seed"] for dump in tiny_forensics] == [
        dump["trial"]["seed"] for dump in forensics
    ]
    for full_dump, tiny_dump in zip(forensics, tiny_forensics):
        assert tiny_dump["events_kept"] <= tiny
        assert tiny_dump["events_recorded"] == full_dump["events_recorded"]
    assert any(dump["events_recorded"] > tiny for dump in tiny_forensics), (
        "the cell must overflow the tiny ring for this to prove boundedness"
    )
