"""Experiment ``baseline_failure``: the motivation of §1.

Paper claim (motivation): ordinary protocols break under insertion/deletion
noise; simple per-bit redundancy is not a substitute for interactive coding;
and merely converting a sparse protocol to the fully-utilised model (required
by earlier schemes) already multiplies the communication by up to m.

Shape we assert: the uncoded protocol fails under a handful of targeted
errors that Algorithm A absorbs; repetition coding fails under a targeted
burst; the fully-utilised conversion overhead equals 2m for the sparse
aggregation workload.
"""

from __future__ import annotations

import pytest

from repro.adversary.strategies import LinkTargetedAdversary
from repro.baselines.fully_utilized import fully_utilized_overhead
from repro.baselines.repetition import run_repetition
from repro.baselines.uncoded import run_uncoded
from repro.core.engine import simulate
from repro.core.parameters import algorithm_a
from repro.experiments.workloads import aggregation_workload, gossip_workload


def _burst(seed: int, errors: int = 3) -> LinkTargetedAdversary:
    return LinkTargetedAdversary(
        target=(1, 0), phases=("simulation", "baseline"), max_corruptions=errors, seed=seed
    )


def test_uncoded_fails_where_algorithm_a_succeeds(benchmark, run_once):
    workload = gossip_workload(topology="line", num_nodes=5, phases=10, seed=0)

    def experiment():
        uncoded = run_uncoded(workload.protocol, adversary=_burst(1))
        coded = simulate(workload.protocol, scheme=algorithm_a(), adversary=_burst(1), seed=5)
        return uncoded, coded

    uncoded, coded = run_once(benchmark, experiment)
    benchmark.extra_info["uncoded_success"] = uncoded.success
    benchmark.extra_info["coded_success"] = coded.success
    benchmark.extra_info["coded_overhead"] = coded.overhead
    assert not uncoded.success
    assert coded.success


def test_repetition_fails_under_targeted_burst(benchmark, run_once):
    workload = gossip_workload(topology="line", num_nodes=5, phases=10, seed=0)
    result = run_once(benchmark, run_repetition, workload.protocol, adversary=_burst(2), repetitions=3)
    benchmark.extra_info["success"] = result.success
    benchmark.extra_info["overhead"] = result.metrics.overhead
    assert not result.success
    assert result.metrics.overhead == pytest.approx(3.0)


def test_fully_utilised_conversion_cost(benchmark, run_once):
    workload = aggregation_workload(topology="line", num_nodes=6, value_bits=6, seed=0)
    conversion = run_once(benchmark, fully_utilized_overhead, workload.protocol)
    benchmark.extra_info["conversion_overhead"] = conversion.overhead
    assert conversion.overhead == pytest.approx(2 * workload.graph.num_edges)
