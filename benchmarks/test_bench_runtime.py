"""Experiment ``runtime_throughput``: serial vs process-pool trial execution.

Not a paper experiment — an infrastructure benchmark for the
``repro.runtime`` subsystem.  It runs the same small noise sweep (one
workload, one scheme, a batch of independent seeded trials) through
``SerialBackend`` and ``ProcessPoolBackend`` and records both wall-clock
times, plus the cached-re-run time, in ``extra_info``.

Shape we assert: the two backends produce **bit-identical** metrics (the
runtime's determinism contract), and a cached re-run performs zero new
simulations.  Speed-up is recorded but not asserted — on a loaded CI box a
2-worker pool can legitimately lose to serial for small batches.
"""

from __future__ import annotations

import time

from repro.core.parameters import algorithm_a
from repro.experiments.factories import RandomNoiseFactory
from repro.experiments.harness import run_trials
from repro.experiments.workloads import gossip_workload
from repro.runtime import ProcessPoolBackend, ResultCache, SerialBackend

TRIALS = 6


def _sweep(backend, cache=None):
    workload = gossip_workload(topology="line", num_nodes=5, phases=6)
    return run_trials(
        workload,
        algorithm_a(),
        adversary_factory=RandomNoiseFactory(fraction=0.004),
        trials=TRIALS,
        backend=backend,
        cache=cache,
    )


def test_serial_vs_process_pool_throughput(benchmark, run_once):
    serial_backend = SerialBackend()
    start = time.perf_counter()
    serial = _sweep(serial_backend)
    serial_seconds = time.perf_counter() - start

    pool_backend = ProcessPoolBackend(max_workers=2)
    pooled = run_once(benchmark, _sweep, pool_backend)

    # Determinism contract: parallel execution is bit-identical to serial.
    assert pooled.runs == serial.runs
    assert pooled.aggregate == serial.aggregate
    assert serial_backend.trials_executed == pool_backend.trials_executed == TRIALS

    # Cached re-run: zero new simulations.
    cache = ResultCache()
    cached_backend = SerialBackend()
    _sweep(cached_backend, cache=cache)
    executed_after_warmup = cached_backend.trials_executed
    start = time.perf_counter()
    rerun = _sweep(cached_backend, cache=cache)
    cached_seconds = time.perf_counter() - start
    assert cached_backend.trials_executed == executed_after_warmup
    assert rerun.runs == serial.runs

    benchmark.extra_info["trials"] = TRIALS
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["cached_rerun_seconds"] = round(cached_seconds, 4)
    benchmark.extra_info["pool_speedup_vs_serial"] = (
        round(serial_seconds / benchmark.stats.stats.mean, 3)
        if benchmark.stats.stats.mean
        else None
    )
