"""Experiment ``distributed_throughput``: serial vs 2-worker distributed
trial execution.

Not a paper experiment — an infrastructure benchmark for
``repro.runtime.distributed``.  It runs the same trial batch through
``SerialBackend`` and a ``DistributedBackend`` backed by two in-process
localhost workers, and records both wall-clock times plus the
probe-served (cluster-warm-cache) re-run time in ``extra_info``.

Shape we assert: distributed execution is **bit-identical** to serial (the
runtime's determinism contract, now across the wire), and a re-run against
warm worker caches dispatches zero trials.  Speed-up is recorded but not
asserted — localhost workers share the CPU with the coordinator, and on a
loaded CI box two workers can legitimately lose to serial for small batches.
"""

from __future__ import annotations

import time

from repro.core.parameters import algorithm_a
from repro.experiments.factories import RandomNoiseFactory
from repro.experiments.harness import run_trials
from repro.experiments.workloads import gossip_workload
from repro.runtime import DistributedBackend, SerialBackend, WorkerServer

TRIALS = 8


def _sweep(backend):
    workload = gossip_workload(topology="line", num_nodes=5, phases=6)
    return run_trials(
        workload,
        algorithm_a(),
        adversary_factory=RandomNoiseFactory(fraction=0.004),
        trials=TRIALS,
        backend=backend,
        cache=None,
    )


def test_serial_vs_two_worker_distributed_throughput(benchmark, run_once):
    serial_backend = SerialBackend()
    start = time.perf_counter()
    serial = _sweep(serial_backend)
    serial_seconds = time.perf_counter() - start

    workers = [WorkerServer().start(), WorkerServer().start()]
    try:
        addresses = [worker.address for worker in workers]
        distributed_backend = DistributedBackend(addresses, chunk_size=2)
        distributed = run_once(benchmark, _sweep, distributed_backend)

        # Determinism contract: remote execution is bit-identical to serial.
        assert distributed.runs == serial.runs
        assert distributed.aggregate == serial.aggregate
        assert distributed_backend.trials_executed == TRIALS
        assert sum(worker.trials_executed for worker in workers) == TRIALS

        # Cluster-warm re-run: every trial served by cache probes, zero dispatched.
        rerun_backend = DistributedBackend(addresses, chunk_size=2)
        start = time.perf_counter()
        rerun = _sweep(rerun_backend)
        probed_seconds = time.perf_counter() - start
        assert rerun_backend.trials_executed == 0
        assert sum(worker.trials_executed for worker in workers) == TRIALS
        assert rerun.runs == serial.runs
    finally:
        for worker in workers:
            worker.stop()

    benchmark.extra_info["trials"] = TRIALS
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["probe_served_rerun_seconds"] = round(probed_seconds, 4)
    benchmark.extra_info["distributed_speedup_vs_serial"] = (
        round(serial_seconds / benchmark.stats.stats.mean, 3)
        if benchmark.stats.stats.mean
        else None
    )
