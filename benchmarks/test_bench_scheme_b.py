"""Experiments ``thm1_2`` and ``alg_c``: non-oblivious noise resilience.

Paper claims: Algorithm B (no CRS, Theorem 1.2) tolerates an ε/(m log m)
fraction of *non-oblivious* insertion/deletion noise; Algorithm C (with CRS,
Appendix B) tolerates ε/(m log log m).  Both keep a constant rate.

Shape we assert: against adaptive adversaries operating at each scheme's
nominal level, both algorithms succeed in every trial while the ε/m-budget
Algorithm-A configuration is also run for reference; and Algorithm B's chunk
scale / hash length are strictly larger than Algorithm A's (the mechanism the
paper uses to defeat adaptivity).
"""

from __future__ import annotations

import pytest

from repro.adversary.strategies import PhaseTargetedAdaptiveAdversary
from repro.core.parameters import algorithm_a, algorithm_b, algorithm_c
from repro.experiments.harness import run_trials
from repro.experiments.theorem_validation import scheme_comparison
from repro.experiments.workloads import gossip_workload


def test_scheme_comparison_under_their_nominal_noise(benchmark, run_once):
    rows = run_once(benchmark, scheme_comparison, topology="line", num_nodes=5, phases=10, trials=2)
    benchmark.extra_info["rows"] = rows
    by_scheme = {row["scheme"]: row for row in rows}
    assert by_scheme["algorithm_a"]["success_rate"] == 1.0
    assert by_scheme["algorithm_b"]["success_rate"] == 1.0
    assert by_scheme["algorithm_c"]["success_rate"] == 1.0
    assert by_scheme["uncoded"]["success_rate"] < 1.0
    # nominal tolerances are ordered as in Table 1 (on very small networks
    # log m and log log m coincide, so the last comparison is non-strict)
    assert (
        by_scheme["algorithm_a"]["nominal_fraction"]
        > by_scheme["algorithm_c"]["nominal_fraction"]
        >= by_scheme["algorithm_b"]["nominal_fraction"]
    )


@pytest.mark.parametrize("scheme_factory", [algorithm_b, algorithm_c])
def test_adaptive_attack_on_control_traffic(benchmark, run_once, scheme_factory):
    workload = gossip_workload(topology="star", num_nodes=5, phases=10, seed=1)
    scheme = scheme_factory()
    fraction = scheme.nominal_noise_fraction(workload.graph, epsilon=0.01)

    def factory(seed: int):
        return PhaseTargetedAdaptiveAdversary(
            fraction=fraction, phases=("meeting_points", "flag_passing", "simulation"), seed=seed
        )

    trial_set = run_once(
        benchmark, run_trials, workload, scheme, adversary_factory=factory, trials=2, base_seed=3
    )
    benchmark.extra_info["aggregate"] = trial_set.aggregate.as_dict()
    assert trial_set.aggregate.success_rate == 1.0


def test_scheme_b_uses_larger_scale_and_hashes(benchmark):
    graph = gossip_workload(topology="clique", num_nodes=6, phases=4).graph

    def measure():
        return algorithm_b().scale_k(graph), algorithm_b().hash_output_bits(graph)

    scale, hash_bits = benchmark(measure)
    assert scale > algorithm_a().scale_k(graph)
    assert hash_bits >= algorithm_a().hash_output_bits(graph)
