#!/usr/bin/env python
"""Perf-regression gate over the benchmark run store.

Compares the two most recent benchmark sessions persisted by
``benchmarks/conftest.py`` (kind ``bench``) and exits non-zero when any
benchmark's mean wall clock grew by more than the threshold:

    PYTHONPATH=src python benchmarks/check_perf_regression.py

Environment:

* ``REPRO_BENCH_THRESHOLD`` — allowed fractional wall-clock increase
  (default ``0.25`` = +25%);
* ``REPRO_BENCH_STORE``     — the benchmark run store to read
  (default ``benchmarks/.bench-runs``, same as the conftest writer).

Exit status: 0 = no regression, 1 = regression or unusable store, 2 = not
enough history yet (fewer than two persisted sessions — not a failure on a
fresh checkout, but distinguishable so CI can choose to ignore it).

This is a thin wrapper over ``repro runs diff latest~1 latest --kind bench``;
run that by hand for ad-hoc comparisons against any pair of sessions.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from conftest import BENCH_STORE_ENV, bench_store_root  # noqa: E402 — the writer's rules
from repro.cli import main  # noqa: E402
from repro.runtime import RunStore  # noqa: E402

THRESHOLD_ENV = "REPRO_BENCH_THRESHOLD"


def run() -> int:
    threshold = os.environ.get(THRESHOLD_ENV, "0.25")
    try:
        float(threshold)
    except ValueError:
        print(f"error: {THRESHOLD_ENV}={threshold!r} is not a number", file=sys.stderr)
        return 1
    # Same resolution (including the disabled values) as the conftest writer.
    root = bench_store_root()
    if root is None:
        print(f"benchmark persistence is disabled ({BENCH_STORE_ENV}) — nothing to compare")
        return 2
    store_dir = str(root)

    sessions = RunStore(store_dir).query(kind="bench")
    if len(sessions) < 2:
        print(
            f"not enough benchmark history in {store_dir} "
            f"({len(sessions)} session(s); need 2) — run the benchmarks twice first"
        )
        return 2

    return main(
        [
            "runs", "diff", "latest~1", "latest",
            "--kind", "bench",
            "--store-dir", store_dir,
            "--wall-clock-tolerance", threshold,
        ]
    )


if __name__ == "__main__":
    raise SystemExit(run())
