"""Perf gate for whole-phase merged dispatch (the slot-addressed contract).

PR 5 cut dispatch cost per *window*; the slot-addressed contract cuts it per
*phase*: when the adversary's noise is a pure function of (round, link,
symbol), the engine replaces one ``exchange_window`` dispatch per round with
a single ``exchange_phase`` — per-slot schedule evaluation for transmitted
symbols, one lazily-evaluated whole-phase silence baseline per link for
insertions, and one accounting pass per link at commit.

Shape we gate: on a representative slot-addressed workload (sparse
simulation-phase traffic under an inserting additive-oblivious pattern, the
shape that forces the per-round reference into its dense path every round),
the merged dispatch must be at least **2× faster** than per-round dispatch,
while delivering bit-identical ``ChannelStats`` (the equivalence itself is
pinned much harder by ``tests/test_phase_merge_fuzz.py``).  The measurement
is recorded in ``.bench-runs`` like every other benchmark, so
``check_perf_regression.py`` gates the trajectory session over session.
"""

from __future__ import annotations

import time

from repro.adversary.oblivious import AdditiveObliviousAdversary
from repro.network.topologies import random_connected_topology
from repro.network.transport import NoisyNetwork
from repro.utils.rng import make_rng

_ROUNDS = 400
_NUM_NODES = 8
_TRAFFIC_DENSITY = 0.15
_PATTERN_DENSITY = 0.02


def _workload():
    """Graph, oblivious pattern and per-round traffic plan, all deterministic."""
    graph = random_connected_topology(_NUM_NODES, 0.5, seed=4)
    pattern_rng = make_rng(17)
    pattern = {}
    for round_index in range(_ROUNDS):
        for sender, receiver in graph.directed_edges():
            if pattern_rng.random() < _PATTERN_DENSITY:
                pattern[(round_index, sender, receiver)] = pattern_rng.choice((1, 2))
    traffic_rng = make_rng(9)
    plan = [
        [
            (link, traffic_rng.choice((0, 1)))
            for link in graph.directed_edges()
            if traffic_rng.random() < _TRAFFIC_DENSITY
        ]
        for _ in range(_ROUNDS)
    ]
    return graph, pattern, plan


def _per_round_seconds(graph, pattern, plan):
    """The lockstep reference: one exchange_window dispatch per round.

    The pattern contains insertions, so every round takes the dense path —
    exactly what the engine's per-round schedule does for this adversary.
    """
    network = NoisyNetwork(graph, adversary=AdditiveObliviousAdversary(pattern=pattern))
    start = time.perf_counter()
    for sends in plan:
        network.exchange_window({link: [symbol] for link, symbol in sends}, 1, "simulation", 0)
    return time.perf_counter() - start, network


def _merged_seconds(graph, pattern, plan):
    """The merged path: the whole phase through one exchange_phase dispatch."""
    network = NoisyNetwork(graph, adversary=AdditiveObliviousAdversary(pattern=pattern))
    start = time.perf_counter()
    phase = network.exchange_phase(_ROUNDS, "simulation", 0)
    for offset, sends in enumerate(plan):
        for link, symbol in sends:
            phase.send(link, offset, symbol)
    phase.commit()
    return time.perf_counter() - start, network


def test_merged_phase_dispatch_is_at_least_twice_as_fast(benchmark, run_once):
    """The merged-dispatch gate: ≥2× over per-round dispatch, same stats."""
    graph, pattern, plan = _workload()

    def measure(runner):
        # Best of three runs per path: a scheduling spike on a shared CI
        # runner must hit every attempt to move the measurement.
        timings = []
        networks = []
        for _ in range(3):
            seconds, network = runner(graph, pattern, plan)
            timings.append(seconds)
            networks.append(network)
        assert vars(networks[0].stats) == vars(networks[1].stats) == vars(networks[2].stats)
        return min(timings), networks[0]

    def compare():
        reference_seconds, reference_network = measure(_per_round_seconds)
        merged_seconds, merged_network = measure(_merged_seconds)
        # The two dispatch shapes must account identically before their
        # timings are comparable at all.
        assert vars(merged_network.stats) == vars(reference_network.stats)
        assert merged_network.current_round == reference_network.current_round
        assert merged_network.merged_dispatches == 1
        assert reference_network.merged_dispatches == 0
        return reference_seconds, merged_seconds

    reference_seconds, merged_seconds = run_once(benchmark, compare)
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 6)
    benchmark.extra_info["merged_seconds"] = round(merged_seconds, 6)
    benchmark.extra_info["speedup"] = round(reference_seconds / merged_seconds, 2)
    benchmark.extra_info["rounds"] = _ROUNDS
    benchmark.extra_info["directed_links"] = len(graph.directed_edges())
    assert reference_seconds >= 2 * merged_seconds, (
        f"merged phase dispatch only {reference_seconds / merged_seconds:.2f}x faster "
        f"(per-round {reference_seconds * 1e3:.1f} ms, merged {merged_seconds * 1e3:.1f} ms)"
    )
