"""Experiments ``flag_passing_ablation``, ``rewind_ablation``, ``hash_length_ablation``
and the chunk-size trade-off.

Paper claims being made measurable:

* §1.2 — without network-wide coordination (flag passing), a single early
  error on a line wastes far more communication before it is corrected.
* §3.1(iv) — the rewind phase is what propagates corrections to links whose
  transcripts agree pairwise but were computed from stale data; without it
  the simulation fails or needs many more iterations.
* §1.2 "our techniques" — constant-size hashes suffice against oblivious
  noise; very short hashes start failing (hash collisions go undetected),
  longer hashes trade rate for robustness.
* scheme presets — larger chunks amortise control traffic (better rate).
"""

from __future__ import annotations


from repro.experiments.ablations import (
    chunk_size_ablation,
    flag_passing_ablation,
    hash_length_ablation,
    rewind_ablation,
    single_error_cost,
)


def test_flag_passing_reduces_recovery_cost(benchmark, run_once):
    rows = run_once(benchmark, flag_passing_ablation, num_nodes=6, blocks=3, errors=2, trials=2)
    benchmark.extra_info["rows"] = [row.as_dict() for row in rows]
    with_flags, without_flags = rows
    assert with_flags.success_rate >= without_flags.success_rate
    assert with_flags.mean_iterations <= without_flags.mean_iterations
    assert with_flags.mean_overhead <= without_flags.mean_overhead * 1.05


def test_single_error_cost_with_and_without_flag_passing(benchmark, run_once):
    def experiment():
        return single_error_cost(enable_flag_passing=True), single_error_cost(enable_flag_passing=False)

    with_flags, without_flags = run_once(benchmark, experiment)
    benchmark.extra_info["with_flags"] = with_flags
    benchmark.extra_info["without_flags"] = without_flags
    assert with_flags["noisy_success"] == 1.0
    assert with_flags["extra_overhead"] <= without_flags["extra_overhead"]


def test_rewind_phase_is_needed(benchmark, run_once):
    rows = run_once(benchmark, rewind_ablation, num_nodes=6, blocks=3, errors=2, trials=2)
    benchmark.extra_info["rows"] = [row.as_dict() for row in rows]
    rewind_on, rewind_off = rows
    assert rewind_on.success_rate == 1.0
    assert rewind_on.success_rate > rewind_off.success_rate or rewind_on.mean_iterations < rewind_off.mean_iterations


def test_hash_length_tradeoff(benchmark, run_once):
    rows = run_once(
        benchmark, hash_length_ablation, hash_bits_grid=(2, 8, 16), num_nodes=5, phases=10, trials=2
    )
    benchmark.extra_info["rows"] = [row.as_dict() for row in rows]
    by_bits = {int(row.extra["hash_bits"]): row for row in rows}
    # longer hashes never hurt correctness and 8+ bits are reliably enough here
    assert by_bits[8].success_rate == 1.0
    assert by_bits[16].success_rate == 1.0
    assert by_bits[16].success_rate >= by_bits[2].success_rate


def test_chunk_size_rate_tradeoff(benchmark, run_once):
    rows = run_once(benchmark, chunk_size_ablation, multiplier_grid=(2, 5, 20), num_nodes=5, phases=16, trials=1)
    benchmark.extra_info["rows"] = [row.as_dict() for row in rows]
    overheads = [row.mean_overhead for row in rows]
    assert overheads[0] > overheads[1] > overheads[2], "bigger chunks must amortise control traffic"
    assert all(row.success_rate == 1.0 for row in rows)
