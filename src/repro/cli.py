"""Command-line interface.

``python -m repro <command>`` regenerates the paper's experiments without
writing any Python:

* ``table1``        — the measured (and optionally analytical) rows of Table 1,
* ``noise-sweep``   — success probability around a scheme's nominal noise level,
* ``rate``          — the constant-rate check (overhead vs CC(Π)),
* ``ablations``     — flag-passing / rewind / hash-length / chunk-size ablations,
* ``simulate``      — one simulation of a chosen workload/scheme/noise level.

Every command prints a fixed-width table and can also write a JSON or Markdown
report via ``--output``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.adversary.strategies import RandomNoiseAdversary
from repro.core.engine import simulate
from repro.core.parameters import SCHEME_PRESETS, scheme_by_name
from repro.experiments.ablations import (
    chunk_size_ablation,
    flag_passing_ablation,
    hash_length_ablation,
    rewind_ablation,
)
from repro.experiments.harness import format_table
from repro.experiments.noise_sweep import noise_sweep
from repro.experiments.reporting import ExperimentReport
from repro.experiments.table1 import TABLE1_COLUMNS, build_table1
from repro.experiments.theorem_validation import rate_vs_protocol_size
from repro.experiments.workloads import WORKLOAD_BUILDERS, gossip_workload


def _emit(report: ExperimentReport, columns: Sequence[str], output: Optional[str]) -> None:
    print(format_table(report.rows, columns))
    if output:
        path = report.save(output)
        print(f"\nreport written to {path}")


def _cmd_table1(args: argparse.Namespace) -> None:
    rows = build_table1(
        topologies=tuple(args.topologies),
        num_nodes=args.nodes,
        phases=args.phases,
        trials=args.trials,
        include_analytical=not args.measured_only,
    )
    report = ExperimentReport(
        experiment="table1",
        rows=rows,
        parameters={"nodes": args.nodes, "phases": args.phases, "trials": args.trials},
    )
    _emit(report, TABLE1_COLUMNS, args.output)


def _cmd_noise_sweep(args: argparse.Namespace) -> None:
    workload = gossip_workload(topology=args.topology, num_nodes=args.nodes, phases=args.phases)
    scheme = scheme_by_name(args.scheme)
    points = noise_sweep(
        workload, scheme, multipliers=tuple(args.multipliers), trials=args.trials
    )
    rows = [point.as_dict() for point in points]
    report = ExperimentReport(
        experiment="noise_sweep",
        rows=rows,
        parameters={"scheme": args.scheme, "topology": args.topology, "nodes": args.nodes},
    )
    _emit(report, ["multiplier", "target_fraction", "measured_fraction", "success_rate", "mean_overhead"], args.output)


def _cmd_rate(args: argparse.Namespace) -> None:
    scheme = scheme_by_name(args.scheme)
    points = rate_vs_protocol_size(
        scheme,
        phases_grid=tuple(args.phases_grid),
        topology=args.topology,
        num_nodes=args.nodes,
        trials=args.trials,
    )
    rows = [point.as_dict() for point in points]
    report = ExperimentReport(
        experiment="rate_vs_protocol_size",
        rows=rows,
        parameters={"scheme": args.scheme, "topology": args.topology},
    )
    _emit(report, ["x", "overhead", "rate", "success_rate"], args.output)


def _cmd_ablations(args: argparse.Namespace) -> None:
    rows: List[Dict[str, object]] = []
    if args.which in ("flag_passing", "all"):
        rows += [dict(row.as_dict(), ablation="flag_passing") for row in flag_passing_ablation(trials=args.trials)]
    if args.which in ("rewind", "all"):
        rows += [dict(row.as_dict(), ablation="rewind") for row in rewind_ablation(trials=args.trials)]
    if args.which in ("hash_length", "all"):
        rows += [dict(row.as_dict(), ablation="hash_length") for row in hash_length_ablation(trials=args.trials)]
    if args.which in ("chunk_size", "all"):
        rows += [dict(row.as_dict(), ablation="chunk_size") for row in chunk_size_ablation(trials=args.trials)]
    report = ExperimentReport(experiment="ablations", rows=rows, parameters={"which": args.which})
    _emit(report, ["ablation", "label", "success_rate", "mean_overhead", "mean_iterations"], args.output)


def _cmd_simulate(args: argparse.Namespace) -> None:
    builder = WORKLOAD_BUILDERS[args.workload]
    if args.workload in ("line_example", "token_ring"):
        # These workloads fix their own topology (a line / a ring).
        workload = builder(num_nodes=args.nodes)
    else:
        workload = builder(topology=args.topology, num_nodes=args.nodes)
    scheme = scheme_by_name(args.scheme)
    adversary = None
    if args.noise > 0.0:
        adversary = RandomNoiseAdversary(
            corruption_probability=args.noise, insertion_probability=args.noise / 4, seed=args.seed
        )
    result = simulate(workload.protocol, scheme=scheme, adversary=adversary, seed=args.seed)
    rows = [result.summary()]
    report = ExperimentReport(
        experiment="simulate",
        rows=rows,
        parameters={"workload": args.workload, "scheme": args.scheme, "noise": args.noise, "seed": args.seed},
    )
    _emit(report, ["scheme", "success", "cc_protocol", "cc_simulation", "overhead", "noise_fraction"], args.output)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--topologies", nargs="+", default=["line", "star", "clique"])
    table1.add_argument("--nodes", type=int, default=5)
    table1.add_argument("--phases", type=int, default=12)
    table1.add_argument("--trials", type=int, default=2)
    table1.add_argument("--measured-only", action="store_true")
    table1.add_argument("--output")
    table1.set_defaults(func=_cmd_table1)

    sweep = sub.add_parser("noise-sweep", help="success probability vs noise level")
    sweep.add_argument("--scheme", choices=sorted(SCHEME_PRESETS), default="algorithm_a")
    sweep.add_argument("--topology", default="line")
    sweep.add_argument("--nodes", type=int, default=5)
    sweep.add_argument("--phases", type=int, default=10)
    sweep.add_argument("--multipliers", nargs="+", type=float, default=[0.5, 1.0, 4.0, 16.0])
    sweep.add_argument("--trials", type=int, default=3)
    sweep.add_argument("--output")
    sweep.set_defaults(func=_cmd_noise_sweep)

    rate = sub.add_parser("rate", help="constant-rate check (overhead vs CC(Pi))")
    rate.add_argument("--scheme", choices=sorted(SCHEME_PRESETS), default="algorithm_crs")
    rate.add_argument("--topology", default="clique")
    rate.add_argument("--nodes", type=int, default=5)
    rate.add_argument("--phases-grid", nargs="+", type=int, default=[8, 24, 48])
    rate.add_argument("--trials", type=int, default=1)
    rate.add_argument("--output")
    rate.set_defaults(func=_cmd_rate)

    ablations = sub.add_parser("ablations", help="design-choice ablations")
    ablations.add_argument(
        "--which", choices=["flag_passing", "rewind", "hash_length", "chunk_size", "all"], default="all"
    )
    ablations.add_argument("--trials", type=int, default=2)
    ablations.add_argument("--output")
    ablations.set_defaults(func=_cmd_ablations)

    run = sub.add_parser("simulate", help="run one noise-resilient simulation")
    run.add_argument("--workload", choices=sorted(WORKLOAD_BUILDERS), default="gossip")
    run.add_argument("--topology", default="line")
    run.add_argument("--nodes", type=int, default=5)
    run.add_argument("--scheme", choices=sorted(SCHEME_PRESETS), default="algorithm_a")
    run.add_argument("--noise", type=float, default=0.002)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--output")
    run.set_defaults(func=_cmd_simulate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
