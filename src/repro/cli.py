"""Command-line interface.

``python -m repro <command>`` regenerates the paper's experiments without
writing any Python:

* ``table1``        — the measured (and optionally analytical) rows of Table 1,
* ``noise-sweep``   — success probability around a scheme's nominal noise level,
* ``rate``          — the constant-rate check (overhead vs CC(Π)),
* ``ablations``     — flag-passing / rewind / hash-length / chunk-size ablations,
* ``simulate``      — one simulation of a chosen workload/scheme/noise level,
* ``runs``          — list / show experiment runs persisted by ``--store-dir``.

Every command prints a fixed-width table and can also write a JSON or Markdown
report via ``--output``.  Experiment commands share the runtime flags:

* ``--jobs N``      — fan trials out over N worker processes (results are
  bit-identical to serial execution; see ``src/repro/runtime/README.md``),
* ``--cache-dir``   — persist trial results so re-runs skip finished work,
* ``--no-cache``    — disable result caching entirely (even in-memory),
* ``--store-dir``   — persist every trial set and the final report to a run
  store that ``repro runs`` can browse later,
* ``--seed``        — the base seed; printed with every run so each published
  number can be regenerated from the command line.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.adversary.strategies import RandomNoiseAdversary
from repro.core.engine import simulate
from repro.core.parameters import SCHEME_PRESETS, scheme_by_name
from repro.experiments.ablations import (
    chunk_size_ablation,
    flag_passing_ablation,
    hash_length_ablation,
    rewind_ablation,
)
from repro.experiments.harness import format_table
from repro.experiments.noise_sweep import noise_sweep
from repro.experiments.reporting import ExperimentReport
from repro.experiments.table1 import TABLE1_COLUMNS, build_table1
from repro.experiments.theorem_validation import rate_vs_protocol_size
from repro.experiments.workloads import WORKLOAD_BUILDERS, gossip_workload
from repro.runtime import (
    ProcessPoolBackend,
    ResultCache,
    RunStore,
    SerialBackend,
    use_runtime,
)

#: Default run-store location for the ``runs`` command (overridable per call).
DEFAULT_STORE_DIR = os.environ.get("REPRO_STORE_DIR", ".repro-runs")


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """The runtime/reproducibility flags shared by all experiment commands."""
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for trial execution (1 = serial; results are identical)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="directory for the persistent trial-result cache (enables cross-run reuse)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable trial-result caching entirely (even within this run)",
    )
    parser.add_argument(
        "--store-dir", default=None,
        help="persist trial sets and the report to this run store (browse with 'repro runs')",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed for all trials")


def _runtime_overrides(args: argparse.Namespace) -> Dict[str, object]:
    """Translate CLI flags into a runtime-context override for ``use_runtime``."""
    if args.jobs > 1:
        backend = ProcessPoolBackend(max_workers=args.jobs)
    else:
        backend = SerialBackend()
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    store = RunStore(args.store_dir) if args.store_dir else None
    return {"backend": backend, "cache": cache, "store": store}


def _emit(
    report: ExperimentReport,
    columns: Sequence[str],
    output: Optional[str],
    seed: Optional[int] = None,
    store: Optional[RunStore] = None,
) -> None:
    if seed is not None:
        print(f"seed: {seed}")
    print(format_table(report.rows, columns))
    if store is not None:
        run_id = report.save_to_store(store)
        print(f"\nrun persisted as {run_id} in {store.root}")
    if output:
        path = report.save(output)
        print(f"\nreport written to {path}")


def _cmd_table1(args: argparse.Namespace) -> None:
    overrides = _runtime_overrides(args)
    with use_runtime(**overrides):
        rows = build_table1(
            topologies=tuple(args.topologies),
            num_nodes=args.nodes,
            phases=args.phases,
            trials=args.trials,
            base_seed=args.seed,
            include_analytical=not args.measured_only,
        )
    report = ExperimentReport(
        experiment="table1",
        rows=rows,
        parameters={"nodes": args.nodes, "phases": args.phases, "trials": args.trials, "seed": args.seed},
    )
    _emit(report, TABLE1_COLUMNS, args.output, seed=args.seed, store=overrides["store"])


def _cmd_noise_sweep(args: argparse.Namespace) -> None:
    workload = gossip_workload(topology=args.topology, num_nodes=args.nodes, phases=args.phases)
    scheme = scheme_by_name(args.scheme)
    overrides = _runtime_overrides(args)
    with use_runtime(**overrides):
        points = noise_sweep(
            workload, scheme, multipliers=tuple(args.multipliers), trials=args.trials,
            base_seed=args.seed,
        )
    rows = [point.as_dict() for point in points]
    report = ExperimentReport(
        experiment="noise_sweep",
        rows=rows,
        parameters={"scheme": args.scheme, "topology": args.topology, "nodes": args.nodes, "seed": args.seed},
    )
    _emit(
        report,
        ["multiplier", "target_fraction", "measured_fraction", "success_rate", "mean_overhead"],
        args.output,
        seed=args.seed,
        store=overrides["store"],
    )


def _cmd_rate(args: argparse.Namespace) -> None:
    scheme = scheme_by_name(args.scheme)
    overrides = _runtime_overrides(args)
    with use_runtime(**overrides):
        points = rate_vs_protocol_size(
            scheme,
            phases_grid=tuple(args.phases_grid),
            topology=args.topology,
            num_nodes=args.nodes,
            trials=args.trials,
            base_seed=args.seed,
        )
    rows = [point.as_dict() for point in points]
    report = ExperimentReport(
        experiment="rate_vs_protocol_size",
        rows=rows,
        parameters={"scheme": args.scheme, "topology": args.topology, "seed": args.seed},
    )
    _emit(report, ["x", "overhead", "rate", "success_rate"], args.output, seed=args.seed, store=overrides["store"])


def _cmd_ablations(args: argparse.Namespace) -> None:
    overrides = _runtime_overrides(args)
    rows: List[Dict[str, object]] = []
    with use_runtime(**overrides):
        if args.which in ("flag_passing", "all"):
            rows += [
                dict(row.as_dict(), ablation="flag_passing")
                for row in flag_passing_ablation(trials=args.trials, base_seed=args.seed)
            ]
        if args.which in ("rewind", "all"):
            rows += [
                dict(row.as_dict(), ablation="rewind")
                for row in rewind_ablation(trials=args.trials, base_seed=args.seed)
            ]
        if args.which in ("hash_length", "all"):
            rows += [
                dict(row.as_dict(), ablation="hash_length")
                for row in hash_length_ablation(trials=args.trials, base_seed=args.seed)
            ]
        if args.which in ("chunk_size", "all"):
            rows += [
                dict(row.as_dict(), ablation="chunk_size")
                for row in chunk_size_ablation(trials=args.trials, base_seed=args.seed)
            ]
    report = ExperimentReport(
        experiment="ablations", rows=rows, parameters={"which": args.which, "seed": args.seed}
    )
    _emit(
        report,
        ["ablation", "label", "success_rate", "mean_overhead", "mean_iterations"],
        args.output,
        seed=args.seed,
        store=overrides["store"],
    )


def _cmd_simulate(args: argparse.Namespace) -> None:
    builder = WORKLOAD_BUILDERS[args.workload]
    if args.workload in ("line_example", "token_ring"):
        # These workloads fix their own topology (a line / a ring).
        workload = builder(num_nodes=args.nodes)
    else:
        workload = builder(topology=args.topology, num_nodes=args.nodes)
    scheme = scheme_by_name(args.scheme)
    adversary = None
    if args.noise > 0.0:
        adversary = RandomNoiseAdversary(
            corruption_probability=args.noise, insertion_probability=args.noise / 4, seed=args.seed
        )
    result = simulate(workload.protocol, scheme=scheme, adversary=adversary, seed=args.seed)
    rows = [result.summary()]
    report = ExperimentReport(
        experiment="simulate",
        rows=rows,
        parameters={"workload": args.workload, "scheme": args.scheme, "noise": args.noise, "seed": args.seed},
    )
    store = RunStore(args.store_dir) if args.store_dir else None
    _emit(
        report,
        ["scheme", "success", "cc_protocol", "cc_simulation", "overhead", "noise_fraction"],
        args.output,
        seed=args.seed,
        store=store,
    )


_RUNS_COLUMNS = ["run_id", "kind", "experiment", "label", "trials", "success_rate", "created_at"]


def _cmd_runs_list(args: argparse.Namespace) -> None:
    store = RunStore(args.store_dir)
    rows = store.query(kind=args.kind, experiment=args.experiment)
    if not rows:
        print(f"(no runs in {store.root})")
        return
    print(format_table(rows, _RUNS_COLUMNS))


def _cmd_runs_show(args: argparse.Namespace) -> None:
    store = RunStore(args.store_dir)
    try:
        payload = store.load(args.run_id)
    except KeyError as exc:
        raise SystemExit(exc.args[0])  # str(KeyError) would add quotes
    if payload.get("kind") == "trial_set":
        stored = RunStore.trial_set_from_payload(payload)
        print(f"run {stored.run_id}: {stored.label} (recorded {stored.created_at})")
        if stored.parameters:
            print("parameters: " + json.dumps(stored.parameters, sort_keys=True, default=str))
        print()
        print(format_table([run.as_dict() for run in stored.runs], ["scheme", "success", "overhead", "noise_fraction", "iterations_run"]))
        print()
        print(format_table([stored.aggregate.as_dict()], ["scheme", "trials", "success_rate", "mean_overhead", "mean_noise_fraction"]))
    elif payload.get("kind") == "report":
        rows = list(payload.get("rows", []))
        print(f"run {payload['run_id']}: report {payload.get('experiment')} (recorded {payload.get('created_at')})")
        if payload.get("parameters"):
            print("parameters: " + json.dumps(payload["parameters"], sort_keys=True, default=str))
        print()
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        print(format_table(rows, columns) if rows else "(no rows)")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--topologies", nargs="+", default=["line", "star", "clique"])
    table1.add_argument("--nodes", type=int, default=5)
    table1.add_argument("--phases", type=int, default=12)
    table1.add_argument("--trials", type=int, default=2)
    table1.add_argument("--measured-only", action="store_true")
    table1.add_argument("--output")
    _add_runtime_arguments(table1)
    table1.set_defaults(func=_cmd_table1)

    sweep = sub.add_parser("noise-sweep", help="success probability vs noise level")
    sweep.add_argument("--scheme", choices=sorted(SCHEME_PRESETS), default="algorithm_a")
    sweep.add_argument("--topology", default="line")
    sweep.add_argument("--nodes", type=int, default=5)
    sweep.add_argument("--phases", type=int, default=10)
    sweep.add_argument("--multipliers", nargs="+", type=float, default=[0.5, 1.0, 4.0, 16.0])
    sweep.add_argument("--trials", type=int, default=3)
    sweep.add_argument("--output")
    _add_runtime_arguments(sweep)
    sweep.set_defaults(func=_cmd_noise_sweep)

    rate = sub.add_parser("rate", help="constant-rate check (overhead vs CC(Pi))")
    rate.add_argument("--scheme", choices=sorted(SCHEME_PRESETS), default="algorithm_crs")
    rate.add_argument("--topology", default="clique")
    rate.add_argument("--nodes", type=int, default=5)
    rate.add_argument("--phases-grid", nargs="+", type=int, default=[8, 24, 48])
    rate.add_argument("--trials", type=int, default=1)
    rate.add_argument("--output")
    _add_runtime_arguments(rate)
    rate.set_defaults(func=_cmd_rate)

    ablations = sub.add_parser("ablations", help="design-choice ablations")
    ablations.add_argument(
        "--which", choices=["flag_passing", "rewind", "hash_length", "chunk_size", "all"], default="all"
    )
    ablations.add_argument("--trials", type=int, default=2)
    ablations.add_argument("--output")
    _add_runtime_arguments(ablations)
    ablations.set_defaults(func=_cmd_ablations)

    run = sub.add_parser("simulate", help="run one noise-resilient simulation")
    run.add_argument("--workload", choices=sorted(WORKLOAD_BUILDERS), default="gossip")
    run.add_argument("--topology", default="line")
    run.add_argument("--nodes", type=int, default=5)
    run.add_argument("--scheme", choices=sorted(SCHEME_PRESETS), default="algorithm_a")
    run.add_argument("--noise", type=float, default=0.002)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--store-dir", default=None, help="persist the result to this run store")
    run.add_argument("--output")
    run.set_defaults(func=_cmd_simulate)

    runs = sub.add_parser("runs", help="list or inspect persisted experiment runs")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_sub.add_parser("list", help="list all runs in a store")
    runs_list.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    runs_list.add_argument("--kind", choices=["trial_set", "report"], default=None)
    runs_list.add_argument("--experiment", default=None)
    runs_list.set_defaults(func=_cmd_runs_list)

    runs_show = runs_sub.add_parser("show", help="show one persisted run")
    runs_show.add_argument("run_id")
    runs_show.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    runs_show.set_defaults(func=_cmd_runs_show)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        args.func(args)
    except BrokenPipeError:  # e.g. `repro runs list | head` closing the pipe early
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
