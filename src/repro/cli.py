"""Command-line interface.

``python -m repro <command>`` regenerates the paper's experiments without
writing any Python:

* ``table1``        — the measured (and optionally analytical) rows of Table 1,
* ``noise-sweep``   — success probability around a scheme's nominal noise level,
* ``rate``          — the constant-rate check (overhead vs CC(Π)),
* ``ablations``     — flag-passing / rewind / hash-length / chunk-size ablations,
* ``simulate``      — one simulation of a chosen workload/scheme/noise level,
* ``runs``          — run-store analytics: ``list`` / ``show`` persisted runs,
  ``diff`` two runs cell by cell (non-zero exit on regression, so CI can gate
  on it; ``--kind metrics`` gates on obs counters instead of outcomes),
  ``trace`` / ``metrics`` render observability records captured under
  ``--trace`` / ``--obs``, ``explain`` / ``flight`` read the flight-recorder
  dumps captured under ``--forensics`` (failure taxonomy / one trial's event
  timeline), ``merge`` trial sets of the same cell, ``gc`` old runs,
* ``worker``        — ``worker serve`` runs a distributed-execution worker
  daemon (see ``--backend distributed`` below),
* ``cache``         — trial-cache hygiene: ``cache compact`` rewrites the
  JSONL mirror keeping only the latest entry per trial key.

``runs diff|show|merge`` accept either literal run ids (``run-000042``) or the
symbolic references ``latest`` / ``latest~N`` — the N-th newest run, after the
filters the command offers (``runs diff`` takes ``--kind``/``--experiment``;
``runs merge`` resolves against trial_set records only).

Every command prints a fixed-width table and can also write a JSON or Markdown
report via ``--output``.  Experiment commands share the runtime flags:

* ``--jobs N``      — fan trials out over N worker processes (results are
  bit-identical to serial execution; see ``src/repro/runtime/README.md``),
* ``--backend``     — pick the execution backend explicitly: ``serial``,
  ``process-pool`` (what ``--jobs N`` implies) or ``distributed``,
* ``--workers``     — comma-separated ``host:port`` list of ``repro worker
  serve`` daemons for ``--backend distributed``,
* ``--cache-dir``   — persist trial results so re-runs skip finished work,
* ``--no-cache``    — disable result caching entirely (even in-memory),
* ``--store-dir``   — persist every trial set and the final report to a run
  store that ``repro runs`` can browse later,
* ``--seed``        — the base seed; printed with every run so each published
  number can be regenerated from the command line,
* ``--obs``         — collect deterministic engine/transport/cache/cluster
  counters and store them with each trial set,
* ``--trace``       — record timing spans (implies ``--obs``); with
  ``--store-dir`` each cell persists one trace record,
* ``--forensics``   — flight-record protocol events per trial (corruptions,
  hash collisions, meeting points, rewinds, Φ); with ``--store-dir`` the
  dumps persist for ``repro runs explain`` / ``repro runs flight``,
* ``--trace-sample N`` / ``--log-level`` / ``--log-json`` — trace sampling and
  structured-log output controls.

Observability never changes what is computed: results are bit-identical with
the flags on or off, and cache fingerprints are untouched.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence

from repro.adversary.strategies import RandomNoiseAdversary
from repro.analysis.forensics import (
    anatomy_rows,
    classify_failure,
    corruption_heatmap,
    explain_dump,
    failed_dumps,
    phi_trajectory,
    render_event,
    render_heatmap,
    render_trajectory,
    rewind_depth_trajectory,
)
from repro.core.config import DEFAULT_ENGINE_CONFIG, REFERENCE_ENGINE_CONFIG, EngineConfig
from repro.core.engine import simulate
from repro.core.parameters import SCHEME_PRESETS, scheme_by_name
from repro.experiments.ablations import (
    chunk_size_ablation,
    flag_passing_ablation,
    hash_length_ablation,
    rewind_ablation,
)
from repro.experiments.harness import format_table
from repro.experiments.noise_sweep import noise_sweep
from repro.experiments.reporting import ExperimentReport
from repro.experiments.table1 import TABLE1_COLUMNS, build_table1
from repro.experiments.theorem_validation import rate_vs_protocol_size
from repro.experiments.workloads import WORKLOAD_BUILDERS, gossip_workload
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    configure_logging,
    format_metrics_rows,
    render_critical_path,
    render_trace_tree,
    use_obs,
)
from repro.runtime import (
    DistributedBackend,
    ProcessPoolBackend,
    RegressionThresholds,
    ResultCache,
    RunStore,
    SerialBackend,
    WorkerServer,
    diff_runs,
    gc_runs,
    merge_runs,
    use_runtime,
)

#: Default run-store location for the ``runs`` command (overridable per call).
DEFAULT_STORE_DIR = os.environ.get("REPRO_STORE_DIR", ".repro-runs")


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The engine-configuration flags (``--engine-*``).

    Engine configuration selects among bit-identical execution paths
    (:class:`~repro.core.config.EngineConfig`): results and cache keys never
    change, only speed.  The flags exist for benchmarking and for bisecting a
    suspected fast-path bug against the reference semantics.
    """
    parser.add_argument(
        "--engine-reference", action="store_true",
        help="run on the reference engine paths (every fast path off); "
             "results are bit-identical, only slower",
    )
    for switch, what in [
        ("fast-hashing", "table-stepped small-bias hashing"),
        ("batch-rounds", "whole-window round batching"),
        ("merge-phases", "merged per-phase round loops"),
        ("batched-transport", "batched window exchange"),
        ("packed", "packed (bitmask-plane) transport and transcripts"),
    ]:
        parser.add_argument(
            f"--engine-no-{switch}", action="store_true",
            help=f"disable {what} (bit-identical, for benchmarking/bisecting)",
        )


def _engine_config(args: argparse.Namespace) -> Optional[EngineConfig]:
    """Translate ``--engine-*`` flags into an :class:`EngineConfig`.

    Returns ``None`` (ambient/default configuration) when no flag is given, so
    plain invocations keep deferring to the runtime context.
    """
    if getattr(args, "engine_reference", False):
        return REFERENCE_ENGINE_CONFIG
    overrides = {
        name: False
        for flag, name in [
            ("engine_no_fast_hashing", "fast_hashing"),
            ("engine_no_batch_rounds", "batch_rounds"),
            ("engine_no_merge_phases", "merge_phases"),
            ("engine_no_batched_transport", "batched_transport"),
            ("engine_no_packed", "packed"),
        ]
        if getattr(args, flag, False)
    }
    if not overrides:
        return None
    return DEFAULT_ENGINE_CONFIG.with_overrides(**overrides)


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """The runtime/reproducibility flags shared by all experiment commands."""
    _add_engine_arguments(parser)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for trial execution (1 = serial; results are identical)",
    )
    parser.add_argument(
        "--backend", choices=["serial", "process-pool", "distributed"], default=None,
        help="execution backend (default: serial, or process-pool when --jobs > 1)",
    )
    parser.add_argument(
        "--workers", default=None,
        help="comma-separated host:port list of worker daemons (--backend distributed)",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=10.0,
        help="seconds without a worker frame before it is declared dead "
             "(--backend distributed; stretched automatically for workers "
             "announcing a slower --heartbeat-interval)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="directory for the persistent trial-result cache (enables cross-run reuse)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable trial-result caching entirely (even within this run)",
    )
    parser.add_argument(
        "--store-dir", default=None,
        help="persist trial sets and the report to this run store (browse with 'repro runs')",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed for all trials")
    parser.add_argument(
        "--obs", action="store_true",
        help="collect engine/transport/cache/cluster metrics; stored with each "
             "trial set (inspect with 'repro runs metrics', gate with "
             "'repro runs diff --kind metrics')",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record timing spans (implies --obs); traces persist to the run "
             "store for 'repro runs trace'",
    )
    parser.add_argument(
        "--forensics", action="store_true",
        help="flight-record protocol events per trial (corruptions, hash "
             "collisions, meeting points, rewinds, Φ); dumps persist with "
             "each trial set for 'repro runs explain' / 'repro runs flight'",
    )
    parser.add_argument(
        "--forensics-capacity", type=int, default=4096, metavar="N",
        help="flight-recorder ring size in events per trial (default 4096)",
    )
    parser.add_argument(
        "--trace-sample", type=int, default=1, metavar="N",
        help="trace every N-th trial (default 1 = every trial)",
    )
    parser.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"], default="warning",
        help="structured-log verbosity for repro.* events (default warning)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured logs as JSON lines instead of human-readable text",
    )


def _obs_scope(args: argparse.Namespace):
    """The observability context the ``--obs``/``--trace``/``--forensics``
    flags ask for — a no-op context manager for commands without the flags
    (or with them off)."""
    tracing = bool(getattr(args, "trace", False))
    observing = tracing or bool(getattr(args, "obs", False))
    forensics = bool(getattr(args, "forensics", False))
    if not observing and not forensics:
        return nullcontext()
    sample = getattr(args, "trace_sample", 1) or 1
    if sample < 1:
        raise _fail("--trace-sample must be a positive integer")
    tracer = Tracer(sample_every=int(sample)) if tracing else None
    recorder = None
    if forensics:
        capacity = getattr(args, "forensics_capacity", 4096) or 4096
        if capacity < 1:
            raise _fail("--forensics-capacity must be a positive integer")
        recorder = FlightRecorder(capacity=int(capacity))
    return use_obs(
        metrics=MetricsRegistry() if observing else None,
        tracer=tracer,
        recorder=recorder,
    )


def _runtime_overrides(args: argparse.Namespace) -> Dict[str, object]:
    """Translate CLI flags into a runtime-context override for ``use_runtime``."""
    backend_name = args.backend or ("process-pool" if args.jobs > 1 else "serial")
    if backend_name == "distributed":
        addresses = [part.strip() for part in (args.workers or "").split(",") if part.strip()]
        if not addresses:
            raise _fail("--backend distributed needs --workers host:port[,host:port...]")
        try:
            backend = DistributedBackend(workers=addresses, heartbeat_timeout=args.heartbeat_timeout)
        except ValueError as exc:
            raise _fail(str(exc))
    elif backend_name == "process-pool":
        backend = ProcessPoolBackend(max_workers=args.jobs if args.jobs > 1 else None)
    else:
        backend = SerialBackend()
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    store = RunStore(args.store_dir) if args.store_dir else None
    return {"backend": backend, "cache": cache, "store": store, "engine": _engine_config(args)}


def _emit(
    report: ExperimentReport,
    columns: Sequence[str],
    output: Optional[str],
    seed: Optional[int] = None,
    store: Optional[RunStore] = None,
) -> None:
    if seed is not None:
        print(f"seed: {seed}")
    print(format_table(report.rows, columns))
    if store is not None:
        run_id = report.save_to_store(store)
        print(f"\nrun persisted as {run_id} in {store.root}")
    if output:
        path = report.save(output)
        print(f"\nreport written to {path}")


def _cmd_table1(args: argparse.Namespace) -> None:
    overrides = _runtime_overrides(args)
    with use_runtime(**overrides):
        rows = build_table1(
            topologies=tuple(args.topologies),
            num_nodes=args.nodes,
            phases=args.phases,
            trials=args.trials,
            base_seed=args.seed,
            include_analytical=not args.measured_only,
        )
    report = ExperimentReport(
        experiment="table1",
        rows=rows,
        parameters={"nodes": args.nodes, "phases": args.phases, "trials": args.trials, "seed": args.seed},
    )
    _emit(report, TABLE1_COLUMNS, args.output, seed=args.seed, store=overrides["store"])


def _cmd_noise_sweep(args: argparse.Namespace) -> None:
    workload = gossip_workload(topology=args.topology, num_nodes=args.nodes, phases=args.phases)
    scheme = scheme_by_name(args.scheme)
    overrides = _runtime_overrides(args)
    with use_runtime(**overrides):
        points = noise_sweep(
            workload, scheme, multipliers=tuple(args.multipliers), trials=args.trials,
            base_seed=args.seed,
        )
    rows = [point.as_dict() for point in points]
    report = ExperimentReport(
        experiment="noise_sweep",
        rows=rows,
        parameters={"scheme": args.scheme, "topology": args.topology, "nodes": args.nodes, "seed": args.seed},
    )
    _emit(
        report,
        ["multiplier", "target_fraction", "measured_fraction", "success_rate", "mean_overhead"],
        args.output,
        seed=args.seed,
        store=overrides["store"],
    )


def _cmd_rate(args: argparse.Namespace) -> None:
    scheme = scheme_by_name(args.scheme)
    overrides = _runtime_overrides(args)
    with use_runtime(**overrides):
        points = rate_vs_protocol_size(
            scheme,
            phases_grid=tuple(args.phases_grid),
            topology=args.topology,
            num_nodes=args.nodes,
            trials=args.trials,
            base_seed=args.seed,
        )
    rows = [point.as_dict() for point in points]
    report = ExperimentReport(
        experiment="rate_vs_protocol_size",
        rows=rows,
        parameters={"scheme": args.scheme, "topology": args.topology, "seed": args.seed},
    )
    _emit(report, ["x", "overhead", "rate", "success_rate"], args.output, seed=args.seed, store=overrides["store"])


def _cmd_ablations(args: argparse.Namespace) -> None:
    overrides = _runtime_overrides(args)
    rows: List[Dict[str, object]] = []
    with use_runtime(**overrides):
        if args.which in ("flag_passing", "all"):
            rows += [
                dict(row.as_dict(), ablation="flag_passing")
                for row in flag_passing_ablation(trials=args.trials, base_seed=args.seed)
            ]
        if args.which in ("rewind", "all"):
            rows += [
                dict(row.as_dict(), ablation="rewind")
                for row in rewind_ablation(trials=args.trials, base_seed=args.seed)
            ]
        if args.which in ("hash_length", "all"):
            rows += [
                dict(row.as_dict(), ablation="hash_length")
                for row in hash_length_ablation(trials=args.trials, base_seed=args.seed)
            ]
        if args.which in ("chunk_size", "all"):
            rows += [
                dict(row.as_dict(), ablation="chunk_size")
                for row in chunk_size_ablation(trials=args.trials, base_seed=args.seed)
            ]
    report = ExperimentReport(
        experiment="ablations", rows=rows, parameters={"which": args.which, "seed": args.seed}
    )
    _emit(
        report,
        ["ablation", "label", "success_rate", "mean_overhead", "mean_iterations"],
        args.output,
        seed=args.seed,
        store=overrides["store"],
    )


def _cmd_simulate(args: argparse.Namespace) -> None:
    builder = WORKLOAD_BUILDERS[args.workload]
    if args.workload in ("line_example", "token_ring"):
        # These workloads fix their own topology (a line / a ring).
        workload = builder(num_nodes=args.nodes)
    else:
        workload = builder(topology=args.topology, num_nodes=args.nodes)
    scheme = scheme_by_name(args.scheme)
    adversary = None
    if args.noise > 0.0:
        adversary = RandomNoiseAdversary(
            corruption_probability=args.noise, insertion_probability=args.noise / 4, seed=args.seed
        )
    result = simulate(
        workload.protocol,
        scheme=scheme,
        adversary=adversary,
        seed=args.seed,
        config=_engine_config(args),
    )
    rows = [result.summary()]
    report = ExperimentReport(
        experiment="simulate",
        rows=rows,
        parameters={"workload": args.workload, "scheme": args.scheme, "noise": args.noise, "seed": args.seed},
    )
    store = RunStore(args.store_dir) if args.store_dir else None
    _emit(
        report,
        ["scheme", "success", "cc_protocol", "cc_simulation", "overhead", "noise_fraction"],
        args.output,
        seed=args.seed,
        store=store,
    )


_RUNS_COLUMNS = ["run_id", "kind", "experiment", "label", "trials", "success_rate", "created_at"]

#: Environment defaults for the ``runs diff`` thresholds, so CI pipelines can
#: tune the gate without editing the command line.
DIFF_WALL_CLOCK_ENV = "REPRO_DIFF_WALL_CLOCK_TOLERANCE"
DIFF_SUCCESS_DROP_ENV = "REPRO_DIFF_SUCCESS_TOLERANCE"


def _fail(message: str) -> "SystemExit":
    """A friendly fatal error: one line on stderr, exit status 1."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(1)


def _env_float(name: str, fallback: float) -> float:
    """An environment-variable float default, resolved at command time so a
    malformed value fails the one command that uses it — friendly, not a
    parser-construction traceback for every ``repro`` invocation."""
    value = os.environ.get(name)
    if value is None:
        return fallback
    try:
        return float(value)
    except ValueError:
        raise _fail(f"{name}={value!r} is not a number")


def _load_run(
    store: RunStore,
    ref: str,
    kind: Optional[str] = None,
    experiment: Optional[str] = None,
) -> Dict[str, object]:
    """Resolve + load one run, translating every failure mode (missing id,
    corrupt JSON, unknown schema, unreadable file) into a friendly exit."""
    try:
        run_id = store.resolve(ref, kind=kind, experiment=experiment)
        return store.load(run_id)
    except KeyError as exc:
        raise _fail(str(exc.args[0]))
    except ValueError as exc:
        raise _fail(f"run {ref!r} in {store.root} is unreadable: {exc}")
    except OSError as exc:
        raise _fail(f"cannot read run {ref!r} from {store.root}: {exc}")


def _cmd_runs_list(args: argparse.Namespace) -> None:
    store = RunStore(args.store_dir)
    rows = store.query(kind=args.kind, experiment=args.experiment)
    if not rows:
        print(f"(no runs in {store.root})")
        return
    print(format_table(rows, _RUNS_COLUMNS))


def _cmd_runs_show(args: argparse.Namespace) -> None:
    store = RunStore(args.store_dir)
    payload = _load_run(store, args.run_id)
    if payload.get("kind") == "trial_set":
        stored = RunStore.trial_set_from_payload(payload)
        print(f"run {stored.run_id}: {stored.label} (recorded {stored.created_at})")
        if stored.parameters:
            print("parameters: " + json.dumps(stored.parameters, sort_keys=True, default=str))
        print()
        print(format_table([run.as_dict() for run in stored.runs], ["scheme", "success", "overhead", "noise_fraction", "iterations_run"]))
        print()
        print(format_table([stored.aggregate.as_dict()], ["scheme", "trials", "success_rate", "mean_overhead", "mean_noise_fraction"]))
        attribution = payload.get("workers")
        if isinstance(attribution, dict) and attribution.get("workers"):
            print()
            print(f"workers ({attribution.get('backend', '?')} backend, "
                  f"{attribution.get('trials_total', '?')} trial(s), "
                  f"{attribution.get('remote_cache_hits', 0)} remote cache hit(s)):")
            worker_rows = [
                dict({"worker": worker_id}, **stats)
                for worker_id, stats in sorted(attribution["workers"].items())
            ]
            print(format_table(
                worker_rows,
                ["worker", "dispatched", "stolen", "redispatched", "trials_executed", "cache_hits"],
            ))
            for failure in attribution.get("unreachable_workers", []):
                print(f"  unreachable: {failure}")
        obs_metrics = payload.get("obs_metrics")
        if isinstance(obs_metrics, dict) and obs_metrics:
            print()
            print(f"obs metrics: {len(obs_metrics)} counter(s) recorded "
                  f"(show with 'repro runs metrics {stored.run_id}')")
    elif payload.get("kind") == "report":
        rows = list(payload.get("rows", []))
        print(f"run {payload['run_id']}: report {payload.get('experiment')} (recorded {payload.get('created_at')})")
        if payload.get("parameters"):
            print("parameters: " + json.dumps(payload["parameters"], sort_keys=True, default=str))
        print()
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        print(format_table(rows, columns) if rows else "(no rows)")
    elif payload.get("kind") == "bench":
        rows = list(payload.get("benchmarks", []))
        print(f"run {payload['run_id']}: benchmark session (recorded {payload.get('created_at')})")
        print()
        bench_columns = ["name", "mean_seconds", "min_seconds", "max_seconds", "rounds"]
        print(format_table(rows, bench_columns) if rows else "(no benchmarks)")
    elif payload.get("kind") == "trace":
        spans = list(payload.get("spans", []))
        print(f"run {payload['run_id']}: trace {payload.get('label')} (recorded {payload.get('created_at')})")
        print(f"trace {payload.get('trace_id')}: {len(spans)} span(s) — "
              f"full view: repro runs trace {payload['run_id']}")
        print()
        for line in render_trace_tree(spans):
            print(line)
    else:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    store = RunStore(args.store_dir)
    # ``--kind metrics`` is a *view*: it resolves trial_set records but diffs
    # their obs counters instead of their aggregate outcome.
    view = "metrics" if args.kind == "metrics" else None
    record_kind = "trial_set" if view == "metrics" else args.kind
    baseline = _load_run(store, args.baseline, kind=record_kind, experiment=args.experiment)
    candidate = _load_run(store, args.candidate, kind=record_kind, experiment=args.experiment)
    wall_clock_tolerance = (
        args.wall_clock_tolerance
        if args.wall_clock_tolerance is not None
        else _env_float(DIFF_WALL_CLOCK_ENV, 0.25)
    )
    success_tolerance = (
        args.success_tolerance
        if args.success_tolerance is not None
        else _env_float(DIFF_SUCCESS_DROP_ENV, 0.0)
    )
    try:
        thresholds = RegressionThresholds(
            max_wall_clock_increase=wall_clock_tolerance,
            max_success_rate_drop=success_tolerance,
            min_wall_clock_seconds=args.min_wall_clock,
            max_counter_increase=args.counter_tolerance,
        )
        diff = diff_runs(baseline, candidate, thresholds=thresholds, view=view)
    except ValueError as exc:
        raise _fail(str(exc))
    label = f"kind {diff.kind}" if view is None else f"kind {diff.kind} (metrics view)"
    print(f"diff {diff.baseline_id} (baseline) → {diff.candidate_id} (candidate), {label}")
    if view == "metrics":
        print(f"thresholds: counters +{thresholds.max_counter_increase:.0%} "
              "(timing metrics informative only)")
    else:
        print(
            f"thresholds: wall clock +{thresholds.max_wall_clock_increase:.0%}, "
            f"success rate -{thresholds.max_success_rate_drop:.3f}"
        )
    print()
    if not diff.rows:
        print("(no cells to compare)")
        return 0
    print(format_table(diff.as_rows(), ["cell", "metric", "baseline", "candidate", "delta", "ratio", "status"]))
    print()
    if diff.has_regression:
        print(f"REGRESSION: {len(diff.regressions)} metric(s) exceeded the threshold")
        return 1
    print("no regressions")
    return 0


def _cmd_runs_trace(args: argparse.Namespace) -> None:
    store = RunStore(args.store_dir)
    payload = _load_run(store, args.run_id, kind="trace")
    if payload.get("kind") != "trace":
        raise _fail(
            f"run {payload.get('run_id', args.run_id)!r} is a "
            f"{payload.get('kind')!r}, not a trace; record one with --trace"
        )
    spans = list(payload.get("spans", []))
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return
    print(f"run {payload['run_id']}: trace {payload.get('label')} (recorded {payload.get('created_at')})")
    print(f"trace {payload.get('trace_id')}: {len(spans)} span(s) across "
          f"{len({span.get('worker') for span in spans})} worker(s)")
    print()
    for line in render_trace_tree(spans):
        print(line)
    print()
    print("critical path (what the wall clock waited for):")
    for line in render_critical_path(spans):
        print(line)


def _cmd_runs_metrics(args: argparse.Namespace) -> None:
    store = RunStore(args.store_dir)
    payload = _load_run(store, args.run_id, kind="trial_set")
    if payload.get("kind") != "trial_set":
        raise _fail(
            f"run {payload.get('run_id', args.run_id)!r} is a "
            f"{payload.get('kind')!r}; obs metrics live on trial_set runs"
        )
    obs_metrics = payload.get("obs_metrics")
    if not isinstance(obs_metrics, dict) or not obs_metrics:
        raise _fail(
            f"run {payload.get('run_id', args.run_id)!r} carries no obs "
            "metrics; re-run the experiment with --obs to record them"
        )
    if args.json:
        print(json.dumps(obs_metrics, indent=2, sort_keys=True, default=str))
        return
    prefixes = tuple(args.prefix) if args.prefix else None
    rows = format_metrics_rows(obs_metrics, prefixes)
    print(f"run {payload['run_id']}: {payload.get('label')} — "
          f"{len(rows)}/{len(obs_metrics)} metric(s)")
    print()
    print(format_table(list(rows), ["metric", "value"]) if rows else "(no matching metrics)")


def _load_forensics(store: RunStore, ref: str) -> Dict[str, object]:
    """Load a trial_set run that carries flight-recorder dumps (or fail
    with the flag that would have recorded them)."""
    payload = _load_run(store, ref, kind="trial_set")
    if payload.get("kind") != "trial_set":
        raise _fail(
            f"run {payload.get('run_id', ref)!r} is a "
            f"{payload.get('kind')!r}; forensics live on trial_set runs"
        )
    dumps = payload.get("forensics")
    if not isinstance(dumps, list) or not dumps:
        raise _fail(
            f"run {payload.get('run_id', ref)!r} carries no flight-recorder "
            "dumps; re-run the experiment with --forensics to record them"
        )
    return payload


#: At most this many failed trials get their trajectories rendered inline by
#: ``runs explain`` (the rest remain one ``runs flight`` away).
_EXPLAIN_TRAJECTORY_LIMIT = 3


def _cmd_runs_explain(args: argparse.Namespace) -> None:
    store = RunStore(args.store_dir)
    payload = _load_forensics(store, args.run_id)
    dumps = list(payload["forensics"])
    failures = failed_dumps(dumps)
    if args.json:
        print(json.dumps(
            {
                "run_id": payload.get("run_id"),
                "label": payload.get("label"),
                "trials": len(dumps),
                "failed": len(failures),
                "anatomy": anatomy_rows(dumps),
                "heatmap": {
                    link: {str(bucket): count for bucket, count in row.items()}
                    for link, row in sorted(
                        corruption_heatmap(failures, round_bucket=args.round_bucket).items()
                    )
                },
                "verdicts": [explain_dump(dump) for dump in failures],
            },
            indent=2, sort_keys=True, default=str,
        ))
        return
    print(f"run {payload['run_id']}: {payload.get('label')} — "
          f"{len(dumps)} trial(s), {len(failures)} failed")
    if not failures:
        print("\nevery trial succeeded — nothing to explain")
        return
    print()
    print("failure anatomy (why trials failed, in the paper's vocabulary):")
    print(format_table(
        anatomy_rows(dumps),
        ["cause", "trials", "share", "mean_corruptions", "mean_noise_fraction",
         "mean_rewinds", "mean_iterations", "seeds"],
    ))
    print()
    print("corruption heatmap (failed trials, link × round):")
    print(render_heatmap(corruption_heatmap(failures, round_bucket=args.round_bucket)))
    for dump in failures[:_EXPLAIN_TRAJECTORY_LIMIT]:
        trial = dump.get("trial") or {}
        print()
        print(f"trial seed={trial.get('seed')} — cause: {classify_failure(dump)}")
        phi_points = [
            (event.get("iteration", 0), float(event.get("phi", 0.0)))
            for event in phi_trajectory(dump)
        ]
        print("Φ trajectory:")
        print(render_trajectory(phi_points, "potential"))
        rewind_points = [
            (iteration, float(count))
            for iteration, count in rewind_depth_trajectory(dump)
        ]
        print("rewind activity:")
        print(render_trajectory(rewind_points, "rewind"))
    if len(failures) > _EXPLAIN_TRAJECTORY_LIMIT:
        print()
        print(f"({len(failures) - _EXPLAIN_TRAJECTORY_LIMIT} more failed trial(s) — "
              f"inspect each with 'repro runs flight {payload['run_id']} <seed>')")


def _cmd_runs_flight(args: argparse.Namespace) -> None:
    store = RunStore(args.store_dir)
    payload = _load_forensics(store, args.run_id)
    dumps = list(payload["forensics"])
    match = next(
        (dump for dump in dumps if (dump.get("trial") or {}).get("seed") == args.seed),
        None,
    )
    if match is None:
        seeds = ", ".join(str((dump.get("trial") or {}).get("seed")) for dump in dumps)
        raise _fail(
            f"run {payload['run_id']} has no trial with seed {args.seed} "
            f"(recorded seeds: {seeds})"
        )
    if args.json:
        print(json.dumps(
            dict(explain_dump(match), events=list(match.get("events") or ())),
            indent=2, sort_keys=True, default=str,
        ))
        return
    trial = match.get("trial") or {}
    print(f"run {payload['run_id']}: trial seed={args.seed} "
          f"({'success' if trial.get('success') else 'FAILED'})")
    print("trial: " + json.dumps(trial, sort_keys=True, default=str))
    if not trial.get("success", True):
        print(f"cause: {classify_failure(match)}")
    counts = match.get("event_counts") or {}
    kept = match.get("events_kept", 0)
    recorded = match.get("events_recorded", 0)
    print(f"events: {recorded} recorded, {kept} kept"
          + (f" (ring overflowed, oldest {recorded - kept} dropped)" if recorded > kept else ""))
    if counts:
        print("counts: " + ", ".join(f"{kind}={counts[kind]}" for kind in sorted(counts)))
    events = list(match.get("events") or ())
    if not events:
        print("\n(successful trial: only the event-count summary is kept — "
              "failing trials keep the full timeline)")
        return
    print()
    for event in events:
        print(render_event(event))


def _cmd_runs_merge(args: argparse.Namespace) -> None:
    store = RunStore(args.store_dir)
    refs: List[str] = []
    for ref in args.run_ids:
        try:
            refs.append(store.resolve(ref, kind="trial_set"))
        except KeyError as exc:
            raise _fail(str(exc.args[0]))
    try:
        result = merge_runs(store, refs, label=args.label)
    except KeyError as exc:
        raise _fail(str(exc.args[0]))
    except ValueError as exc:
        raise _fail(str(exc))
    for run_id in result.created:
        print(f"merged run persisted as {run_id} in {store.root}")
    if result.skipped:
        print(f"skipped (no partner cell): {', '.join(result.skipped)}")
    if not result.created:
        raise _fail("nothing merged: no two input runs share an (experiment, label) cell")


def _cmd_runs_gc(args: argparse.Namespace) -> None:
    store = RunStore(args.store_dir)
    try:
        result = gc_runs(
            store,
            max_age_days=args.max_age_days,
            keep_count=args.keep,
            dry_run=args.dry_run,
        )
    except ValueError as exc:
        raise _fail(str(exc))
    verb = "would delete" if args.dry_run else "deleted"
    print(f"{verb} {len(result.deleted)} run(s), kept {len(result.kept)} in {store.root}")
    for run_id in result.deleted:
        print(f"  {verb}: {run_id}")


def _cmd_worker_serve(args: argparse.Namespace) -> None:
    try:
        server = WorkerServer(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            worker_id=args.worker_id,
            heartbeat_interval=args.heartbeat_interval,
            status_port=args.status_port,
        )
    except (OSError, ValueError) as exc:
        raise _fail(f"cannot start worker: {exc}")
    # One parseable line so scripts can discover an OS-assigned port (--port 0).
    print(f"worker {server.worker_id} listening on {server.address}", flush=True)
    if server.status_port is not None:
        print(f"status: http://{server.host}:{server.status_port}/", flush=True)
    if args.cache_dir:
        print(f"cache: {args.cache_dir} ({len(server.cache)} entries)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print(f"worker {server.worker_id}: executed {server.trials_executed} trial(s), shutting down")


def _cmd_cache_compact(args: argparse.Namespace) -> None:
    cache = ResultCache(args.cache_dir)
    try:
        result = cache.compact()
    except ValueError as exc:
        raise _fail(str(exc))
    print(
        f"compacted {cache.cache_dir}/trials.jsonl: kept {result['kept']} entr(ies), "
        f"dropped {result['dropped_superseded']} superseded and "
        f"{result['dropped_invalid']} stale/corrupt line(s)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--topologies", nargs="+", default=["line", "star", "clique"])
    table1.add_argument("--nodes", type=int, default=5)
    table1.add_argument("--phases", type=int, default=12)
    table1.add_argument("--trials", type=int, default=2)
    table1.add_argument("--measured-only", action="store_true")
    table1.add_argument("--output")
    _add_runtime_arguments(table1)
    table1.set_defaults(func=_cmd_table1)

    sweep = sub.add_parser("noise-sweep", help="success probability vs noise level")
    sweep.add_argument("--scheme", choices=sorted(SCHEME_PRESETS), default="algorithm_a")
    sweep.add_argument("--topology", default="line")
    sweep.add_argument("--nodes", type=int, default=5)
    sweep.add_argument("--phases", type=int, default=10)
    sweep.add_argument("--multipliers", nargs="+", type=float, default=[0.5, 1.0, 4.0, 16.0])
    sweep.add_argument("--trials", type=int, default=3)
    sweep.add_argument("--output")
    _add_runtime_arguments(sweep)
    sweep.set_defaults(func=_cmd_noise_sweep)

    rate = sub.add_parser("rate", help="constant-rate check (overhead vs CC(Pi))")
    rate.add_argument("--scheme", choices=sorted(SCHEME_PRESETS), default="algorithm_crs")
    rate.add_argument("--topology", default="clique")
    rate.add_argument("--nodes", type=int, default=5)
    rate.add_argument("--phases-grid", nargs="+", type=int, default=[8, 24, 48])
    rate.add_argument("--trials", type=int, default=1)
    rate.add_argument("--output")
    _add_runtime_arguments(rate)
    rate.set_defaults(func=_cmd_rate)

    ablations = sub.add_parser("ablations", help="design-choice ablations")
    ablations.add_argument(
        "--which", choices=["flag_passing", "rewind", "hash_length", "chunk_size", "all"], default="all"
    )
    ablations.add_argument("--trials", type=int, default=2)
    ablations.add_argument("--output")
    _add_runtime_arguments(ablations)
    ablations.set_defaults(func=_cmd_ablations)

    run = sub.add_parser("simulate", help="run one noise-resilient simulation")
    run.add_argument("--workload", choices=sorted(WORKLOAD_BUILDERS), default="gossip")
    run.add_argument("--topology", default="line")
    run.add_argument("--nodes", type=int, default=5)
    run.add_argument("--scheme", choices=sorted(SCHEME_PRESETS), default="algorithm_a")
    run.add_argument("--noise", type=float, default=0.002)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--store-dir", default=None, help="persist the result to this run store")
    run.add_argument("--output")
    _add_engine_arguments(run)
    run.set_defaults(func=_cmd_simulate)

    worker = sub.add_parser("worker", help="distributed-execution worker daemon")
    worker_sub = worker.add_subparsers(dest="worker_command", required=True)
    worker_serve = worker_sub.add_parser(
        "serve", help="serve trials on this host until interrupted"
    )
    worker_serve.add_argument("--host", default="127.0.0.1",
                              help="interface to bind (default 127.0.0.1; 0.0.0.0 for remote coordinators)")
    worker_serve.add_argument("--port", type=int, default=0,
                              help="TCP port (default 0 = OS-assigned, printed on startup)")
    worker_serve.add_argument("--cache-dir", default=None,
                              help="persist executed trials here and answer cache probes from it")
    worker_serve.add_argument("--worker-id", default=None,
                              help="stable id recorded in run attribution (default host:port)")
    worker_serve.add_argument("--heartbeat-interval", type=float, default=1.0,
                              help="seconds between liveness frames while a chunk runs (default 1.0)")
    worker_serve.add_argument("--status-port", type=int, default=None,
                              help="serve a live JSON status/metrics snapshot over HTTP "
                                   "on this port (0 = OS-assigned, printed on startup)")
    worker_serve.add_argument("--log-level", choices=["debug", "info", "warning", "error"],
                              default="warning", help="structured-log verbosity (default warning)")
    worker_serve.add_argument("--log-json", action="store_true",
                              help="emit structured logs as JSON lines")
    worker_serve.set_defaults(func=_cmd_worker_serve)

    cache = sub.add_parser("cache", help="trial-result cache hygiene")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_compact = cache_sub.add_parser(
        "compact", help="rewrite trials.jsonl keeping only the latest entry per trial key"
    )
    cache_compact.add_argument("--cache-dir", required=True,
                               help="the cache directory to compact")
    cache_compact.set_defaults(func=_cmd_cache_compact)

    runs = sub.add_parser("runs", help="list or inspect persisted experiment runs")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_sub.add_parser("list", help="list all runs in a store")
    runs_list.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    runs_list.add_argument("--kind", choices=["trial_set", "report", "bench", "trace"], default=None)
    runs_list.add_argument("--experiment", default=None)
    runs_list.set_defaults(func=_cmd_runs_list)

    runs_show = runs_sub.add_parser("show", help="show one persisted run")
    runs_show.add_argument("run_id", help="run id, or latest / latest~N")
    runs_show.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    runs_show.set_defaults(func=_cmd_runs_show)

    runs_trace = runs_sub.add_parser(
        "trace", help="render a stored trace: span tree + critical path"
    )
    runs_trace.add_argument("run_id", help="trace run id, or latest / latest~N")
    runs_trace.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    runs_trace.add_argument("--json", action="store_true",
                            help="dump the raw trace record as JSON")
    runs_trace.set_defaults(func=_cmd_runs_trace)

    runs_metrics = runs_sub.add_parser(
        "metrics", help="show the obs counters stored with a trial set (--obs)"
    )
    runs_metrics.add_argument("run_id", help="trial_set run id, or latest / latest~N")
    runs_metrics.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    runs_metrics.add_argument("--prefix", action="append", default=None, metavar="PREFIX",
                              help="only metrics starting with PREFIX (repeatable)")
    runs_metrics.add_argument("--json", action="store_true",
                              help="dump the metrics map as JSON")
    runs_metrics.set_defaults(func=_cmd_runs_metrics)

    runs_explain = runs_sub.add_parser(
        "explain", help="classify every failed trial of a run (--forensics) "
                        "into the failure taxonomy, with corruption heatmap "
                        "and Φ/rewind trajectories"
    )
    runs_explain.add_argument("run_id", help="trial_set run id, or latest / latest~N")
    runs_explain.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    runs_explain.add_argument("--round-bucket", type=int, default=1, metavar="N",
                              help="group the heatmap's rounds into buckets of N (default 1)")
    runs_explain.add_argument("--json", action="store_true",
                              help="dump the full forensic analysis as JSON")
    runs_explain.set_defaults(func=_cmd_runs_explain)

    runs_flight = runs_sub.add_parser(
        "flight", help="print one trial's flight-recorder event timeline (--forensics)"
    )
    runs_flight.add_argument("run_id", help="trial_set run id, or latest / latest~N")
    runs_flight.add_argument("seed", type=int, help="the trial's seed (shown by 'runs explain')")
    runs_flight.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    runs_flight.add_argument("--json", action="store_true",
                             help="dump the trial's forensic record as JSON")
    runs_flight.set_defaults(func=_cmd_runs_flight)

    runs_diff = runs_sub.add_parser(
        "diff", help="compare two runs cell by cell; exits 1 on regression"
    )
    runs_diff.add_argument("baseline", help="baseline run id, or latest / latest~N")
    runs_diff.add_argument("candidate", help="candidate run id, or latest / latest~N")
    runs_diff.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    runs_diff.add_argument(
        "--kind", choices=["trial_set", "bench", "report", "metrics"], default=None,
        help="restrict latest/latest~N resolution to this record kind; "
             "'metrics' diffs trial_set obs counters instead of outcomes",
    )
    runs_diff.add_argument(
        "--experiment", default=None,
        help="restrict latest/latest~N resolution to this experiment",
    )
    runs_diff.add_argument(
        "--wall-clock-tolerance", type=float, default=None,
        help=f"allowed fractional wall-clock increase (default 0.25, env {DIFF_WALL_CLOCK_ENV})",
    )
    runs_diff.add_argument(
        "--success-tolerance", type=float, default=None,
        help=f"allowed absolute success-rate drop (default 0.0, env {DIFF_SUCCESS_DROP_ENV})",
    )
    runs_diff.add_argument(
        "--min-wall-clock", type=float, default=0.005,
        help="wall-clock floor in seconds below which ratios never gate (default 0.005)",
    )
    runs_diff.add_argument(
        "--counter-tolerance", type=float, default=0.0,
        help="allowed fractional counter increase for --kind metrics (default 0.0 "
             "— obs counters are deterministic, any increase regresses)",
    )
    runs_diff.set_defaults(func=_cmd_runs_diff)

    runs_merge = runs_sub.add_parser(
        "merge", help="union trial sets of identical cells into a new, larger run"
    )
    runs_merge.add_argument("run_ids", nargs="+", metavar="run_id",
                            help="two or more trial_set run ids (or latest / latest~N)")
    runs_merge.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    runs_merge.add_argument("--label", default=None, help="label for the merged run(s)")
    runs_merge.set_defaults(func=_cmd_runs_merge)

    runs_gc = runs_sub.add_parser(
        "gc", help="prune old runs (never drops the latest run of an experiment)"
    )
    runs_gc.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    runs_gc.add_argument("--max-age-days", type=float, default=None,
                         help="delete runs older than this many days")
    runs_gc.add_argument("--keep", type=int, default=None,
                         help="keep only the N newest runs")
    runs_gc.add_argument("--dry-run", action="store_true",
                         help="report what would be deleted without deleting")
    runs_gc.set_defaults(func=_cmd_runs_gc)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(
        level=getattr(args, "log_level", "warning"),
        json_output=bool(getattr(args, "log_json", False)),
    )
    try:
        with _obs_scope(args):
            result = args.func(args)
    except BrokenPipeError:  # e.g. `repro runs list | head` closing the pipe early
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    return int(result) if result is not None else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
