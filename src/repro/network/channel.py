"""Channel primitives: symbols, transmission contexts and statistics.

The communication model (paper §2.1) is synchronous: in every round every
link may carry at most one symbol from the alphabet Σ (here Σ = {0, 1}) in
each direction, and a party may also stay silent.  A transmission is the
event of actually sending a symbol; the channel function is

    Ch : Σ ∪ {*} -> Σ ∪ {*}

where ``*`` ("no message") is represented by ``None`` throughout the code.
A corruption is any slot where the received value differs from the sent one:

* substitution — ``0 -> 1`` or ``1 -> 0``;
* deletion     — a symbol was sent but ``None`` is delivered;
* insertion    — nothing was sent but a symbol is delivered.

``ChannelStats`` keeps the accounting that the theorems are stated in terms
of: the total number of transmissions (the communication complexity ``CC``),
the number of corruptions of each kind, and per-phase breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

Symbol = Optional[int]  # 0, 1 or None (silence / the paper's "*")

#: Encoding used by the additive adversary of the paper (§2.1, "additive
#: adversary"): symbols are mapped to Z_3 with ``None`` encoded as 2, the
#: adversary adds an offset in {0, 1, 2} mod 3, and the result is mapped back.
SYMBOL_TO_TRIT = {0: 0, 1: 1, None: 2}
TRIT_TO_SYMBOL = {0: 0, 1: 1, 2: None}


def apply_additive_noise(sent: Symbol, offset: int) -> Symbol:
    """Apply an additive-adversary offset (mod 3) to a channel symbol."""
    if offset not in (0, 1, 2):
        raise ValueError(f"additive offset must be in {{0,1,2}}, got {offset}")
    return TRIT_TO_SYMBOL[(SYMBOL_TO_TRIT[sent] + offset) % 3]


def classify_corruption(sent: Symbol, received: Symbol) -> Optional[str]:
    """Return 'substitution' / 'deletion' / 'insertion' or ``None`` if clean."""
    if sent == received:
        return None
    if sent is None:
        return "insertion"
    if received is None:
        return "deletion"
    return "substitution"


@dataclass(frozen=True)
class TransmissionContext:
    """Metadata describing one channel slot (one round, one directed link).

    Adversaries receive this context when deciding whether to corrupt a slot.
    ``phase`` is one of ``"randomness_exchange"``, ``"meeting_points"``,
    ``"flag_passing"``, ``"simulation"``, ``"rewind"`` or ``"baseline"``;
    ``iteration`` is the index of the outer iteration of Algorithm 1 (or -1
    outside the main loop).
    """

    round_index: int
    sender: int
    receiver: int
    phase: str
    iteration: int = -1
    slot_index: int = 0


class WindowContext:
    """Metadata describing one window of consecutive slots on one directed link.

    The batched transmission path hands one ``WindowContext`` per directed
    link to :meth:`~repro.adversary.base.Adversary.corrupt_window`; slot
    ``offset`` of the window corresponds to absolute round
    ``base_round + offset``.  :meth:`slot` materialises the equivalent
    per-slot :class:`TransmissionContext`, which is what the fallback path
    (and any adversary that only implements ``corrupt``) consumes.

    A hand-rolled ``__slots__`` class rather than a dataclass: one instance
    is allocated per (link, window) on the transport hot path, where the
    dataclass machinery is measurable overhead.
    """

    __slots__ = ("link", "phase", "iteration", "base_round")

    def __init__(
        self,
        link: Tuple[int, int],
        phase: str,
        iteration: int = -1,
        base_round: int = 0,
    ) -> None:
        self.link = link
        self.phase = phase
        self.iteration = iteration
        self.base_round = base_round

    @property
    def sender(self) -> int:
        return self.link[0]

    @property
    def receiver(self) -> int:
        return self.link[1]

    def slot(self, offset: int) -> TransmissionContext:
        """The per-slot context of window offset ``offset``."""
        return TransmissionContext(
            round_index=self.base_round + offset,
            sender=self.link[0],
            receiver=self.link[1],
            phase=self.phase,
            iteration=self.iteration,
            slot_index=offset,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowContext(link={self.link!r}, phase={self.phase!r}, "
            f"iteration={self.iteration}, base_round={self.base_round})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowContext):
            return NotImplemented
        return (
            self.link == other.link
            and self.phase == other.phase
            and self.iteration == other.iteration
            and self.base_round == other.base_round
        )

    def __hash__(self) -> int:
        return hash((self.link, self.phase, self.iteration, self.base_round))


@dataclass
class ChannelStats:
    """Running totals of transmissions and corruptions."""

    transmissions: int = 0
    delivered_symbols: int = 0
    substitutions: int = 0
    deletions: int = 0
    insertions: int = 0
    transmissions_by_phase: Dict[str, int] = field(default_factory=dict)
    corruptions_by_phase: Dict[str, int] = field(default_factory=dict)
    corruptions_by_link: Dict[tuple, int] = field(default_factory=dict)

    @property
    def corruptions(self) -> int:
        """Total number of corrupted slots (each counts once, per the paper)."""
        return self.substitutions + self.deletions + self.insertions

    @property
    def communication_bits(self) -> int:
        """Communication complexity in bits (|Σ| = 2, so 1 bit per transmission)."""
        return self.transmissions

    def noise_fraction(self) -> float:
        """Fraction of corrupted transmissions (0 when nothing was sent)."""
        if self.transmissions == 0:
            return 0.0
        return self.corruptions / self.transmissions

    def record(self, ctx: TransmissionContext, sent: Symbol, received: Symbol) -> None:
        """Account one channel slot."""
        if sent is not None:
            self.transmissions += 1
            self.transmissions_by_phase[ctx.phase] = self.transmissions_by_phase.get(ctx.phase, 0) + 1
        if received is not None:
            self.delivered_symbols += 1
        kind = classify_corruption(sent, received)
        if kind is None:
            return
        if kind == "substitution":
            self.substitutions += 1
        elif kind == "deletion":
            self.deletions += 1
        else:
            self.insertions += 1
        self.corruptions_by_phase[ctx.phase] = self.corruptions_by_phase.get(ctx.phase, 0) + 1
        link = (ctx.sender, ctx.receiver)
        self.corruptions_by_link[link] = self.corruptions_by_link.get(link, 0) + 1

    def record_window(
        self,
        ctx: WindowContext,
        sent: Sequence[Symbol],
        received: Sequence[Symbol],
    ) -> None:
        """Account one whole window on one directed link in a single pass.

        Equivalent to calling :meth:`record` once per slot with the matching
        :class:`TransmissionContext` — same totals, same per-phase and
        per-link breakdowns — but the dictionaries are touched at most once
        per window instead of once per slot.
        """
        transmissions = 0
        delivered = 0
        substitutions = 0
        deletions = 0
        insertions = 0
        for sent_symbol, received_symbol in zip(sent, received):
            if sent_symbol is not None:
                transmissions += 1
            if received_symbol is not None:
                delivered += 1
            if sent_symbol != received_symbol:
                if sent_symbol is None:
                    insertions += 1
                elif received_symbol is None:
                    deletions += 1
                else:
                    substitutions += 1
        self.delivered_symbols += delivered
        if transmissions:
            self.transmissions += transmissions
            phase_counts = self.transmissions_by_phase
            phase_counts[ctx.phase] = phase_counts.get(ctx.phase, 0) + transmissions
        corruptions = substitutions + deletions + insertions
        if corruptions:
            self.substitutions += substitutions
            self.deletions += deletions
            self.insertions += insertions
            phase_corruptions = self.corruptions_by_phase
            phase_corruptions[ctx.phase] = phase_corruptions.get(ctx.phase, 0) + corruptions
            link_corruptions = self.corruptions_by_link
            link_corruptions[ctx.link] = link_corruptions.get(ctx.link, 0) + corruptions

    def record_window_packed(
        self,
        ctx: WindowContext,
        sent_bits: int,
        sent_present: int,
        received_bits: int,
        received_present: int,
    ) -> None:
        """Packed-plane variant of :meth:`record_window` — O(1) popcounts.

        ``(bits, present)`` planes follow the
        :func:`~repro.utils.bitstring.pack_symbols` convention (``bits`` is a
        subset of ``present``; a cleared ``present`` bit is silence).  The
        totals and per-phase/per-link breakdowns are identical to the
        symbol-sequence path: a substitution is a slot present on both sides
        with differing bits, a deletion is present→absent, an insertion is
        absent→present.
        """
        transmissions = sent_present.bit_count()
        delivered = received_present.bit_count()
        both = sent_present & received_present
        substitutions = ((sent_bits ^ received_bits) & both).bit_count()
        deletions = (sent_present & ~received_present).bit_count()
        insertions = (received_present & ~sent_present).bit_count()
        self.delivered_symbols += delivered
        if transmissions:
            self.transmissions += transmissions
            phase_counts = self.transmissions_by_phase
            phase_counts[ctx.phase] = phase_counts.get(ctx.phase, 0) + transmissions
        corruptions = substitutions + deletions + insertions
        if corruptions:
            self.substitutions += substitutions
            self.deletions += deletions
            self.insertions += insertions
            phase_corruptions = self.corruptions_by_phase
            phase_corruptions[ctx.phase] = phase_corruptions.get(ctx.phase, 0) + corruptions
            link_corruptions = self.corruptions_by_link
            link_corruptions[ctx.link] = link_corruptions.get(ctx.link, 0) + corruptions

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict summary convenient for reports and benchmarks."""
        return {
            "transmissions": self.transmissions,
            "corruptions": self.corruptions,
            "substitutions": self.substitutions,
            "deletions": self.deletions,
            "insertions": self.insertions,
            "noise_fraction": self.noise_fraction(),
        }
