"""Topology generators.

The paper's results hold for arbitrary connected topologies; its discussion
keeps returning to a few canonical families (the line of the §1.2 example,
the star of JKL15, the clique of ABGEH16, bounded-degree graphs of RS94).
These generators produce those families plus grids, binary trees and
connected Erdős–Rényi graphs for randomized sweeps.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.network.graph import Graph
from repro.utils.rng import make_rng


def line_topology(num_nodes: int) -> Graph:
    """The path graph 1-2-...-n used in the paper's motivating example."""
    _require_nodes(num_nodes, minimum=2)
    return Graph.from_edges(num_nodes, [(i, i + 1) for i in range(num_nodes - 1)])


def ring_topology(num_nodes: int) -> Graph:
    """A cycle; the constant-degree graph discussed by Gelles-Kalai (GK17)."""
    _require_nodes(num_nodes, minimum=3)
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return Graph.from_edges(num_nodes, edges)


def star_topology(num_nodes: int) -> Graph:
    """A star with node 0 as the centre (the JKL15 topology)."""
    _require_nodes(num_nodes, minimum=2)
    return Graph.from_edges(num_nodes, [(0, i) for i in range(1, num_nodes)])


def complete_topology(num_nodes: int) -> Graph:
    """The clique K_n (the ABGEH16 topology)."""
    _require_nodes(num_nodes, minimum=2)
    edges = [(i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)]
    return Graph.from_edges(num_nodes, edges)


def grid_topology(rows: int, cols: int) -> Graph:
    """A rows x cols grid graph."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    if rows * cols < 2:
        raise ValueError("grid must have at least two nodes")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return Graph.from_edges(rows * cols, edges)


def binary_tree_topology(num_nodes: int) -> Graph:
    """A complete-ish binary tree with nodes 0..n-1 (heap indexing)."""
    _require_nodes(num_nodes, minimum=2)
    edges = []
    for child in range(1, num_nodes):
        parent = (child - 1) // 2
        edges.append((parent, child))
    return Graph.from_edges(num_nodes, edges)


def random_connected_topology(
    num_nodes: int,
    edge_probability: float = 0.3,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> Graph:
    """A connected Erdős–Rényi-style graph.

    A uniformly random spanning tree (random Prüfer-free incremental
    attachment) guarantees connectivity; every other pair is added
    independently with probability ``edge_probability``.
    """
    _require_nodes(num_nodes, minimum=2)
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must lie in [0, 1]")
    generator = rng if rng is not None else make_rng(seed)
    graph = Graph(num_nodes)
    # Random attachment tree for connectivity.
    order = list(range(num_nodes))
    generator.shuffle(order)
    for index in range(1, num_nodes):
        attach_to = order[generator.randrange(index)]
        graph.add_edge(order[index], attach_to)
    # Extra random edges.
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if not graph.has_edge(u, v) and generator.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


TOPOLOGY_BUILDERS = {
    "line": line_topology,
    "ring": ring_topology,
    "star": star_topology,
    "clique": complete_topology,
    "binary_tree": binary_tree_topology,
}


def build_topology(name: str, num_nodes: int, seed: int = 0) -> Graph:
    """Build a named topology; ``random`` accepts a seed for reproducibility."""
    if name == "random":
        return random_connected_topology(num_nodes, seed=seed)
    if name == "grid":
        # Closest-to-square grid with the requested number of nodes (>= num_nodes).
        rows = max(1, int(num_nodes ** 0.5))
        cols = (num_nodes + rows - 1) // rows
        return grid_topology(rows, cols)
    try:
        builder = TOPOLOGY_BUILDERS[name]
    except KeyError as exc:
        raise ValueError(f"unknown topology {name!r}; known: {sorted(TOPOLOGY_BUILDERS) + ['random', 'grid']}") from exc
    return builder(num_nodes)


def _require_nodes(num_nodes: int, minimum: int) -> None:
    if num_nodes < minimum:
        raise ValueError(f"topology requires at least {minimum} nodes, got {num_nodes}")
