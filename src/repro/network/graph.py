"""A small, dependency-free undirected graph type.

The paper works over an arbitrary connected simple graph ``G = (V, E)`` whose
nodes are the parties and whose edges are bidirectional communication links.
``Graph`` below is deliberately minimal: node set, adjacency, undirected edge
set, plus the traversals the coding scheme needs (BFS, connectivity,
diameter, shortest-path distances).

Nodes are integers ``0 .. n-1``.  Edges are stored as ordered tuples
``(u, v)`` with ``u < v`` so they can be used as dictionary keys; the helper
:func:`edge_key` performs that normalisation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

Edge = Tuple[int, int]
DirectedEdge = Tuple[int, int]


def edge_key(u: int, v: int) -> Edge:
    """Canonical (sorted) representation of the undirected edge {u, v}."""
    if u == v:
        raise ValueError(f"self-loops are not allowed (node {u})")
    return (u, v) if u < v else (v, u)


@dataclass
class Graph:
    """An undirected simple graph over nodes ``0..n-1``."""

    num_nodes: int
    _adjacency: Dict[int, Set[int]] = field(default_factory=dict)
    _edges: Set[Edge] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("a graph needs at least one node")
        for node in range(self.num_nodes):
            self._adjacency.setdefault(node, set())
        # Lazy caches of the directed-edge view; the transport asks for it
        # once per window exchange, so it must not be rebuilt per call.
        # Deliberately plain attributes (not dataclass fields): derived state
        # must stay invisible to dataclass-field walkers such as the trial
        # fingerprinter.
        self._directed_cache: Optional[Tuple[DirectedEdge, ...]] = None
        self._directed_set_cache: Optional[FrozenSet[DirectedEdge]] = None
        self._directed_index_cache: Optional[Dict[DirectedEdge, int]] = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_edges(cls, num_nodes: int, edges: Iterable[Tuple[int, int]]) -> "Graph":
        """Build a graph from an edge list."""
        graph = cls(num_nodes)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def add_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge {u, v}.  Idempotent."""
        self._check_node(u)
        self._check_node(v)
        key = edge_key(u, v)
        self._edges.add(key)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._directed_cache = None
        self._directed_set_cache = None
        self._directed_index_cache = None

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside range [0, {self.num_nodes})")

    # -- basic queries ----------------------------------------------------

    @property
    def nodes(self) -> List[int]:
        return list(range(self.num_nodes))

    @property
    def edges(self) -> List[Edge]:
        return sorted(self._edges)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def directed_edges(self) -> Tuple[DirectedEdge, ...]:
        """All ordered pairs (u, v) such that {u, v} is an edge (cached)."""
        cached = self._directed_cache
        if cached is None:
            out: List[DirectedEdge] = []
            for u, v in self.edges:
                out.append((u, v))
                out.append((v, u))
            cached = self._directed_cache = tuple(out)
        return cached

    def directed_edge_set(self) -> FrozenSet[DirectedEdge]:
        """The directed edges as a set, for O(1) link validation (cached)."""
        cached = self._directed_set_cache
        if cached is None:
            cached = self._directed_set_cache = frozenset(self.directed_edges())
        return cached

    def directed_edge_index(self) -> Dict[DirectedEdge, int]:
        """Position of each directed edge within :meth:`directed_edges` (cached).

        The transport uses this to visit a sparse subset of links in the same
        canonical order as a full scan, without paying for the scan.
        """
        cached = self._directed_index_cache
        if cached is None:
            cached = self._directed_index_cache = {
                link: position for position, link in enumerate(self.directed_edges())
            }
        return cached

    def has_edge(self, u: int, v: int) -> bool:
        return edge_key(u, v) in self._edges

    def neighbors(self, node: int) -> List[int]:
        """Sorted neighbourhood N(node)."""
        self._check_node(node)
        return sorted(self._adjacency[node])

    def degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._adjacency[node])

    def max_degree(self) -> int:
        return max(self.degree(node) for node in self.nodes)

    def __contains__(self, edge: Tuple[int, int]) -> bool:
        return self.has_edge(*edge)

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    # -- traversals -------------------------------------------------------

    def bfs_order(self, root: int = 0) -> List[int]:
        """Nodes reachable from ``root`` in BFS order (neighbours visited sorted)."""
        self._check_node(root)
        seen = {root}
        order = [root]
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for neighbor in self.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    order.append(neighbor)
                    queue.append(neighbor)
        return order

    def bfs_parents(self, root: int = 0) -> Dict[int, Optional[int]]:
        """BFS parent pointers; ``None`` for the root.  Only reachable nodes appear."""
        self._check_node(root)
        parents: Dict[int, Optional[int]] = {root: None}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for neighbor in self.neighbors(node):
                if neighbor not in parents:
                    parents[neighbor] = node
                    queue.append(neighbor)
        return parents

    def distances_from(self, source: int) -> Dict[int, int]:
        """Hop distances from ``source`` to every reachable node."""
        self._check_node(source)
        dist = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor in self.neighbors(node):
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        return dist

    def is_connected(self) -> bool:
        return len(self.bfs_order(0)) == self.num_nodes

    def diameter(self) -> int:
        """Largest hop distance between any two nodes (graph must be connected)."""
        if not self.is_connected():
            raise ValueError("diameter is only defined for connected graphs")
        best = 0
        for source in self.nodes:
            best = max(best, max(self.distances_from(source).values()))
        return best

    # -- misc ---------------------------------------------------------------

    def copy(self) -> "Graph":
        return Graph.from_edges(self.num_nodes, self.edges)

    def validate_connected_simple(self) -> None:
        """Raise if the graph is not a connected simple graph (paper's assumption)."""
        if not self.is_connected():
            raise ValueError("the network graph must be connected")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
