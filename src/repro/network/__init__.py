"""Network substrate: graphs, topologies, spanning trees and noisy transport."""

from repro.network.channel import (
    ChannelStats,
    Symbol,
    TransmissionContext,
    WindowContext,
    apply_additive_noise,
    classify_corruption,
)
from repro.network.graph import Graph, edge_key
from repro.network.spanning_tree import SpanningTree
from repro.network.topologies import (
    binary_tree_topology,
    build_topology,
    complete_topology,
    grid_topology,
    line_topology,
    random_connected_topology,
    ring_topology,
    star_topology,
)
from repro.network.transport import NoisyNetwork

__all__ = [
    "ChannelStats",
    "Symbol",
    "TransmissionContext",
    "WindowContext",
    "apply_additive_noise",
    "classify_corruption",
    "Graph",
    "edge_key",
    "SpanningTree",
    "binary_tree_topology",
    "build_topology",
    "complete_topology",
    "grid_topology",
    "line_topology",
    "random_connected_topology",
    "ring_topology",
    "star_topology",
    "NoisyNetwork",
]
