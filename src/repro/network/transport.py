"""The synchronous noisy transport layer.

``NoisyNetwork`` is the single place where symbols cross from a sender to a
receiver.  It

* validates that transmissions only use existing links,
* hands the traffic to the adversary,
* keeps the global round counter and all communication / corruption
  statistics (:class:`~repro.network.channel.ChannelStats`), and
* exposes window-oriented helpers (``exchange_window``) because every phase
  of the coding scheme transmits a fixed-length burst of symbols on many
  links in parallel, one symbol per round per direction.

Four transmission paths exist:

* the **packed fast path** (default on the engine hot path):
  ``exchange_window_packed`` carries each directed link's window as a
  ``(bits, present)`` integer plane pair (the
  :func:`~repro.utils.bitstring.pack_symbols` convention) end to end — one
  :meth:`~repro.adversary.base.Adversary.corrupt_window_packed` call and one
  O(1)-popcount :meth:`~repro.network.channel.ChannelStats.record_window_packed`
  pass per link, with no per-slot symbol objects anywhere;
* the **batched path**: ``exchange_window`` makes one
  :meth:`~repro.adversary.base.Adversary.corrupt_window` call per directed
  link and one :meth:`~repro.network.channel.ChannelStats.record_window`
  bookkeeping pass per window — no per-slot contexts, calls or dictionary
  updates;
* the **single-slot compatibility path**: ``transmit`` carries one symbol
  through the classic ``TransmissionContext`` → ``corrupt`` → ``record`` →
  ``notify_delivery`` pipeline, and ``exchange_window_per_slot`` runs a whole
  window through it.  The two paths are bit-identical for every adversary
  honouring the ``corrupt_window`` contract (the equivalence suite in
  ``tests/test_transport.py`` pins this for all stock adversaries);
* the **merged phase path**: ``exchange_phase`` opens one
  :class:`PhaseExchange` covering a whole phase's rounds for adversaries
  honouring the slot-addressed contract
  (:attr:`~repro.adversary.base.Adversary.slot_addressed`).  The engine
  evaluates each slot the moment it knows the sent symbol — data-dependent
  rounds included — and the transport records the entire phase in one
  accounting pass at commit, bit-identical to the lockstep schedules above.

The engine never talks to the adversary directly; everything goes through
this class so the accounting cannot be bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.adversary.base import Adversary, NoiselessAdversary
from repro.network.channel import ChannelStats, Symbol, TransmissionContext, WindowContext
from repro.network.graph import Graph
from repro.obs.context import get_obs
from repro.obs.recorder import link_label
from repro.utils.bitstring import unpack_symbols

_VALID_SYMBOLS = (0, 1, None)


@dataclass
class NoisyNetwork:
    """Synchronous message transport over a graph with an adversary attached."""

    graph: Graph
    adversary: Adversary = field(default_factory=NoiselessAdversary)
    stats: ChannelStats = field(default_factory=ChannelStats)
    current_round: int = 0
    #: When ``False``, ``exchange_window`` routes through the single-slot
    #: compatibility path instead of the batched one.  The two are
    #: bit-identical; the flag exists for equivalence tests and benchmarks.
    batched: bool = True

    #: Dispatch accounting for ``repro.obs``: plain integers kept hot-path
    #: cheap (one add per window) and flushed into the ambient metrics
    #: registry once per trial by the engine.  ``idle_rounds_collapsed`` is
    #: credited by the engine at its window-collapse sites, not by
    #: ``advance_rounds`` itself (which every window exchange also calls).
    windows_exchanged: int = 0
    sparse_dispatches: int = 0
    dense_dispatches: int = 0
    merged_dispatches: int = 0
    packed_dispatches: int = 0
    idle_rounds_collapsed: int = 0

    def __post_init__(self) -> None:
        self._check_notify_contract(self.adversary)
        # Construction-time capture of the ambient flight recorder (mirrors
        # the engine's obs capture): a plain attribute, not a dataclass field,
        # so it stays invisible to fingerprints, ``repr`` and equality.  The
        # recorder only ever *reads* traffic the stats already account, so it
        # cannot perturb deliveries, budgets or the round clock.
        self.recorder = get_obs().recorder

    @staticmethod
    def _check_notify_contract(adversary: Adversary) -> None:
        """Reject adversaries whose batch path would silently skip notifications.

        The stock native ``corrupt_window`` overrides never call
        ``notify_delivery`` (it is a no-op for every stock adversary).  A
        subclass that overrides ``notify_delivery`` while *inheriting* such an
        override would therefore record different state on the batched and
        per-slot paths — the exact silent divergence the bit-identity
        guarantee forbids.  The hazard exists precisely when the class
        providing ``corrupt_window`` is unrelated to (not a subclass of, and
        not the base fallback seen by) the class providing
        ``notify_delivery``; overriding ``corrupt_window`` alongside (or
        below) the notify override, or restoring the base fallback with
        ``corrupt_window = Adversary.corrupt_window``, declares the pairing
        intentional.
        """
        adversary_type = type(adversary)
        if adversary_type.notify_delivery is Adversary.notify_delivery:
            return
        corrupt_window_owner = next(
            klass for klass in adversary_type.__mro__ if "corrupt_window" in klass.__dict__
        )
        notify_owner = next(
            klass for klass in adversary_type.__mro__ if "notify_delivery" in klass.__dict__
        )
        if corrupt_window_owner is Adversary:
            return  # the base fallback interleaves notify_delivery per slot
        if issubclass(corrupt_window_owner, notify_owner):
            return  # whoever wrote corrupt_window knew about the notify hook
        raise ValueError(
            f"{adversary_type.__name__} overrides notify_delivery but inherits "
            f"corrupt_window from {corrupt_window_owner.__name__}, whose batch path "
            "never notifies: override corrupt_window too, or restore the per-slot "
            "fallback with `corrupt_window = Adversary.corrupt_window`"
        )

    # -- round bookkeeping --------------------------------------------------

    def advance_rounds(self, count: int) -> None:
        """Advance the global clock by ``count`` silent rounds."""
        if count < 0:
            raise ValueError("cannot advance by a negative number of rounds")
        self.current_round += count

    # -- single-slot transmission -------------------------------------------

    def transmit(
        self,
        sender: int,
        receiver: int,
        symbol: Symbol,
        phase: str,
        iteration: int = -1,
        round_offset: int = 0,
        slot_index: int = 0,
    ) -> Symbol:
        """Send one symbol (or silence) over a directed link and return what arrives."""
        if not self.graph.has_edge(sender, receiver):
            raise ValueError(f"({sender}, {receiver}) is not a link of the network")
        if symbol not in _VALID_SYMBOLS:
            raise ValueError(f"invalid channel symbol {symbol!r}")
        ctx = TransmissionContext(
            round_index=self.current_round + round_offset,
            sender=sender,
            receiver=receiver,
            phase=phase,
            iteration=iteration,
            slot_index=slot_index,
        )
        received = self.adversary.corrupt(ctx, symbol)
        if received not in _VALID_SYMBOLS:
            raise ValueError(f"adversary produced invalid symbol {received!r}")
        self.stats.record(ctx, symbol, received)
        recorder = self.recorder
        if recorder is not None and received != symbol:
            recorder.record_window(
                link_label(sender, receiver), phase, iteration, ctx.round_index,
                (symbol,), (received,),
            )
        self.adversary.notify_delivery(ctx, symbol, received)
        return received

    # -- window transmission --------------------------------------------------

    def exchange_window(
        self,
        messages: Dict[Tuple[int, int], Sequence[Symbol]],
        window_rounds: int,
        phase: str,
        iteration: int = -1,
        sparse: bool = False,
    ) -> Dict[Tuple[int, int], List[Symbol]]:
        """Run ``window_rounds`` synchronous rounds in which each directed link
        ``(u, v)`` carries the symbol sequence ``messages[(u, v)]`` (padded with
        silence up to the window length).

        Every directed link of the graph participates in every round of the
        window, even if its sender stays silent: this is what allows the
        adversary to *insert* symbols on idle links, exactly as in the paper's
        noise model.  Message keys must be directed links of the network.
        Returns the symbols delivered on every directed link.

        ``sparse=True`` permits (but does not guarantee) omitting silent links
        from the result when the adversary cannot insert — a silent link under
        a non-inserting adversary always delivers pure silence, so the caller
        loses nothing by treating a missing key as an all-``None`` window.
        The wire behaviour (adversary calls, statistics, clock) is identical;
        only the shape of the returned mapping changes.  Engine phases that
        transmit on a handful of links per round use this to skip the
        O(links) result-building work entirely.
        """
        self._validate_window(messages, window_rounds)
        if not self.batched:
            return self._exchange_window_per_slot(messages, window_rounds, phase, iteration, sparse)

        adversary = self.adversary
        corrupt_window = adversary.corrupt_window
        may_insert = adversary.may_insert
        stats = self.stats
        base_round = self.current_round
        omit_silent = sparse and not may_insert
        self.windows_exchanged += 1
        if omit_silent:
            self.sparse_dispatches += 1
        else:
            self.dense_dispatches += 1
        # The adversary sees the window as an immutable tuple, so the sent
        # record used for corruption accounting below cannot be mutated in
        # place — the accounting structurally cannot be bypassed.  The
        # all-silent window is shared across links (it is never writable).
        silence_tuple = (None,) * window_rounds
        silence_list = [None] * window_rounds
        received: Dict[Tuple[int, int], List[Symbol]] = {}
        if omit_silent:
            # Silent links are skipped entirely, so only the message links are
            # visited — in canonical directed-edge order, because stateful
            # adversaries must see corrupt_window calls in the same sequence
            # as a full scan would produce.
            link_index = self.graph.directed_edge_index()
            links: Sequence[Tuple[int, int]] = sorted(messages, key=link_index.__getitem__)
        else:
            links = self.graph.directed_edges()
        for link in links:
            outgoing = messages.get(link)
            if outgoing is None:
                if not may_insert:
                    # A non-inserting adversary maps silence to silence; skip
                    # the whole window (the slots carry no bits).
                    if not omit_silent:
                        received[link] = [None] * window_rounds
                    continue
                window_tuple = silence_tuple
                window = silence_list  # read-only: compared and counted, never handed out
            else:
                window = list(outgoing)
                if len(window) < window_rounds:
                    window.extend([None] * (window_rounds - len(window)))
                window_tuple = tuple(window)
            ctx = WindowContext(link=link, phase=phase, iteration=iteration, base_round=base_round)
            delivered = corrupt_window(ctx, window_tuple)
            if type(delivered) is not list:
                delivered = list(delivered)
            if delivered == window:
                # Untouched window: the input was already validated, so only
                # the transmission counters can change — and an all-silent
                # window cannot even do that.
                if outgoing is not None:
                    stats.record_window(ctx, window, delivered)
            else:
                if len(delivered) != window_rounds:
                    raise ValueError(
                        f"adversary delivered {len(delivered)} symbols for a "
                        f"{window_rounds}-round window on link {link}"
                    )
                for value in delivered:
                    if value not in _VALID_SYMBOLS:
                        raise ValueError(f"adversary produced invalid symbol {value!r}")
                stats.record_window(ctx, window, delivered)
                if self.recorder is not None:
                    self.recorder.record_window(
                        link_label(*link), phase, iteration, base_round, window, delivered
                    )
            received[link] = delivered
        self.advance_rounds(window_rounds)
        return received

    def exchange_window_packed(
        self,
        messages: Dict[Tuple[int, int], Tuple[int, int]],
        window_rounds: int,
        phase: str,
        iteration: int = -1,
        sparse: bool = False,
    ) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """Packed-plane variant of :meth:`exchange_window`.

        Each directed link's window travels as one ``(bits, present)``
        integer plane pair following the
        :func:`~repro.utils.bitstring.pack_symbols` convention — slot ``i``
        carries bit ``i`` of ``bits`` iff bit ``i`` of ``present`` is set —
        instead of a symbol sequence.  Wire behaviour, statistics, clock and
        the ``sparse`` contract are identical to :meth:`exchange_window`
        (``tests/test_transport.py`` pins the bit-identity for all stock
        adversaries); what changes is the cost model: validation is two mask
        checks per link, corruption is one
        :meth:`~repro.adversary.base.Adversary.corrupt_window_packed` call,
        and accounting is O(1) popcounts.
        """
        if window_rounds < 0:
            raise ValueError("window_rounds must be non-negative")
        adversary = self.adversary
        corrupt_window_packed = adversary.corrupt_window_packed
        may_insert = adversary.may_insert
        stats = self.stats
        recorder = self.recorder
        base_round = self.current_round
        omit_silent = sparse and not may_insert
        self.windows_exchanged += 1
        self.packed_dispatches += 1
        if omit_silent:
            self.sparse_dispatches += 1
        else:
            self.dense_dispatches += 1
        if messages:
            edge_set = self.graph.directed_edge_set()
            for link, (bits, present) in messages.items():
                if link not in edge_set:
                    raise ValueError(
                        f"message keyed on unknown link {link}: not a directed edge of the network"
                    )
                if bits & ~present:
                    raise ValueError(
                        f"message on link {link} sets bits outside its present mask"
                    )
                if present >> window_rounds:
                    sender, receiver = link
                    raise ValueError(
                        f"message on link ({sender}, {receiver}) has symbols beyond "
                        f"the {window_rounds}-round window"
                    )
        received: Dict[Tuple[int, int], Tuple[int, int]] = {}
        if omit_silent:
            # Same canonical directed-edge order as the batched sparse
            # dispatch, for the same reason: stateful adversaries must see
            # the corruption calls in the sequence a full scan would produce.
            link_index = self.graph.directed_edge_index()
            links: Sequence[Tuple[int, int]] = sorted(messages, key=link_index.__getitem__)
        else:
            links = self.graph.directed_edges()
        for link in links:
            outgoing = messages.get(link)
            if outgoing is None:
                if not may_insert:
                    if not omit_silent:
                        received[link] = (0, 0)
                    continue
                bits = present = 0
            else:
                bits, present = outgoing
            ctx = WindowContext(link=link, phase=phase, iteration=iteration, base_round=base_round)
            dbits, dpresent = corrupt_window_packed(ctx, bits, present, window_rounds)
            if dbits == bits and dpresent == present:
                # Untouched window: only the transmission counters can
                # change, and an all-silent window cannot even do that.
                if present:
                    stats.record_window_packed(ctx, bits, present, dbits, dpresent)
            else:
                if dbits & ~dpresent:
                    raise ValueError(
                        f"adversary delivered bits outside the present mask on link {link}"
                    )
                if dpresent >> window_rounds:
                    raise ValueError(
                        f"adversary delivered symbols beyond the "
                        f"{window_rounds}-round window on link {link}"
                    )
                stats.record_window_packed(ctx, bits, present, dbits, dpresent)
                if recorder is not None:
                    recorder.record_window(
                        link_label(*link), phase, iteration, base_round,
                        unpack_symbols(bits, present, window_rounds),
                        unpack_symbols(dbits, dpresent, window_rounds),
                    )
            received[link] = (dbits, dpresent)
        self.advance_rounds(window_rounds)
        return received

    def exchange_window_per_slot(
        self,
        messages: Dict[Tuple[int, int], Sequence[Symbol]],
        window_rounds: int,
        phase: str,
        iteration: int = -1,
        sparse: bool = False,
    ) -> Dict[Tuple[int, int], List[Symbol]]:
        """The single-slot reference implementation of :meth:`exchange_window`.

        Every slot goes through :meth:`transmit` individually.  This is the
        semantics the batched path must reproduce bit for bit; it is kept as
        a first-class method so equivalence tests and benchmarks can run both
        paths side by side.  ``sparse`` has the same meaning (and the same
        wire-identical guarantee) as on :meth:`exchange_window`.
        """
        self._validate_window(messages, window_rounds)
        return self._exchange_window_per_slot(messages, window_rounds, phase, iteration, sparse)

    def _exchange_window_per_slot(
        self,
        messages: Dict[Tuple[int, int], Sequence[Symbol]],
        window_rounds: int,
        phase: str,
        iteration: int,
        sparse: bool = False,
    ) -> Dict[Tuple[int, int], List[Symbol]]:
        received: Dict[Tuple[int, int], List[Symbol]] = {}
        may_insert = self.adversary.may_insert
        omit_silent = sparse and not may_insert
        self.windows_exchanged += 1
        if omit_silent:
            # Same canonical order and same result shape as the batched
            # sparse dispatch: silent links carry no bits for a non-inserting
            # adversary, so they are omitted from the scan and the result.
            self.sparse_dispatches += 1
            link_index = self.graph.directed_edge_index()
            links: Sequence[Tuple[int, int]] = sorted(messages, key=link_index.__getitem__)
        else:
            self.dense_dispatches += 1
            links = self.graph.directed_edges()
        for sender, receiver in links:
            outgoing = list(messages.get((sender, receiver), ()))
            delivered: List[Symbol] = []
            for offset in range(window_rounds):
                symbol = outgoing[offset] if offset < len(outgoing) else None
                if symbol is None and not may_insert:
                    delivered.append(None)
                    continue
                delivered.append(
                    self.transmit(
                        sender,
                        receiver,
                        symbol,
                        phase=phase,
                        iteration=iteration,
                        round_offset=offset,
                        slot_index=offset,
                    )
                )
            received[(sender, receiver)] = delivered
        self.advance_rounds(window_rounds)
        return received

    # -- merged phase transmission --------------------------------------------

    def exchange_phase(
        self,
        window_rounds: int,
        phase: str,
        iteration: int = -1,
    ) -> "PhaseExchange":
        """Open one merged dispatch covering a whole ``window_rounds``-round phase.

        Only legal when the adversary honours the slot-addressed contract
        (:attr:`~repro.adversary.base.Adversary.slot_addressed`): corruption
        is a pure function of ``(round, link, symbol)``, so each slot's
        delivery can be evaluated the moment the sent symbol is known —
        data-dependent rounds included, in any order — and the whole phase
        can be accounted in a single pass.  Use the returned
        :class:`PhaseExchange` to ``send`` symbols at per-phase round
        offsets, read deliveries (including insertions on silent links), and
        finally ``commit`` the statistics and clock.  Bit-identical to the
        lockstep per-round dispatch in deliveries, :class:`ChannelStats` and
        round accounting.
        """
        return PhaseExchange(self, window_rounds, phase, iteration)

    def _validate_window(
        self,
        messages: Dict[Tuple[int, int], Sequence[Symbol]],
        window_rounds: int,
    ) -> None:
        """Shared validation: window length, message keys and symbol values."""
        if window_rounds < 0:
            raise ValueError("window_rounds must be non-negative")
        if not messages:
            return
        links = self.graph.directed_edge_set()
        for link, symbols in messages.items():
            if link not in links:
                raise ValueError(f"message keyed on unknown link {link}: not a directed edge of the network")
            if len(symbols) > window_rounds:
                sender, receiver = link
                raise ValueError(
                    f"message on link ({sender}, {receiver}) has {len(symbols)} symbols "
                    f"but the window only has {window_rounds} rounds"
                )
            for symbol in symbols:
                if symbol not in _VALID_SYMBOLS:
                    raise ValueError(f"invalid channel symbol {symbol!r}")

    # -- convenience ----------------------------------------------------------

    def noise_fraction(self) -> float:
        return self.stats.noise_fraction()

    def communication(self) -> int:
        """Total number of transmissions so far (= communication in bits)."""
        return self.stats.transmissions


class PhaseExchange:
    """One merged transport dispatch covering a whole phase's rounds.

    Created by :meth:`NoisyNetwork.exchange_phase`.  The engine drives it in
    three moves:

    * :meth:`send` — transmit one symbol on one directed link at a per-phase
      round offset and get the delivered symbol back immediately (the
      adversary's pure :meth:`~repro.adversary.base.Adversary.corruption_schedule`
      is evaluated on that single slot);
    * :meth:`delivered` / :meth:`delivered_map` — read what a receiver
      observes on any slot, including insertions on links nobody sent on
      (served from a lazily evaluated all-silence *baseline schedule* per
      link, one ``corruption_schedule`` call covering the whole phase);
    * :meth:`commit` — one :meth:`~repro.network.channel.ChannelStats.record_window`
      accounting pass per link over the full phase window, then one clock
      advancement.

    Slot decomposability (law two of the contract) is what makes the mix of
    single-slot evaluations and whole-window baselines coherent: every slot's
    delivery is the same however the slots are grouped, so the statistics
    committed here are bit-identical to the lockstep per-round dispatch.
    """

    __slots__ = (
        "_network",
        "_adversary",
        "_may_insert",
        "_rounds",
        "_phase",
        "_iteration",
        "_base_round",
        "_links",
        "_sent",
        "_received",
        "_baselines",
        "_committed",
    )

    def __init__(
        self,
        network: NoisyNetwork,
        window_rounds: int,
        phase: str,
        iteration: int = -1,
    ) -> None:
        adversary = network.adversary
        if not adversary.slot_addressed:
            raise ValueError(
                f"{type(adversary).__name__} is not slot-addressed: exchange_phase "
                "requires the corruption_schedule contract (slot_addressed=True)"
            )
        if window_rounds < 0:
            raise ValueError("window_rounds must be non-negative")
        self._network = network
        self._adversary = adversary
        self._may_insert = adversary.may_insert
        self._rounds = window_rounds
        self._phase = phase
        self._iteration = iteration
        self._base_round = network.current_round
        self._links = network.graph.directed_edge_set()
        self._sent: Dict[Tuple[Tuple[int, int], int], Symbol] = {}
        self._received: Dict[Tuple[Tuple[int, int], int], Symbol] = {}
        self._baselines: Dict[Tuple[int, int], List[Symbol]] = {}
        self._committed = False

    @property
    def rounds(self) -> int:
        return self._rounds

    def send(self, link: Tuple[int, int], offset: int, symbol: Symbol) -> Symbol:
        """Transmit ``symbol`` on ``link`` at phase-round ``offset``; return
        what the receiver observes on that slot."""
        if self._committed:
            raise RuntimeError("phase already committed")
        if link not in self._links:
            raise ValueError(
                f"message keyed on unknown link {link}: not a directed edge of the network"
            )
        if symbol not in _VALID_SYMBOLS:
            raise ValueError(f"invalid channel symbol {symbol!r}")
        if not 0 <= offset < self._rounds:
            raise ValueError(
                f"offset {offset} outside the {self._rounds}-round phase window"
            )
        key = (link, offset)
        if key in self._sent:
            raise ValueError(f"slot {offset} on link {link} already carried a symbol this phase")
        ctx = WindowContext(
            link=link,
            phase=self._phase,
            iteration=self._iteration,
            base_round=self._base_round + offset,
        )
        delivered = self._adversary.corruption_schedule(ctx, (symbol,))[0]
        if delivered not in _VALID_SYMBOLS:
            raise ValueError(f"adversary produced invalid symbol {delivered!r}")
        self._sent[key] = symbol
        self._received[key] = delivered
        return delivered

    def _baseline(self, link: Tuple[int, int]) -> List[Symbol]:
        """The all-silence delivery schedule of ``link`` over the whole phase."""
        schedule = self._baselines.get(link)
        if schedule is None:
            ctx = WindowContext(
                link=link,
                phase=self._phase,
                iteration=self._iteration,
                base_round=self._base_round,
            )
            schedule = list(self._adversary.corruption_schedule(ctx, (None,) * self._rounds))
            if len(schedule) != self._rounds:
                raise ValueError(
                    f"adversary delivered {len(schedule)} symbols for a "
                    f"{self._rounds}-round window on link {link}"
                )
            for value in schedule:
                if value not in _VALID_SYMBOLS:
                    raise ValueError(f"adversary produced invalid symbol {value!r}")
            self._baselines[link] = schedule
        return schedule

    def delivered(self, link: Tuple[int, int], offset: int) -> Symbol:
        """What the receiver observes on ``link`` at ``offset``.

        Serves the evaluated delivery for slots something was sent on, the
        silence baseline (insertions) for untouched slots under an inserting
        adversary, and ``None`` otherwise — exactly what the dense lockstep
        dispatch would have put in its result mapping.
        """
        if link not in self._links:
            raise ValueError(
                f"message keyed on unknown link {link}: not a directed edge of the network"
            )
        if not 0 <= offset < self._rounds:
            raise ValueError(
                f"offset {offset} outside the {self._rounds}-round phase window"
            )
        key = (link, offset)
        if key in self._received:
            return self._received[key]
        if not self._may_insert:
            return None
        return self._baseline(link)[offset]

    def delivered_map(self, offset: int) -> Dict[Tuple[int, int], Symbol]:
        """All links delivering a (non-``None``) symbol at phase-round ``offset``."""
        out: Dict[Tuple[int, int], Symbol] = {}
        if self._may_insert:
            for link in self._network.graph.directed_edges():
                value = self.delivered(link, offset)
                if value is not None:
                    out[link] = value
        else:
            for (link, slot_offset), value in self._received.items():
                if slot_offset == offset and value is not None:
                    out[link] = value
        return out

    def commit(self) -> None:
        """Account the whole phase and advance the clock — one pass per link."""
        if self._committed:
            raise RuntimeError("phase already committed")
        self._committed = True
        network = self._network
        rounds = self._rounds
        stats = network.stats
        may_insert = self._may_insert
        network.windows_exchanged += 1
        network.merged_dispatches += 1
        recorder = network.recorder
        per_link_sent: Dict[Tuple[int, int], Dict[int, Symbol]] = {}
        for (link, offset), symbol in self._sent.items():
            per_link_sent.setdefault(link, {})[offset] = symbol
        silence = [None] * rounds
        received = self._received
        for link in network.graph.directed_edges():
            overrides = per_link_sent.get(link)
            if overrides is None:
                if not may_insert:
                    continue  # all-silent link, non-inserting adversary: no slot carries bits
                baseline = self._baseline(link)
                if any(value is not None for value in baseline):
                    ctx = WindowContext(
                        link=link,
                        phase=self._phase,
                        iteration=self._iteration,
                        base_round=self._base_round,
                    )
                    stats.record_window(ctx, silence, baseline)
                    if recorder is not None:
                        recorder.record_window(
                            link_label(*link), self._phase, self._iteration,
                            self._base_round, silence, baseline,
                        )
                continue
            sent_window = [overrides.get(offset) for offset in range(rounds)]
            if may_insert:
                baseline = self._baseline(link)
                delivered_window = [
                    received[(link, offset)] if (link, offset) in received else baseline[offset]
                    for offset in range(rounds)
                ]
            else:
                delivered_window = [received.get((link, offset)) for offset in range(rounds)]
            ctx = WindowContext(
                link=link,
                phase=self._phase,
                iteration=self._iteration,
                base_round=self._base_round,
            )
            stats.record_window(ctx, sent_window, delivered_window)
            if recorder is not None:
                recorder.record_window(
                    link_label(*link), self._phase, self._iteration,
                    self._base_round, sent_window, delivered_window,
                )
        network.advance_rounds(rounds)
