"""The synchronous noisy transport layer.

``NoisyNetwork`` is the single place where symbols cross from a sender to a
receiver.  It

* validates that transmissions only use existing links,
* hands the traffic to the adversary,
* keeps the global round counter and all communication / corruption
  statistics (:class:`~repro.network.channel.ChannelStats`), and
* exposes window-oriented helpers (``exchange_window``) because every phase
  of the coding scheme transmits a fixed-length burst of symbols on many
  links in parallel, one symbol per round per direction.

Two transmission paths exist:

* the **batched fast path** (default): ``exchange_window`` makes one
  :meth:`~repro.adversary.base.Adversary.corrupt_window` call per directed
  link and one :meth:`~repro.network.channel.ChannelStats.record_window`
  bookkeeping pass per window — no per-slot contexts, calls or dictionary
  updates;
* the **single-slot compatibility path**: ``transmit`` carries one symbol
  through the classic ``TransmissionContext`` → ``corrupt`` → ``record`` →
  ``notify_delivery`` pipeline, and ``exchange_window_per_slot`` runs a whole
  window through it.  The two paths are bit-identical for every adversary
  honouring the ``corrupt_window`` contract (the equivalence suite in
  ``tests/test_transport.py`` pins this for all stock adversaries).

The engine never talks to the adversary directly; everything goes through
this class so the accounting cannot be bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.adversary.base import Adversary, NoiselessAdversary
from repro.network.channel import ChannelStats, Symbol, TransmissionContext, WindowContext
from repro.network.graph import Graph

_VALID_SYMBOLS = (0, 1, None)


@dataclass
class NoisyNetwork:
    """Synchronous message transport over a graph with an adversary attached."""

    graph: Graph
    adversary: Adversary = field(default_factory=NoiselessAdversary)
    stats: ChannelStats = field(default_factory=ChannelStats)
    current_round: int = 0
    #: When ``False``, ``exchange_window`` routes through the single-slot
    #: compatibility path instead of the batched one.  The two are
    #: bit-identical; the flag exists for equivalence tests and benchmarks.
    batched: bool = True

    #: Dispatch accounting for ``repro.obs``: plain integers kept hot-path
    #: cheap (one add per window) and flushed into the ambient metrics
    #: registry once per trial by the engine.  ``idle_rounds_collapsed`` is
    #: credited by the engine at its window-collapse sites, not by
    #: ``advance_rounds`` itself (which every window exchange also calls).
    windows_exchanged: int = 0
    sparse_dispatches: int = 0
    dense_dispatches: int = 0
    idle_rounds_collapsed: int = 0

    def __post_init__(self) -> None:
        self._check_notify_contract(self.adversary)

    @staticmethod
    def _check_notify_contract(adversary: Adversary) -> None:
        """Reject adversaries whose batch path would silently skip notifications.

        The stock native ``corrupt_window`` overrides never call
        ``notify_delivery`` (it is a no-op for every stock adversary).  A
        subclass that overrides ``notify_delivery`` while *inheriting* such an
        override would therefore record different state on the batched and
        per-slot paths — the exact silent divergence the bit-identity
        guarantee forbids.  The hazard exists precisely when the class
        providing ``corrupt_window`` is unrelated to (not a subclass of, and
        not the base fallback seen by) the class providing
        ``notify_delivery``; overriding ``corrupt_window`` alongside (or
        below) the notify override, or restoring the base fallback with
        ``corrupt_window = Adversary.corrupt_window``, declares the pairing
        intentional.
        """
        adversary_type = type(adversary)
        if adversary_type.notify_delivery is Adversary.notify_delivery:
            return
        corrupt_window_owner = next(
            klass for klass in adversary_type.__mro__ if "corrupt_window" in klass.__dict__
        )
        notify_owner = next(
            klass for klass in adversary_type.__mro__ if "notify_delivery" in klass.__dict__
        )
        if corrupt_window_owner is Adversary:
            return  # the base fallback interleaves notify_delivery per slot
        if issubclass(corrupt_window_owner, notify_owner):
            return  # whoever wrote corrupt_window knew about the notify hook
        raise ValueError(
            f"{adversary_type.__name__} overrides notify_delivery but inherits "
            f"corrupt_window from {corrupt_window_owner.__name__}, whose batch path "
            "never notifies: override corrupt_window too, or restore the per-slot "
            "fallback with `corrupt_window = Adversary.corrupt_window`"
        )

    # -- round bookkeeping --------------------------------------------------

    def advance_rounds(self, count: int) -> None:
        """Advance the global clock by ``count`` silent rounds."""
        if count < 0:
            raise ValueError("cannot advance by a negative number of rounds")
        self.current_round += count

    # -- single-slot transmission -------------------------------------------

    def transmit(
        self,
        sender: int,
        receiver: int,
        symbol: Symbol,
        phase: str,
        iteration: int = -1,
        round_offset: int = 0,
        slot_index: int = 0,
    ) -> Symbol:
        """Send one symbol (or silence) over a directed link and return what arrives."""
        if not self.graph.has_edge(sender, receiver):
            raise ValueError(f"({sender}, {receiver}) is not a link of the network")
        if symbol not in _VALID_SYMBOLS:
            raise ValueError(f"invalid channel symbol {symbol!r}")
        ctx = TransmissionContext(
            round_index=self.current_round + round_offset,
            sender=sender,
            receiver=receiver,
            phase=phase,
            iteration=iteration,
            slot_index=slot_index,
        )
        received = self.adversary.corrupt(ctx, symbol)
        if received not in _VALID_SYMBOLS:
            raise ValueError(f"adversary produced invalid symbol {received!r}")
        self.stats.record(ctx, symbol, received)
        self.adversary.notify_delivery(ctx, symbol, received)
        return received

    # -- window transmission --------------------------------------------------

    def exchange_window(
        self,
        messages: Dict[Tuple[int, int], Sequence[Symbol]],
        window_rounds: int,
        phase: str,
        iteration: int = -1,
        sparse: bool = False,
    ) -> Dict[Tuple[int, int], List[Symbol]]:
        """Run ``window_rounds`` synchronous rounds in which each directed link
        ``(u, v)`` carries the symbol sequence ``messages[(u, v)]`` (padded with
        silence up to the window length).

        Every directed link of the graph participates in every round of the
        window, even if its sender stays silent: this is what allows the
        adversary to *insert* symbols on idle links, exactly as in the paper's
        noise model.  Message keys must be directed links of the network.
        Returns the symbols delivered on every directed link.

        ``sparse=True`` permits (but does not guarantee) omitting silent links
        from the result when the adversary cannot insert — a silent link under
        a non-inserting adversary always delivers pure silence, so the caller
        loses nothing by treating a missing key as an all-``None`` window.
        The wire behaviour (adversary calls, statistics, clock) is identical;
        only the shape of the returned mapping changes.  Engine phases that
        transmit on a handful of links per round use this to skip the
        O(links) result-building work entirely.
        """
        self._validate_window(messages, window_rounds)
        if not self.batched:
            return self._exchange_window_per_slot(messages, window_rounds, phase, iteration)

        adversary = self.adversary
        corrupt_window = adversary.corrupt_window
        may_insert = adversary.may_insert
        stats = self.stats
        base_round = self.current_round
        omit_silent = sparse and not may_insert
        self.windows_exchanged += 1
        if omit_silent:
            self.sparse_dispatches += 1
        else:
            self.dense_dispatches += 1
        # The adversary sees the window as an immutable tuple, so the sent
        # record used for corruption accounting below cannot be mutated in
        # place — the accounting structurally cannot be bypassed.  The
        # all-silent window is shared across links (it is never writable).
        silence_tuple = (None,) * window_rounds
        silence_list = [None] * window_rounds
        received: Dict[Tuple[int, int], List[Symbol]] = {}
        if omit_silent:
            # Silent links are skipped entirely, so only the message links are
            # visited — in canonical directed-edge order, because stateful
            # adversaries must see corrupt_window calls in the same sequence
            # as a full scan would produce.
            link_index = self.graph.directed_edge_index()
            links: Sequence[Tuple[int, int]] = sorted(messages, key=link_index.__getitem__)
        else:
            links = self.graph.directed_edges()
        for link in links:
            outgoing = messages.get(link)
            if outgoing is None:
                if not may_insert:
                    # A non-inserting adversary maps silence to silence; skip
                    # the whole window (the slots carry no bits).
                    if not omit_silent:
                        received[link] = [None] * window_rounds
                    continue
                window_tuple = silence_tuple
                window = silence_list  # read-only: compared and counted, never handed out
            else:
                window = list(outgoing)
                if len(window) < window_rounds:
                    window.extend([None] * (window_rounds - len(window)))
                window_tuple = tuple(window)
            ctx = WindowContext(link=link, phase=phase, iteration=iteration, base_round=base_round)
            delivered = corrupt_window(ctx, window_tuple)
            if type(delivered) is not list:
                delivered = list(delivered)
            if delivered == window:
                # Untouched window: the input was already validated, so only
                # the transmission counters can change — and an all-silent
                # window cannot even do that.
                if outgoing is not None:
                    stats.record_window(ctx, window, delivered)
            else:
                if len(delivered) != window_rounds:
                    raise ValueError(
                        f"adversary delivered {len(delivered)} symbols for a "
                        f"{window_rounds}-round window on link {link}"
                    )
                for value in delivered:
                    if value not in _VALID_SYMBOLS:
                        raise ValueError(f"adversary produced invalid symbol {value!r}")
                stats.record_window(ctx, window, delivered)
            received[link] = delivered
        self.advance_rounds(window_rounds)
        return received

    def exchange_window_per_slot(
        self,
        messages: Dict[Tuple[int, int], Sequence[Symbol]],
        window_rounds: int,
        phase: str,
        iteration: int = -1,
    ) -> Dict[Tuple[int, int], List[Symbol]]:
        """The single-slot reference implementation of :meth:`exchange_window`.

        Every slot goes through :meth:`transmit` individually.  This is the
        semantics the batched path must reproduce bit for bit; it is kept as
        a first-class method so equivalence tests and benchmarks can run both
        paths side by side.
        """
        self._validate_window(messages, window_rounds)
        return self._exchange_window_per_slot(messages, window_rounds, phase, iteration)

    def _exchange_window_per_slot(
        self,
        messages: Dict[Tuple[int, int], Sequence[Symbol]],
        window_rounds: int,
        phase: str,
        iteration: int,
    ) -> Dict[Tuple[int, int], List[Symbol]]:
        received: Dict[Tuple[int, int], List[Symbol]] = {}
        may_insert = self.adversary.may_insert
        self.windows_exchanged += 1
        self.dense_dispatches += 1
        for sender, receiver in self.graph.directed_edges():
            outgoing = list(messages.get((sender, receiver), ()))
            delivered: List[Symbol] = []
            for offset in range(window_rounds):
                symbol = outgoing[offset] if offset < len(outgoing) else None
                if symbol is None and not may_insert:
                    delivered.append(None)
                    continue
                delivered.append(
                    self.transmit(
                        sender,
                        receiver,
                        symbol,
                        phase=phase,
                        iteration=iteration,
                        round_offset=offset,
                        slot_index=offset,
                    )
                )
            received[(sender, receiver)] = delivered
        self.advance_rounds(window_rounds)
        return received

    def _validate_window(
        self,
        messages: Dict[Tuple[int, int], Sequence[Symbol]],
        window_rounds: int,
    ) -> None:
        """Shared validation: window length, message keys and symbol values."""
        if window_rounds < 0:
            raise ValueError("window_rounds must be non-negative")
        if not messages:
            return
        links = self.graph.directed_edge_set()
        for link, symbols in messages.items():
            if link not in links:
                raise ValueError(f"message keyed on unknown link {link}: not a directed edge of the network")
            if len(symbols) > window_rounds:
                sender, receiver = link
                raise ValueError(
                    f"message on link ({sender}, {receiver}) has {len(symbols)} symbols "
                    f"but the window only has {window_rounds} rounds"
                )
            for symbol in symbols:
                if symbol not in _VALID_SYMBOLS:
                    raise ValueError(f"invalid channel symbol {symbol!r}")

    # -- convenience ----------------------------------------------------------

    def noise_fraction(self) -> float:
        return self.stats.noise_fraction()

    def communication(self) -> int:
        """Total number of transmissions so far (= communication in bits)."""
        return self.stats.transmissions
