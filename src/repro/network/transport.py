"""The synchronous noisy transport layer.

``NoisyNetwork`` is the single place where symbols cross from a sender to a
receiver.  It

* validates that transmissions only use existing links,
* hands every slot to the adversary,
* keeps the global round counter and all communication / corruption
  statistics (:class:`~repro.network.channel.ChannelStats`), and
* exposes window-oriented helpers (``exchange_window``) because every phase
  of the coding scheme transmits a fixed-length burst of symbols on many
  links in parallel, one symbol per round per direction.

The engine never talks to the adversary directly; everything goes through
this class so the accounting cannot be bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary, NoiselessAdversary
from repro.network.channel import ChannelStats, Symbol, TransmissionContext
from repro.network.graph import Graph


@dataclass
class NoisyNetwork:
    """Synchronous message transport over a graph with an adversary attached."""

    graph: Graph
    adversary: Adversary = field(default_factory=NoiselessAdversary)
    stats: ChannelStats = field(default_factory=ChannelStats)
    current_round: int = 0

    # -- round bookkeeping --------------------------------------------------

    def advance_rounds(self, count: int) -> None:
        """Advance the global clock by ``count`` silent rounds."""
        if count < 0:
            raise ValueError("cannot advance by a negative number of rounds")
        self.current_round += count

    # -- single-slot transmission -------------------------------------------

    def transmit(
        self,
        sender: int,
        receiver: int,
        symbol: Symbol,
        phase: str,
        iteration: int = -1,
        round_offset: int = 0,
        slot_index: int = 0,
    ) -> Symbol:
        """Send one symbol (or silence) over a directed link and return what arrives."""
        if not self.graph.has_edge(sender, receiver):
            raise ValueError(f"({sender}, {receiver}) is not a link of the network")
        if symbol not in (0, 1, None):
            raise ValueError(f"invalid channel symbol {symbol!r}")
        ctx = TransmissionContext(
            round_index=self.current_round + round_offset,
            sender=sender,
            receiver=receiver,
            phase=phase,
            iteration=iteration,
            slot_index=slot_index,
        )
        received = self.adversary.corrupt(ctx, symbol)
        if received not in (0, 1, None):
            raise ValueError(f"adversary produced invalid symbol {received!r}")
        self.stats.record(ctx, symbol, received)
        self.adversary.notify_delivery(ctx, symbol, received)
        return received

    # -- window transmission --------------------------------------------------

    def exchange_window(
        self,
        messages: Dict[Tuple[int, int], Sequence[Symbol]],
        window_rounds: int,
        phase: str,
        iteration: int = -1,
    ) -> Dict[Tuple[int, int], List[Symbol]]:
        """Run ``window_rounds`` synchronous rounds in which each directed link
        ``(u, v)`` carries the symbol sequence ``messages[(u, v)]`` (padded with
        silence up to the window length).

        Every directed link of the graph participates in every round of the
        window, even if its sender stays silent: this is what allows the
        adversary to *insert* symbols on idle links, exactly as in the paper's
        noise model.  Returns the symbols delivered on every directed link.
        """
        if window_rounds < 0:
            raise ValueError("window_rounds must be non-negative")
        for (sender, receiver), symbols in messages.items():
            if len(symbols) > window_rounds:
                raise ValueError(
                    f"message on link ({sender}, {receiver}) has {len(symbols)} symbols "
                    f"but the window only has {window_rounds} rounds"
                )
        received: Dict[Tuple[int, int], List[Symbol]] = {}
        may_insert = getattr(self.adversary, "may_insert", True)
        for sender, receiver in self.graph.directed_edges():
            outgoing = list(messages.get((sender, receiver), ()))
            delivered: List[Symbol] = []
            for offset in range(window_rounds):
                symbol = outgoing[offset] if offset < len(outgoing) else None
                if symbol is None and not may_insert:
                    # A non-inserting adversary maps silence to silence; skip
                    # the per-slot call for speed (the slot carries no bits).
                    delivered.append(None)
                    continue
                delivered.append(
                    self.transmit(
                        sender,
                        receiver,
                        symbol,
                        phase=phase,
                        iteration=iteration,
                        round_offset=offset,
                        slot_index=offset,
                    )
                )
            received[(sender, receiver)] = delivered
        self.advance_rounds(window_rounds)
        return received

    # -- convenience ----------------------------------------------------------

    def noise_fraction(self) -> float:
        return self.stats.noise_fraction()

    def communication(self) -> int:
        """Total number of transmissions so far (= communication in bits)."""
        return self.stats.transmissions
