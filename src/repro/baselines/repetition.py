"""Baseline: per-bit repetition coding.

A natural "cheap fix" for channel noise is to repeat every transmitted bit
``repetitions`` times and take a majority vote at the receiver.  Against pure
substitution noise this buys resilience at the cost of a ``repetitions``-fold
communication blow-up (i.e. rate ``1/r`` — not constant-rate in the useful
sense once meaningful resilience is needed).  Against the paper's full noise
model it has a structural weakness: deletions are seen as erasures (which the
majority can sometimes absorb) but a burst hitting one repetition group, or
insertions on idle slots, still flips the decoded bit, and a single flipped
decoded bit corrupts the rest of the computation because interactive
protocols feed every received bit forward.

This baseline exists to populate the "simple coding" row of the Table 1
harness and to demonstrate why interactive coding needs more than per-bit
redundancy.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.adversary.base import Adversary, NoiselessAdversary
from repro.analysis.metrics import RunMetrics
from repro.baselines.uncoded import BaselineResult
from repro.network.transport import NoisyNetwork
from repro.protocols.base import Protocol, ReceivedMap


def _majority(symbols: list) -> int:
    ones = symbols.count(1)
    zeros = symbols.count(0)
    return 1 if ones > zeros else 0


def run_repetition(
    protocol: Protocol,
    adversary: Optional[Adversary] = None,
    repetitions: int = 3,
    name: str = "repetition",
) -> BaselineResult:
    """Execute Π with each bit repeated ``repetitions`` times and majority decoding."""
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    adversary = adversary if adversary is not None else NoiselessAdversary()
    adversary.reset()
    reference = protocol.run_noiseless()

    graph = protocol.graph
    network = NoisyNetwork(graph, adversary=adversary)
    parties = {party: protocol.create_party(party) for party in graph.nodes}
    received: Dict[int, ReceivedMap] = {party: {} for party in graph.nodes}

    for round_index, transmissions in enumerate(protocol.schedule()):
        # Each scheduled bit becomes one dense per-link window of length
        # ``repetitions``; the whole round is a single batched exchange.
        messages: Dict[Tuple[int, int], list] = {}
        for sender, receiver in transmissions:
            bit = parties[sender].send_bit(round_index, receiver, received[sender])
            messages[(sender, receiver)] = [bit] * repetitions
        delivered = network.exchange_window(messages, repetitions, phase="baseline")
        for sender, receiver in transmissions:
            received[receiver][(round_index, sender)] = _majority(delivered[(sender, receiver)])

    outputs = {party: parties[party].compute_output(received[party]) for party in graph.nodes}
    success = all(outputs[party] == reference.outputs[party] for party in graph.nodes)
    stats = network.stats
    metrics = RunMetrics(
        scheme=name,
        success=success,
        protocol_communication=protocol.communication_complexity(),
        simulation_communication=stats.transmissions,
        corruptions=stats.corruptions,
        noise_fraction=stats.noise_fraction(),
        iterations_run=1,
        iterations_budget=1,
        communication_by_phase=dict(stats.transmissions_by_phase),
        corruptions_by_phase=dict(stats.corruptions_by_phase),
    )
    return BaselineResult(
        name=name,
        success=success,
        outputs=outputs,
        reference_outputs=reference.outputs,
        metrics=metrics,
    )
