"""Baseline: run Π directly over the noisy network (no coding at all).

This is the comparison point the introduction implies: without an interactive
coding scheme, even a tiny amount of insertion/deletion/substitution noise
corrupts the computation, because every received bit feeds into later
messages and into the outputs.  The baseline has rate exactly 1 (no overhead)
but essentially no resilience — which is the other end of the trade-off the
paper's Table 1 describes.

The runner executes Π round by round over the :class:`NoisyNetwork`; each
party receives whatever the adversary delivers (a deleted bit is replaced by
0, since the party must feed *something* into its protocol logic) and outputs
are compared against the noiseless reference execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.adversary.base import Adversary, NoiselessAdversary
from repro.analysis.metrics import RunMetrics
from repro.network.transport import NoisyNetwork
from repro.protocols.base import Protocol, ReceivedMap
from repro.utils.bitstring import symbol_to_bit


@dataclass
class BaselineResult:
    """Outcome of a baseline execution."""

    name: str
    success: bool
    outputs: Dict[int, object]
    reference_outputs: Dict[int, object]
    metrics: RunMetrics


def run_uncoded(
    protocol: Protocol,
    adversary: Optional[Adversary] = None,
    name: str = "uncoded",
) -> BaselineResult:
    """Execute Π over the noisy network with no protection whatsoever."""
    adversary = adversary if adversary is not None else NoiselessAdversary()
    adversary.reset()
    reference = protocol.run_noiseless()

    graph = protocol.graph
    network = NoisyNetwork(graph, adversary=adversary)
    parties = {party: protocol.create_party(party) for party in graph.nodes}
    received: Dict[int, ReceivedMap] = {party: {} for party in graph.nodes}

    for round_index, transmissions in enumerate(protocol.schedule()):
        messages: Dict[Tuple[int, int], list] = {}
        for sender, receiver in transmissions:
            bit = parties[sender].send_bit(round_index, receiver, received[sender])
            messages[(sender, receiver)] = [bit]
        delivered = network.exchange_window(messages, 1, phase="baseline")
        for sender, receiver in transmissions:
            symbol = delivered[(sender, receiver)][0]
            received[receiver][(round_index, sender)] = symbol_to_bit(symbol)
        # Insertions on idle links are delivered but ignored: the receiver is
        # not listening on a link with no scheduled transmission this round.

    outputs = {party: parties[party].compute_output(received[party]) for party in graph.nodes}
    success = all(outputs[party] == reference.outputs[party] for party in graph.nodes)
    stats = network.stats
    metrics = RunMetrics(
        scheme=name,
        success=success,
        protocol_communication=protocol.communication_complexity(),
        simulation_communication=stats.transmissions,
        corruptions=stats.corruptions,
        noise_fraction=stats.noise_fraction(),
        iterations_run=1,
        iterations_budget=1,
        communication_by_phase=dict(stats.transmissions_by_phase),
        corruptions_by_phase=dict(stats.corruptions_by_phase),
    )
    return BaselineResult(
        name=name,
        success=success,
        outputs=outputs,
        reference_outputs=reference.outputs,
        metrics=metrics,
    )
