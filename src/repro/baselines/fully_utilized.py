"""Baseline: converting a sparse protocol to a fully-utilised one.

Section 1 points out that one *could* force every party to speak on every
link in every round and then apply a fully-utilised coding scheme (as in
RS94/HS16), but the conversion alone blows the communication up by a factor
of up to ``m`` — which is why the paper works in the relaxed, non-fully-
utilised model.

``fully_utilized_overhead`` quantifies that conversion cost for a concrete
protocol: the converted protocol transmits ``2m`` bits in every one of
``RC(Π)`` rounds (a party with nothing to say sends a fixed dummy bit), so
its communication is ``2·m·RC(Π)`` and the blow-up factor is
``2·m·RC(Π)/CC(Π)``.  The experiment harness reports this factor next to the
measured overhead of the paper's schemes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.base import Protocol


@dataclass(frozen=True)
class FullyUtilizedConversion:
    """Cost model of the fully-utilised conversion of a protocol."""

    protocol_communication: int
    rounds: int
    num_links: int

    @property
    def converted_communication(self) -> int:
        """Communication after forcing every link to carry a bit each round, both ways."""
        return 2 * self.num_links * self.rounds

    @property
    def overhead(self) -> float:
        """Blow-up factor of the conversion alone (before any coding is applied)."""
        if self.protocol_communication == 0:
            return float("inf")
        return self.converted_communication / self.protocol_communication


def fully_utilized_overhead(protocol: Protocol) -> FullyUtilizedConversion:
    """Compute the conversion cost for ``protocol``."""
    return FullyUtilizedConversion(
        protocol_communication=protocol.communication_complexity(),
        rounds=protocol.num_rounds,
        num_links=protocol.graph.num_edges,
    )
