"""Baselines the coding schemes are compared against."""

from repro.baselines.fully_utilized import FullyUtilizedConversion, fully_utilized_overhead
from repro.baselines.repetition import run_repetition
from repro.baselines.uncoded import BaselineResult, run_uncoded

__all__ = [
    "BaselineResult",
    "FullyUtilizedConversion",
    "fully_utilized_overhead",
    "run_repetition",
    "run_uncoded",
]
