"""Adversary interface and noise-budget bookkeeping.

The paper distinguishes:

* **oblivious** adversaries — the noise pattern is fixed before the protocol
  starts, independently of the parties' randomness (the *additive* adversary
  of §2.1 and the *fixing* adversary of Remark 1);
* **non-oblivious** adversaries — the noise may adapt to everything observed
  on the wire (but not to private coins tossed later).

All of them implement :class:`Adversary`.  The single-slot contract is
``corrupt``: the transport consults the adversary for one channel slot (one
round, one directed link) and the adversary returns what the receiver should
see.  The batched hot path is ``corrupt_window``: the transport hands the
adversary one whole window of slots on one directed link and gets the full
delivered sequence back.  The base implementation of ``corrupt_window``
falls back to per-slot ``corrupt`` calls, and every override is required to
be bit-identical to that fallback.  Corruption accounting is done by the
transport, not by the adversary, so an adversary cannot under-report its own
noise.

On top of both sits the opt-in **slot-addressed contract**
(``Adversary.slot_addressed`` + ``corruption_schedule``): corruption as a
pure function of ``(round, link, symbol)`` with no cross-slot state, which
is what lets the engine merge a whole phase's rounds into a single
transport dispatch.  See :meth:`Adversary.corruption_schedule` for the laws
and ``repro.adversary.check_contract`` for the conformance probe.

The theorems bound the noise as a *fraction of the actual communication* of
the executed instance, which is not known in advance.  :class:`NoiseBudget`
implements that accounting: adaptive adversaries ask it whether another
corruption would keep them within ``fraction * transmissions_so_far`` (plus
an optional absolute allowance), mirroring the "relative noise fraction" of
adaptive-length settings discussed in §2.1.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.network.channel import Symbol, TransmissionContext, WindowContext
from repro.utils.bitstring import pack_symbols, unpack_symbols


@dataclass
class NoiseBudget:
    """Tracks how many corruptions an adversary may still inject.

    Parameters
    ----------
    fraction:
        Maximum allowed ratio ``corruptions / transmissions``.
    absolute_allowance:
        Extra corruptions allowed regardless of the fraction (useful for
        experiments that want "exactly k errors").
    """

    fraction: float = 0.0
    absolute_allowance: int = 0
    transmissions_seen: int = 0
    corruptions_spent: int = 0

    def observe_transmission(self) -> None:
        """Record that one symbol was actually transmitted."""
        self.transmissions_seen += 1

    def observe_transmissions(self, count: int) -> None:
        """Bulk path: record ``count`` transmissions in one update.

        Equivalent to ``count`` calls to :meth:`observe_transmission`.  Batch
        adversaries use it when they know no spending decision falls inside
        the observed window (e.g. the whole window is off-target), so the
        intermediate counter values are unobservable.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self.transmissions_seen += count

    @staticmethod
    def allowance_at(fraction: float, transmissions_seen: int, absolute_allowance: int) -> int:
        """The :attr:`allowed` value at a hypothetical counter state.

        The single source of truth for the allowance formula: batch
        adversaries that mirror the counters in local variables for one
        window use this to make spend decisions identical to the per-slot
        path.
        """
        return int(fraction * transmissions_seen) + absolute_allowance

    @property
    def allowed(self) -> int:
        """Corruptions permitted so far (floor of fraction * transmissions + allowance)."""
        return self.allowance_at(self.fraction, self.transmissions_seen, self.absolute_allowance)

    @property
    def remaining(self) -> int:
        return max(0, self.allowed - self.corruptions_spent)

    def can_spend(self, amount: int = 1) -> bool:
        return self.corruptions_spent + amount <= self.allowed

    def spend(self, amount: int = 1) -> None:
        if not self.can_spend(amount):
            raise RuntimeError(
                f"noise budget exceeded: spent {self.corruptions_spent}, "
                f"requested {amount}, allowed {self.allowed}"
            )
        self.corruptions_spent += amount


class Adversary(abc.ABC):
    """Base class for all noise models."""

    #: Human-readable name used by experiment reports.
    name: str = "adversary"

    #: Whether the adversary commits to its noise before seeing the execution.
    oblivious: bool = True

    #: The slot-addressed contract flag.  ``True`` declares that this
    #: adversary's corruption decision for every channel slot is a *pure
    #: function of (absolute round, directed link, sent symbol)* — no
    #: sequential RNG streams, no budgets fed by realised communication, no
    #: cross-slot state of any kind — and that :meth:`corruption_schedule`
    #: implements exactly that function.  Under the contract the engine may
    #: legally precompute a whole phase's delivery schedule and merge the
    #: phase's rounds into one transport dispatch
    #: (:meth:`~repro.network.transport.NoisyNetwork.exchange_phase`):
    #: evaluating a slot early, twice, or grouped into a different window is
    #: guaranteed to be unobservable.  Stateful adversaries must truthfully
    #: report ``False`` and keep the lockstep round-by-round path.
    #: ``repro.adversary.check_contract`` probes the laws below.
    slot_addressed: bool = False

    #: Whether the adversary may deliver symbols on slots where the sender was
    #: silent (insertions).  This is a real, load-bearing attribute of the
    #: adversary contract (not duck typing): every adversary must set it, and
    #: transports skip consulting the adversary on silent slots when it is
    #: ``False``.  A non-inserting adversary must therefore treat a silent
    #: slot as a pure no-op — no RNG draws, no budget updates — because it is
    #: not guaranteed to see silent slots at all.
    may_insert: bool = True

    @abc.abstractmethod
    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        """Return the symbol delivered to the receiver for this slot.

        ``sent`` is the symbol the sender put on the wire (``None`` if the
        sender stayed silent).  Returning ``sent`` unchanged means "no
        corruption"; any other value is an insertion, deletion or
        substitution and will be charged by the transport's statistics.
        """

    def corrupt_window(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        """Return the symbols delivered for one whole window on one link.

        ``symbols`` is the dense window the sender put on the wire (``None``
        entries are silent slots); slot ``i`` occurs in absolute round
        ``ctx.base_round + i``.  The batched transport calls this once per
        directed link instead of calling :meth:`corrupt` once per slot, and
        hands the window over as an *immutable tuple* — the sent record is
        what the transport charges corruptions against, so it cannot be
        mutated in place.  Return the delivered window as a new sequence
        (conventionally a list; the transport normalises).

        This base implementation is the per-slot compatibility fallback: it
        replays exactly what a sequence of single-slot transmissions would do
        — :meth:`corrupt` then :meth:`notify_delivery` per slot, in offset
        order, skipping silent slots when :attr:`may_insert` is ``False`` —
        so any adversary that only implements ``corrupt`` behaves
        bit-identically under both transmission paths.

        Overrides MUST preserve that bit-identity: same delivered symbols,
        same RNG stream consumption, same budget accounting as the per-slot
        path, for every input window.  (All stock adversaries ship such
        vectorized overrides; if you subclass one and change ``corrupt`` or
        ``notify_delivery``, you must override ``corrupt_window`` as well —
        e.g. restore this fallback with
        ``corrupt_window = Adversary.corrupt_window``.)
        """
        delivered: List[Symbol] = []
        append = delivered.append
        may_insert = self.may_insert
        corrupt = self.corrupt
        notify = self.notify_delivery
        slot_ctx = ctx.slot
        for offset, sent in enumerate(symbols):
            if sent is None and not may_insert:
                append(None)
                continue
            slot = slot_ctx(offset)
            received = corrupt(slot, sent)
            notify(slot, sent, received)
            append(received)
        return delivered

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        """Packed-plane variant of :meth:`corrupt_window`.

        ``(bits, present)`` follow the
        :func:`~repro.utils.bitstring.pack_symbols` convention: slot ``i``
        carries bit ``i`` of ``bits`` iff bit ``i`` of ``present`` is set,
        and is silent otherwise; ``count`` is the window length in rounds.
        Returns the delivered window as the same kind of plane pair.

        This base implementation is the compatibility fallback: it unpacks
        the planes, runs :meth:`corrupt_window` (itself falling back to
        per-slot :meth:`corrupt` calls unless overridden) and re-packs — so
        every adversary is automatically bit-identical across the packed and
        symbol-sequence transports.  Native overrides must preserve exactly
        that equivalence: same delivered planes, same RNG stream
        consumption, same budget accounting, for every input window
        (``tests/test_adversaries.py`` pins this for all stock adversaries).
        """
        delivered = self.corrupt_window(ctx, tuple(unpack_symbols(bits, present, count)))
        return pack_symbols(delivered)

    def corruption_schedule(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        """Pure evaluation of the delivery schedule for one window on one link.

        Only available when :attr:`slot_addressed` is ``True``.  Returns the
        delivered window, like :meth:`corrupt_window`, but under much stronger
        laws — the *slot-addressed contract*:

        * **purity** — the call reads and writes no mutable state: two
          independent evaluations of the same ``(ctx, symbols)`` return the
          same schedule, and the adversary's observable state (RNG streams,
          budgets, counters) is identical before and after;
        * **slot decomposability** — slot ``i`` of a window evaluation equals
          the single-slot evaluation at the same absolute round:
          ``corruption_schedule(ctx, symbols)[i] ==
          corruption_schedule(ctx_at(base_round + i), (symbols[i],))[0]``;
        * **path agreement** — while ``slot_addressed`` holds,
          :meth:`corrupt` and :meth:`corrupt_window` delegate to (or agree
          bit for bit with) this function, so the per-slot, batched-window
          and merged-phase transmission paths all deliver the same symbols.

        These laws are what make whole-phase round merging legal: the engine
        evaluates slots the moment it knows the sent symbol (data-dependent,
        out of dispatch order) and the transport accounts the whole phase in
        one pass, with no way for the grouping to change the outcome.
        ``repro.adversary.check_contract`` probes all three laws.
        """
        if not self.slot_addressed:
            raise RuntimeError(
                f"{type(self).__name__} is not slot-addressed: corruption_schedule is only "
                "defined when slot_addressed is True"
            )
        raise NotImplementedError(
            f"{type(self).__name__} declares slot_addressed=True but does not "
            "implement corruption_schedule"
        )

    def notify_delivery(self, ctx: TransmissionContext, sent: Symbol, received: Symbol) -> None:
        """Hook called after every slot; adaptive adversaries may record state."""

    def reset(self) -> None:
        """Reset mutable state so the same adversary object can be reused."""


class NoiselessAdversary(Adversary):
    """The identity channel: never corrupts anything."""

    name = "noiseless"
    oblivious = True
    may_insert = False
    slot_addressed = True  # the identity channel is trivially pure

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        return sent

    def corrupt_window(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        return list(symbols)

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        return bits, present

    def corruption_schedule(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        return list(symbols)
