"""Adversary interface and noise-budget bookkeeping.

The paper distinguishes:

* **oblivious** adversaries — the noise pattern is fixed before the protocol
  starts, independently of the parties' randomness (the *additive* adversary
  of §2.1 and the *fixing* adversary of Remark 1);
* **non-oblivious** adversaries — the noise may adapt to everything observed
  on the wire (but not to private coins tossed later).

All of them implement :class:`Adversary`: the noisy transport consults the
adversary once per channel slot (one round, one directed link) and the
adversary returns what the receiver should see.  Corruption accounting is
done by the transport, not by the adversary, so an adversary cannot
under-report its own noise.

The theorems bound the noise as a *fraction of the actual communication* of
the executed instance, which is not known in advance.  :class:`NoiseBudget`
implements that accounting: adaptive adversaries ask it whether another
corruption would keep them within ``fraction * transmissions_so_far`` (plus
an optional absolute allowance), mirroring the "relative noise fraction" of
adaptive-length settings discussed in §2.1.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from repro.network.channel import Symbol, TransmissionContext


@dataclass
class NoiseBudget:
    """Tracks how many corruptions an adversary may still inject.

    Parameters
    ----------
    fraction:
        Maximum allowed ratio ``corruptions / transmissions``.
    absolute_allowance:
        Extra corruptions allowed regardless of the fraction (useful for
        experiments that want "exactly k errors").
    """

    fraction: float = 0.0
    absolute_allowance: int = 0
    transmissions_seen: int = 0
    corruptions_spent: int = 0

    def observe_transmission(self) -> None:
        """Record that one symbol was actually transmitted."""
        self.transmissions_seen += 1

    @property
    def allowed(self) -> int:
        """Corruptions permitted so far (floor of fraction * transmissions + allowance)."""
        return int(self.fraction * self.transmissions_seen) + self.absolute_allowance

    @property
    def remaining(self) -> int:
        return max(0, self.allowed - self.corruptions_spent)

    def can_spend(self, amount: int = 1) -> bool:
        return self.corruptions_spent + amount <= self.allowed

    def spend(self, amount: int = 1) -> None:
        if not self.can_spend(amount):
            raise RuntimeError(
                f"noise budget exceeded: spent {self.corruptions_spent}, "
                f"requested {amount}, allowed {self.allowed}"
            )
        self.corruptions_spent += amount


class Adversary(abc.ABC):
    """Base class for all noise models."""

    #: Human-readable name used by experiment reports.
    name: str = "adversary"

    #: Whether the adversary commits to its noise before seeing the execution.
    oblivious: bool = True

    #: Whether the adversary may deliver symbols on slots where the sender was
    #: silent (insertions).  Transports may skip consulting the adversary on
    #: silent slots when this is ``False``, which is a pure optimisation: a
    #: non-inserting adversary maps silence to silence anyway.
    may_insert: bool = True

    @abc.abstractmethod
    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        """Return the symbol delivered to the receiver for this slot.

        ``sent`` is the symbol the sender put on the wire (``None`` if the
        sender stayed silent).  Returning ``sent`` unchanged means "no
        corruption"; any other value is an insertion, deletion or
        substitution and will be charged by the transport's statistics.
        """

    def notify_delivery(self, ctx: TransmissionContext, sent: Symbol, received: Symbol) -> None:
        """Hook called after every slot; adaptive adversaries may record state."""

    def reset(self) -> None:
        """Reset mutable state so the same adversary object can be reused."""


class NoiselessAdversary(Adversary):
    """The identity channel: never corrupts anything."""

    name = "noiseless"
    oblivious = True
    may_insert = False

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        return sent
