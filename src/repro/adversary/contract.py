"""Conformance checking for the adversary contracts.

Two layers of guarantees hold the transport's transmission paths together:

* every adversary's ``corrupt_window`` must be **bit-identical** to the
  per-slot fallback (same delivered symbols, same RNG stream consumption,
  same budget accounting), which is what makes the batched fast path legal;
* every adversary's ``corrupt_window_packed`` must deliver the same planes
  (and leave the same state) as packing the ``corrupt_window`` output — the
  packed transport path is only legal because the corruption mask it applies
  is the one the symbol-sequence path would have produced;
* a :attr:`~repro.adversary.base.Adversary.slot_addressed` adversary must
  additionally satisfy the slot-addressed laws — purity, slot
  decomposability, path agreement (see
  :meth:`~repro.adversary.base.Adversary.corruption_schedule`) — which is
  what makes whole-phase round merging legal.

:func:`check_contract` probes both layers on deterministic fuzz windows and
raises :class:`ContractViolation` on the first broken law.  It is exported as
``repro.adversary.check_contract`` so third-party adversaries get the same
tool the stock ones are tested with (``tests/test_adversaries.py`` applies it
to every stock adversary).

The probe is behavioural, not static: it deep-copies the adversary per pass
(so a stateful adversary's streams/budgets cannot leak between passes),
replays the same window sequence through both paths, and compares delivered
symbols *and* a structural snapshot of all mutable state after every window.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary, NoiseBudget
from repro.network.channel import Symbol, WindowContext
from repro.utils.bitstring import pack_symbols
from repro.utils.rng import make_rng

#: Default directed links the probe windows run over.  They intentionally
#: include both directions of one edge (echo/spoofing adversaries key on
#: that) and a third unrelated link (targeted adversaries must pass it
#: through untouched).
_DEFAULT_LINKS: Tuple[Tuple[int, int], ...] = ((0, 1), (1, 0), (1, 2), (2, 1))

_DEFAULT_PHASES: Tuple[str, ...] = (
    "meeting_points",
    "flag_passing",
    "simulation",
    "rewind",
)


class ContractViolation(AssertionError):
    """An adversary broke one of the contract laws it declared."""

    def __init__(self, law: str, message: str) -> None:
        super().__init__(f"[{law}] {message}")
        self.law = law


@dataclass(frozen=True)
class ContractReport:
    """What :func:`check_contract` verified for one adversary."""

    adversary: str
    slot_addressed: bool
    windows_probed: int
    laws: Tuple[str, ...]


def _state_snapshot(value: object) -> object:
    """A comparable structural snapshot of an adversary's mutable state.

    Recurses through instance attributes; RNG streams collapse to
    ``getstate()`` and budgets to their counter tuple, so two snapshots are
    equal exactly when the two objects would behave identically from here on.
    """
    if isinstance(value, random.Random):
        return ("rng", value.getstate())
    if isinstance(value, NoiseBudget):
        return (
            "budget",
            value.fraction,
            value.absolute_allowance,
            value.transmissions_seen,
            value.corruptions_spent,
        )
    if isinstance(value, Adversary):
        return (
            type(value).__name__,
            tuple(
                (name, _state_snapshot(attr))
                for name, attr in sorted(vars(value).items(), key=lambda item: item[0])
            ),
        )
    if isinstance(value, dict):
        return (
            "dict",
            tuple(
                (key, _state_snapshot(item))
                for key, item in sorted(value.items(), key=lambda kv: repr(kv[0]))
            ),
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return ("seq", tuple(_state_snapshot(item) for item in items))
    return value


def _probe_windows(
    links: Sequence[Tuple[int, int]],
    phases: Sequence[str],
    window_rounds: int,
    windows: int,
    seed: int,
) -> List[Tuple[WindowContext, Tuple[Symbol, ...]]]:
    """Deterministic fuzz windows: mixed symbols/silence over growing rounds."""
    rng = make_rng(seed)
    probes: List[Tuple[WindowContext, Tuple[Symbol, ...]]] = []
    for index in range(windows):
        link = links[index % len(links)]
        phase = phases[index % len(phases)]
        base_round = index * window_rounds
        if index == 0:
            symbols: Tuple[Symbol, ...] = (None,) * window_rounds  # all silence
        elif index == 1:
            symbols = tuple(rng.choice((0, 1)) for _ in range(window_rounds))  # all traffic
        else:
            symbols = tuple(rng.choice((0, 1, None)) for _ in range(window_rounds))
        ctx = WindowContext(link=link, phase=phase, iteration=index % 3, base_round=base_round)
        probes.append((ctx, symbols))
    return probes


def _check_batched_equivalence(
    adv: Adversary,
    probes: Sequence[Tuple[WindowContext, Tuple[Symbol, ...]]],
) -> None:
    """corrupt_window must replay the per-slot fallback bit for bit."""
    batched = copy.deepcopy(adv)
    reference = copy.deepcopy(adv)
    batched.reset()
    reference.reset()
    for ctx, symbols in probes:
        got = list(batched.corrupt_window(ctx, symbols))
        expected = Adversary.corrupt_window(reference, ctx, symbols)
        if got != expected:
            raise ContractViolation(
                "batched-equivalence",
                f"{type(adv).__name__}.corrupt_window diverges from the per-slot "
                f"fallback on {ctx!r}: {got!r} != {expected!r}",
            )
        if _state_snapshot(batched) != _state_snapshot(reference):
            raise ContractViolation(
                "batched-equivalence",
                f"{type(adv).__name__}.corrupt_window left different state than the "
                f"per-slot fallback after {ctx!r} (RNG streams or budget counters "
                "diverged)",
            )


def _check_packed_equivalence(
    adv: Adversary,
    probes: Sequence[Tuple[WindowContext, Tuple[Symbol, ...]]],
) -> None:
    """corrupt_window_packed must apply the same corruption mask as
    corrupt_window: same delivered planes, same state afterwards."""
    packed = copy.deepcopy(adv)
    reference = copy.deepcopy(adv)
    packed.reset()
    reference.reset()
    for ctx, symbols in probes:
        bits, present = pack_symbols(symbols)
        got = packed.corrupt_window_packed(ctx, bits, present, len(symbols))
        expected_symbols = reference.corrupt_window(ctx, symbols)
        expected = pack_symbols(expected_symbols)
        if got != expected:
            raise ContractViolation(
                "packed-equivalence",
                f"{type(adv).__name__}.corrupt_window_packed delivers planes "
                f"{got!r} on {ctx!r} but corrupt_window delivers "
                f"{expected_symbols!r} (= planes {expected!r})",
            )
        delivered_bits, delivered_present = got
        if delivered_bits & ~delivered_present:
            raise ContractViolation(
                "packed-equivalence",
                f"{type(adv).__name__}.corrupt_window_packed broke the plane "
                f"invariant on {ctx!r}: bits {delivered_bits:#x} outside the "
                f"present mask {delivered_present:#x}",
            )
        if _state_snapshot(packed) != _state_snapshot(reference):
            raise ContractViolation(
                "packed-equivalence",
                f"{type(adv).__name__}.corrupt_window_packed left different state "
                f"than corrupt_window after {ctx!r} (RNG streams or budget "
                "counters diverged)",
            )


def _check_slot_addressed(
    adv: Adversary,
    probes: Sequence[Tuple[WindowContext, Tuple[Symbol, ...]]],
) -> None:
    """Purity, slot decomposability and path agreement of corruption_schedule."""
    subject = copy.deepcopy(adv)
    subject.reset()
    independent = copy.deepcopy(subject)
    for ctx, symbols in probes:
        before = _state_snapshot(subject)
        first = list(subject.corruption_schedule(ctx, symbols))
        second = list(subject.corruption_schedule(ctx, symbols))
        if first != second:
            raise ContractViolation(
                "purity",
                f"{type(adv).__name__}.corruption_schedule is not deterministic on "
                f"{ctx!r}: {first!r} then {second!r}",
            )
        if _state_snapshot(subject) != before:
            raise ContractViolation(
                "purity",
                f"{type(adv).__name__}.corruption_schedule mutated state on {ctx!r} "
                "(a slot-addressed adversary must not touch RNG streams, budgets or "
                "any other mutable state)",
            )
        # An independent probe object (never having seen the other windows)
        # must produce the same schedule: no hidden cross-window coupling.
        if list(independent.corruption_schedule(ctx, symbols)) != first:
            raise ContractViolation(
                "purity",
                f"{type(adv).__name__}.corruption_schedule on {ctx!r} differs "
                "between two independently constructed probes",
            )
        slot_contexts = [
            WindowContext(
                link=ctx.link,
                phase=ctx.phase,
                iteration=ctx.iteration,
                base_round=ctx.base_round + offset,
            )
            for offset in range(len(symbols))
        ]
        for offset, symbol in enumerate(symbols):
            slot_ctx = slot_contexts[offset]
            single = subject.corruption_schedule(slot_ctx, (symbol,))
            if single[0] != first[offset]:
                raise ContractViolation(
                    "slot-decomposability",
                    f"{type(adv).__name__}: slot {offset} of the window schedule on "
                    f"{ctx!r} is {first[offset]!r} but the single-slot evaluation at "
                    f"round {slot_ctx.base_round} gives {single[0]!r}",
                )
        for offset, symbol in enumerate(symbols):
            if not adv.may_insert and symbol is None:
                continue  # the per-slot transport never consults corrupt here
            slot_ctx = slot_contexts[offset]
            direct = subject.corrupt(slot_ctx.slot(0), symbol)
            if direct != first[offset]:
                raise ContractViolation(
                    "path-agreement",
                    f"{type(adv).__name__}.corrupt at round {slot_ctx.base_round} "
                    f"on {ctx.link} delivers {direct!r} but corruption_schedule "
                    f"delivers {first[offset]!r}",
                )
        window_path = list(subject.corrupt_window(ctx, symbols))
        if window_path != first:
            raise ContractViolation(
                "path-agreement",
                f"{type(adv).__name__}.corrupt_window on {ctx!r} delivers "
                f"{window_path!r} but corruption_schedule delivers {first!r}",
            )


def check_contract(
    adv: Adversary,
    *,
    links: Optional[Sequence[Tuple[int, int]]] = None,
    phases: Optional[Sequence[str]] = None,
    window_rounds: int = 12,
    windows: int = 8,
    seed: int = 2024,
) -> ContractReport:
    """Probe ``adv`` against every contract it declares.

    Always checks batched-vs-per-slot equivalence and packed-vs-batched
    equivalence (``corrupt_window_packed`` delivering the same corruption
    mask, plane invariant included).  When
    ``adv.slot_addressed`` is ``True``, additionally probes the slot-addressed
    laws (purity, slot decomposability, path agreement); when ``False``,
    verifies that :meth:`~repro.adversary.base.Adversary.corruption_schedule`
    refuses to run.  The probe windows are deterministic in ``seed`` and span
    absolute rounds ``[0, windows * window_rounds)`` — configure adversaries
    whose behaviour is round- or link-keyed (bursts, patterns, targets) to
    overlap that region and the default ``links`` so the interesting branches
    are exercised.

    Returns a :class:`ContractReport`; raises :class:`ContractViolation` on
    the first broken law.  The adversary object is never mutated (all probes
    run on deep copies).
    """
    probe_links = tuple(links) if links is not None else _DEFAULT_LINKS
    probe_phases = tuple(phases) if phases is not None else _DEFAULT_PHASES
    probes = _probe_windows(probe_links, probe_phases, window_rounds, windows, seed)
    laws: List[str] = ["batched-equivalence", "packed-equivalence"]
    _check_batched_equivalence(adv, probes)
    _check_packed_equivalence(adv, probes)
    if adv.slot_addressed:
        _check_slot_addressed(adv, probes)
        laws += ["purity", "slot-decomposability", "path-agreement"]
    else:
        ctx, symbols = probes[0]
        try:
            copy.deepcopy(adv).corruption_schedule(ctx, symbols)
        except RuntimeError:
            pass
        else:
            raise ContractViolation(
                "truthful-flag",
                f"{type(adv).__name__} reports slot_addressed=False but "
                "corruption_schedule did not refuse to run",
            )
        laws.append("truthful-flag")
    return ContractReport(
        adversary=adv.name,
        slot_addressed=adv.slot_addressed,
        windows_probed=len(probes),
        laws=tuple(laws),
    )
