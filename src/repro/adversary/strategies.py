"""Concrete noise strategies.

Two families:

* **Content-oblivious strategies** decide whether to corrupt a slot from the
  slot's coordinates (round, link, phase) and their own pre-seeded RNG only —
  never from the transmitted symbol or the parties' randomness.  Fixing their
  RNG seed turns each of them into an explicit oblivious noise pattern in the
  sense of §2.1 (the pattern could be materialised up front; we evaluate it
  lazily for convenience).
* **Adaptive (non-oblivious) strategies** may look at the symbol on the wire
  and at everything delivered so far, which is exactly the extra power
  Algorithm B / Algorithm C are designed to resist.

All budgeted strategies spend from a :class:`~repro.adversary.base.NoiseBudget`
whose allowance grows with the *actual* communication, matching the relative
noise fraction of the theorems.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from repro.adversary.base import Adversary, NoiseBudget
from repro.network.channel import Symbol, TransmissionContext
from repro.utils.rng import make_rng


def _flip(symbol: Symbol) -> Symbol:
    """Substitute a bit; turn silence into an inserted 0."""
    if symbol is None:
        return 0
    return 1 - symbol


def _corrupt_randomly(rng: random.Random, symbol: Symbol) -> Symbol:
    """Pick a uniformly random corruption of ``symbol`` (always a real change)."""
    if symbol is None:
        return rng.choice([0, 1])  # insertion
    return rng.choice([1 - symbol, None])  # substitution or deletion


@dataclass
class RandomNoiseAdversary(Adversary):
    """Corrupt each transmitted slot independently with a fixed probability.

    This is the natural stochastic instantiation of an oblivious adversary:
    the coin flips depend only on the slot index and the adversary's own seed.
    ``insertion_probability`` controls extra insertions on silent slots
    (0 disables them and lets the transport skip silent slots entirely).
    """

    corruption_probability: float = 0.0
    insertion_probability: float = 0.0
    seed: int = 0
    budget: Optional[NoiseBudget] = None
    name: str = "random-noise"
    oblivious: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.corruption_probability <= 1.0:
            raise ValueError("corruption_probability must lie in [0, 1]")
        if not 0.0 <= self.insertion_probability <= 1.0:
            raise ValueError("insertion_probability must lie in [0, 1]")
        self._rng = make_rng(self.seed)
        self.may_insert = self.insertion_probability > 0.0

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if self.budget is not None and sent is not None:
            self.budget.observe_transmission()
        probability = self.insertion_probability if sent is None else self.corruption_probability
        if probability <= 0.0 or self._rng.random() >= probability:
            return sent
        if self.budget is not None and not self.budget.can_spend():
            return sent
        corrupted = _corrupt_randomly(self._rng, sent)
        if self.budget is not None:
            self.budget.spend()
        return corrupted

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        if self.budget is not None:
            self.budget.transmissions_seen = 0
            self.budget.corruptions_spent = 0


@dataclass
class LinkTargetedAdversary(Adversary):
    """Concentrate the noise on one directed link.

    Optionally restricted to a set of phases (for instance only the
    ``"simulation"`` phase, or only the ``"randomness_exchange"`` prefix —
    the attack Section 5 must defend against).  Content-oblivious.

    The attack is bounded either by a relative ``fraction`` of the realised
    communication (the theorems' noise model) or by an absolute
    ``max_corruptions`` (useful for "exactly k errors" experiments); when
    ``max_corruptions`` is set it is the only limit that applies.
    """

    target: Tuple[int, int] = (0, 1)
    fraction: float = 0.0
    phases: Optional[Sequence[str]] = None
    corruption_probability: float = 1.0
    max_corruptions: Optional[int] = None
    seed: int = 0
    name: str = "link-targeted"
    oblivious: bool = True
    may_insert: bool = False

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._spent = 0

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if sent is not None:
            self._budget.observe_transmission()
        if (ctx.sender, ctx.receiver) != self.target:
            return sent
        if self.phases is not None and ctx.phase not in self.phases:
            return sent
        if sent is None:
            return sent
        if self._rng.random() >= self.corruption_probability:
            return sent
        if self.max_corruptions is not None:
            if self._spent >= self.max_corruptions:
                return sent
        elif not self._budget.can_spend():
            return sent
        if self.max_corruptions is None:
            self._budget.spend()
        self._spent += 1
        return _corrupt_randomly(self._rng, sent)

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._spent = 0


@dataclass
class BurstAdversary(Adversary):
    """Corrupt every transmission inside a window of absolute rounds.

    Models the "all the noise lands in one short interval" worst case; the
    total damage is still capped by ``max_corruptions`` so experiments can
    relate it to a noise fraction after the fact.
    """

    start_round: int = 0
    end_round: int = 0
    max_corruptions: int = 0
    seed: int = 0
    name: str = "burst"
    oblivious: bool = True
    may_insert: bool = False

    def __post_init__(self) -> None:
        if self.end_round < self.start_round:
            raise ValueError("end_round must be >= start_round")
        self._rng = make_rng(self.seed)
        self._spent = 0

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if sent is None:
            return sent
        if not self.start_round <= ctx.round_index <= self.end_round:
            return sent
        if self._spent >= self.max_corruptions:
            return sent
        self._spent += 1
        return _corrupt_randomly(self._rng, sent)

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._spent = 0


@dataclass
class DeletionAdversary(Adversary):
    """Delete each transmitted symbol independently with a fixed probability.

    Useful for isolating the insertion/deletion aspect of the noise model
    (e.g. to show that baselines relying purely on timing fail).
    """

    deletion_probability: float = 0.0
    seed: int = 0
    budget: Optional[NoiseBudget] = None
    name: str = "deletion"
    oblivious: bool = True
    may_insert: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.deletion_probability <= 1.0:
            raise ValueError("deletion_probability must lie in [0, 1]")
        self._rng = make_rng(self.seed)

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if sent is None:
            return sent
        if self.budget is not None:
            self.budget.observe_transmission()
        if self._rng.random() >= self.deletion_probability:
            return sent
        if self.budget is not None:
            if not self.budget.can_spend():
                return sent
            self.budget.spend()
        return None

    def reset(self) -> None:
        self._rng = make_rng(self.seed)


@dataclass
class CompositeAdversary(Adversary):
    """Apply several adversaries in sequence to every slot.

    Each component sees the (possibly already corrupted) symbol produced by
    the previous one; the composite is oblivious only if every component is.
    Useful for combining a background noise floor with a targeted attack —
    e.g. the Table 1 harness pairs random insertion/deletion noise with a
    short burst on one link so that baselines face at least a few guaranteed
    errors.
    """

    components: Sequence[Adversary] = ()
    name: str = "composite"

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("CompositeAdversary needs at least one component")
        self.oblivious = all(component.oblivious for component in self.components)
        self.may_insert = any(getattr(component, "may_insert", True) for component in self.components)

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        symbol = sent
        for component in self.components:
            symbol = component.corrupt(ctx, symbol)
        return symbol

    def notify_delivery(self, ctx: TransmissionContext, sent: Symbol, received: Symbol) -> None:
        for component in self.components:
            component.notify_delivery(ctx, sent, received)

    def reset(self) -> None:
        for component in self.components:
            component.reset()


@dataclass
class PhaseTargetedAdaptiveAdversary(Adversary):
    """A non-oblivious adversary that spends its budget on chosen phases.

    It watches the actual communication (so its budget tracks the realised
    communication complexity) and corrupts transmissions that occur in the
    listed phases, preferring early iterations.  This captures the classic
    adaptive attacks against the scheme: hitting the meeting-points hashes or
    the flag-passing bits, where a single corrupted bit has the largest
    downstream effect.
    """

    fraction: float = 0.0
    phases: Sequence[str] = ("meeting_points", "flag_passing")
    seed: int = 0
    max_iteration: Optional[int] = None
    name: str = "adaptive-phase-targeted"
    oblivious: bool = False
    may_insert: bool = False

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if sent is not None:
            self._budget.observe_transmission()
        if sent is None:
            return sent
        if ctx.phase not in self.phases:
            return sent
        if self.max_iteration is not None and ctx.iteration > self.max_iteration:
            return sent
        if not self._budget.can_spend():
            return sent
        self._budget.spend()
        return _corrupt_randomly(self._rng, sent)

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)


@dataclass
class RotatingLinkAdaptiveAdversary(Adversary):
    """A non-oblivious adversary that keeps moving its attack across links.

    Every time its budget allows another corruption it targets the next
    directed link in a round-robin order, corrupting the first transmitted
    symbol it sees there.  Spreading single errors across many links maximises
    the number of (iteration, link) pairs that need local correction, which is
    the stress case for the global flag-passing/rewind machinery.
    """

    links: Sequence[Tuple[int, int]] = ()
    fraction: float = 0.0
    seed: int = 0
    name: str = "adaptive-rotating-link"
    oblivious: bool = False
    may_insert: bool = False

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("RotatingLinkAdaptiveAdversary needs a non-empty link list")
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._cursor = 0

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if sent is not None:
            self._budget.observe_transmission()
        if sent is None:
            return sent
        if (ctx.sender, ctx.receiver) != tuple(self.links[self._cursor]):
            return sent
        if not self._budget.can_spend():
            return sent
        self._budget.spend()
        self._cursor = (self._cursor + 1) % len(self.links)
        return _corrupt_randomly(self._rng, sent)

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._cursor = 0


@dataclass
class EchoSpoofingAdversary(Adversary):
    """The synchronisation attack of BGMO17 adapted to our model.

    Whenever it can afford two corruptions it deletes a symbol travelling in
    one direction of the target link and inserts a spoofed symbol in the
    opposite direction within the same window, driving the two endpoints out
    of sync — the attack that makes insertion/deletion noise strictly harder
    than substitutions.  Non-oblivious (it reacts to observed traffic).
    """

    target: Tuple[int, int] = (0, 1)
    fraction: float = 0.0
    seed: int = 0
    name: str = "echo-spoofing"
    oblivious: bool = False
    may_insert: bool = True

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._pending_spoof = False

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if sent is not None:
            self._budget.observe_transmission()
        forward = (ctx.sender, ctx.receiver) == tuple(self.target)
        backward = (ctx.receiver, ctx.sender) == tuple(self.target)
        if forward and sent is not None and self._budget.can_spend(2):
            self._budget.spend()
            self._pending_spoof = True
            return None  # deletion
        if backward and sent is None and self._pending_spoof:
            self._pending_spoof = False
            self._budget.spend()
            return self._rng.choice([0, 1])  # spoofed reply (insertion)
        return sent

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._pending_spoof = False
