"""Concrete noise strategies.

Two families:

* **Content-oblivious strategies** decide whether to corrupt a slot from the
  slot's coordinates (round, link, phase) and their own pre-seeded RNG only —
  never from the transmitted symbol or the parties' randomness.  Fixing their
  RNG seed turns each of them into an explicit oblivious noise pattern in the
  sense of §2.1 (the pattern could be materialised up front; we evaluate it
  lazily for convenience).
* **Adaptive (non-oblivious) strategies** may look at the symbol on the wire
  and at everything delivered so far, which is exactly the extra power
  Algorithm B / Algorithm C are designed to resist.

All budgeted strategies spend from a :class:`~repro.adversary.base.NoiseBudget`
whose allowance grows with the *actual* communication, matching the relative
noise fraction of the theorems.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary, NoiseBudget
from repro.network.channel import Symbol, TransmissionContext, WindowContext
from repro.utils.rng import make_rng, slot_rng


def _flip(symbol: Symbol) -> Symbol:
    """Substitute a bit; turn silence into an inserted 0."""
    if symbol is None:
        return 0
    return 1 - symbol


def _corrupt_randomly(rng: random.Random, symbol: Symbol) -> Symbol:
    """Pick a uniformly random corruption of ``symbol`` (always a real change)."""
    if symbol is None:
        return rng.choice([0, 1])  # insertion
    return rng.choice([1 - symbol, None])  # substitution or deletion


def _pass_through_observing(budget: NoiseBudget, symbols: Sequence[Symbol]) -> List[Symbol]:
    """Deliver a window untouched, bulk-observing its realised communication.

    The shared fast path of every targeted/adaptive adversary for windows it
    will never corrupt: only the budget's notion of the communication grows,
    so the per-slot observe calls collapse into one bulk update.
    """
    transmitted = sum(1 for sent in symbols if sent is not None)
    if transmitted:
        budget.observe_transmissions(transmitted)
    return list(symbols)


@dataclass
class RandomNoiseAdversary(Adversary):
    """Corrupt each transmitted slot independently with a fixed probability.

    This is the natural stochastic instantiation of an oblivious adversary:
    the coin flips depend only on the slot index and the adversary's own seed.
    ``insertion_probability`` controls extra insertions on silent slots
    (0 disables them and lets the transport skip silent slots entirely).

    With ``slot_addressed=True`` the coins come from per-slot derived streams
    (:func:`~repro.utils.rng.slot_rng`) instead of one sequential generator,
    making every decision a pure function of ``(seed, round, link, symbol)``.
    The noise distribution is the same, the realised pattern differs from the
    sequential mode; a ``budget`` is rejected because a fraction budget feeds
    on realised communication, which is cross-slot state.
    """

    corruption_probability: float = 0.0
    insertion_probability: float = 0.0
    seed: int = 0
    budget: Optional[NoiseBudget] = None
    name: str = "random-noise"
    oblivious: bool = True
    slot_addressed: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.corruption_probability <= 1.0:
            raise ValueError("corruption_probability must lie in [0, 1]")
        if not 0.0 <= self.insertion_probability <= 1.0:
            raise ValueError("insertion_probability must lie in [0, 1]")
        if self.slot_addressed and self.budget is not None:
            raise ValueError(
                "slot-addressed RandomNoiseAdversary cannot carry a NoiseBudget: "
                "a fraction budget feeds on realised communication, which is "
                "cross-slot state"
            )
        self._rng = make_rng(self.seed)
        self.may_insert = self.insertion_probability > 0.0

    def _slot_symbol(self, round_index: int, sender: int, receiver: int, sent: Symbol) -> Symbol:
        """The pure per-slot decision of the slot-addressed mode."""
        probability = self.insertion_probability if sent is None else self.corruption_probability
        if probability <= 0.0:
            return sent
        rng = slot_rng(self.seed, round_index, sender, receiver)
        if rng.random() >= probability:
            return sent
        return _corrupt_randomly(rng, sent)

    def corruption_schedule(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        if not self.slot_addressed:
            return super().corruption_schedule(ctx, symbols)  # raises
        sender, receiver = ctx.link
        base = ctx.base_round
        slot = self._slot_symbol
        return [slot(base + offset, sender, receiver, sent) for offset, sent in enumerate(symbols)]

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if self.slot_addressed:
            return self._slot_symbol(ctx.round_index, ctx.sender, ctx.receiver, sent)
        if self.budget is not None and sent is not None:
            self.budget.observe_transmission()
        probability = self.insertion_probability if sent is None else self.corruption_probability
        if probability <= 0.0 or self._rng.random() >= probability:
            return sent
        if self.budget is not None and not self.budget.can_spend():
            return sent
        corrupted = _corrupt_randomly(self._rng, sent)
        if self.budget is not None:
            self.budget.spend()
        return corrupted

    def corrupt_window(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        if self.slot_addressed:
            return self.corruption_schedule(ctx, symbols)
        # The RNG stream must match the per-slot path draw for draw, so the
        # corruption mask is drawn in offset order — but in one tight pass
        # with everything bound locally and no per-slot contexts (the budget
        # counters are mirrored locally and written back once).
        corruption_probability = self.corruption_probability
        insertion_probability = self.insertion_probability
        budget = self.budget
        if budget is None and corruption_probability <= 0.0 and insertion_probability <= 0.0:
            return list(symbols)
        rng = self._rng
        rand = rng.random
        out: List[Symbol] = []
        append = out.append
        if budget is None:
            for sent in symbols:
                probability = insertion_probability if sent is None else corruption_probability
                if probability <= 0.0 or rand() >= probability:
                    append(sent)
                else:
                    append(_corrupt_randomly(rng, sent))
            return out
        seen = budget.transmissions_seen
        spent = budget.corruptions_spent
        fraction = budget.fraction
        allowance = budget.absolute_allowance
        allowance_at = budget.allowance_at
        for sent in symbols:
            if sent is None:
                probability = insertion_probability
            else:
                seen += 1
                probability = corruption_probability
            if probability <= 0.0 or rand() >= probability:
                append(sent)
                continue
            if spent + 1 > allowance_at(fraction, seen, allowance):
                append(sent)
                continue
            append(_corrupt_randomly(rng, sent))
            spent += 1
        budget.transmissions_seen = seen
        budget.corruptions_spent = spent
        return out

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        # Insertions touch silent slots too; that rare configuration keeps
        # the generic unpack fallback.  Otherwise only the transmitted slots
        # matter, so the kernel walks the set bits of ``present`` LSB-first —
        # which is exactly offset order, preserving the RNG draw sequence of
        # the symbol paths draw for draw.
        if self.insertion_probability > 0.0:
            return super().corrupt_window_packed(ctx, bits, present, count)
        probability = self.corruption_probability
        if self.slot_addressed:
            if probability <= 0.0:
                return bits, present
            sender, receiver = ctx.link
            base = ctx.base_round
            seed = self.seed
            remaining = present
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                rng = slot_rng(seed, base + low.bit_length() - 1, sender, receiver)
                if rng.random() >= probability:
                    continue
                received = _corrupt_randomly(rng, (bits >> (low.bit_length() - 1)) & 1)
                if received is None:
                    bits &= ~low
                    present ^= low
                elif received:
                    bits |= low
                else:
                    bits &= ~low
            return bits, present
        budget = self.budget
        if probability <= 0.0:
            if budget is not None and present:
                budget.observe_transmissions(present.bit_count())
            return bits, present
        rng = self._rng
        rand = rng.random
        if budget is None:
            remaining = present
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                if rand() >= probability:
                    continue
                received = _corrupt_randomly(rng, (bits >> (low.bit_length() - 1)) & 1)
                if received is None:
                    bits &= ~low
                    present ^= low
                elif received:
                    bits |= low
                else:
                    bits &= ~low
            return bits, present
        seen = budget.transmissions_seen
        spent = budget.corruptions_spent
        fraction = budget.fraction
        allowance = budget.absolute_allowance
        allowance_at = budget.allowance_at
        remaining = present
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            seen += 1
            if rand() >= probability or spent + 1 > allowance_at(fraction, seen, allowance):
                continue
            received = _corrupt_randomly(rng, (bits >> (low.bit_length() - 1)) & 1)
            spent += 1
            if received is None:
                bits &= ~low
                present ^= low
            elif received:
                bits |= low
            else:
                bits &= ~low
        budget.transmissions_seen = seen
        budget.corruptions_spent = spent
        return bits, present

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        if self.budget is not None:
            self.budget.transmissions_seen = 0
            self.budget.corruptions_spent = 0


@dataclass
class LinkTargetedAdversary(Adversary):
    """Concentrate the noise on one directed link.

    Optionally restricted to a set of phases (for instance only the
    ``"simulation"`` phase, or only the ``"randomness_exchange"`` prefix —
    the attack Section 5 must defend against).  Content-oblivious.

    The attack is bounded either by a relative ``fraction`` of the realised
    communication (the theorems' noise model) or by an absolute
    ``max_corruptions`` (useful for "exactly k errors" experiments); when
    ``max_corruptions`` is set it is the only limit that applies.

    With ``slot_addressed=True`` the attack becomes probability-only: every
    transmitted slot on the target link (in a targeted phase) is corrupted
    independently with ``corruption_probability`` from its own derived stream.
    Both limits are cross-slot state, so the mode requires
    ``max_corruptions is None`` and ``fraction == 0.0``.
    """

    target: Tuple[int, int] = (0, 1)
    fraction: float = 0.0
    phases: Optional[Sequence[str]] = None
    corruption_probability: float = 1.0
    max_corruptions: Optional[int] = None
    seed: int = 0
    name: str = "link-targeted"
    oblivious: bool = True
    may_insert: bool = False
    slot_addressed: bool = False

    def __post_init__(self) -> None:
        if self.slot_addressed and (self.max_corruptions is not None or self.fraction != 0.0):
            raise ValueError(
                "slot-addressed LinkTargetedAdversary is probability-only: "
                "max_corruptions and fraction are cross-slot limits and must "
                "stay at None / 0.0"
            )
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._spent = 0

    def _slot_symbol(
        self, round_index: int, sender: int, receiver: int, phase: str, sent: Symbol
    ) -> Symbol:
        """The pure per-slot decision of the slot-addressed mode."""
        if sent is None or (sender, receiver) != self.target:
            return sent
        if self.phases is not None and phase not in self.phases:
            return sent
        rng = slot_rng(self.seed, round_index, sender, receiver)
        if rng.random() >= self.corruption_probability:
            return sent
        return _corrupt_randomly(rng, sent)

    def corruption_schedule(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        if not self.slot_addressed:
            return super().corruption_schedule(ctx, symbols)  # raises
        if ctx.link != self.target or (self.phases is not None and ctx.phase not in self.phases):
            return list(symbols)
        sender, receiver = ctx.link
        base = ctx.base_round
        phase = ctx.phase
        slot = self._slot_symbol
        return [
            slot(base + offset, sender, receiver, phase, sent)
            for offset, sent in enumerate(symbols)
        ]

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if self.slot_addressed:
            return self._slot_symbol(ctx.round_index, ctx.sender, ctx.receiver, ctx.phase, sent)
        if sent is not None:
            self._budget.observe_transmission()
        if (ctx.sender, ctx.receiver) != self.target:
            return sent
        if self.phases is not None and ctx.phase not in self.phases:
            return sent
        if sent is None:
            return sent
        if self._rng.random() >= self.corruption_probability:
            return sent
        if self.max_corruptions is not None:
            if self._spent >= self.max_corruptions:
                return sent
        elif not self._budget.can_spend():
            return sent
        if self.max_corruptions is None:
            self._budget.spend()
        self._spent += 1
        return _corrupt_randomly(self._rng, sent)

    def corrupt_window(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        if self.slot_addressed:
            return self.corruption_schedule(ctx, symbols)
        # Only one directed link is ever attacked, so every other window is a
        # pure pass-through: observe the realised communication in bulk and
        # skip the per-slot machinery entirely.
        if ctx.link != self.target or (self.phases is not None and ctx.phase not in self.phases):
            return _pass_through_observing(self._budget, symbols)
        return super().corrupt_window(ctx, symbols)

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        # Off-target windows pass their planes through untouched; only the
        # sequential mode's budget observes their realised communication
        # (the slot-addressed mode never touches the budget).
        if ctx.link != tuple(self.target) or (
            self.phases is not None and ctx.phase not in self.phases
        ):
            if not self.slot_addressed and present:
                self._budget.observe_transmissions(present.bit_count())
            return bits, present
        return super().corrupt_window_packed(ctx, bits, present, count)

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._spent = 0


@dataclass
class BurstAdversary(Adversary):
    """Corrupt every transmission inside a window of absolute rounds.

    Models the "all the noise lands in one short interval" worst case; the
    total damage is still capped by ``max_corruptions`` so experiments can
    relate it to a noise fraction after the fact.

    With ``slot_addressed=True`` the cap goes away (``max_corruptions`` must
    be ``None`` — a spend counter is cross-slot state): every transmitted
    slot inside ``[start_round, end_round]`` is corrupted, each from its own
    derived stream, which is the pure "total blackout interval" burst.
    """

    start_round: int = 0
    end_round: int = 0
    max_corruptions: Optional[int] = 0
    seed: int = 0
    name: str = "burst"
    oblivious: bool = True
    may_insert: bool = False
    slot_addressed: bool = False

    def __post_init__(self) -> None:
        if self.end_round < self.start_round:
            raise ValueError("end_round must be >= start_round")
        if self.slot_addressed:
            if self.max_corruptions is not None:
                raise ValueError(
                    "slot-addressed BurstAdversary corrupts its whole interval: "
                    "max_corruptions is a cross-slot counter and must be None"
                )
        elif self.max_corruptions is None:
            raise ValueError("max_corruptions may only be None when slot_addressed is True")
        self._rng = make_rng(self.seed)
        self._spent = 0

    def _slot_symbol(self, round_index: int, sender: int, receiver: int, sent: Symbol) -> Symbol:
        """The pure per-slot decision of the slot-addressed mode."""
        if sent is None or not self.start_round <= round_index <= self.end_round:
            return sent
        return _corrupt_randomly(slot_rng(self.seed, round_index, sender, receiver), sent)

    def corruption_schedule(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        if not self.slot_addressed:
            return super().corruption_schedule(ctx, symbols)  # raises
        last_round = ctx.base_round + len(symbols) - 1
        if last_round < self.start_round or ctx.base_round > self.end_round:
            return list(symbols)
        sender, receiver = ctx.link
        base = ctx.base_round
        slot = self._slot_symbol
        return [slot(base + offset, sender, receiver, sent) for offset, sent in enumerate(symbols)]

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if self.slot_addressed:
            return self._slot_symbol(ctx.round_index, ctx.sender, ctx.receiver, sent)
        if sent is None:
            return sent
        if not self.start_round <= ctx.round_index <= self.end_round:
            return sent
        if self._spent >= self.max_corruptions:
            return sent
        self._spent += 1
        return _corrupt_randomly(self._rng, sent)

    def corrupt_window(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        if self.slot_addressed:
            return self.corruption_schedule(ctx, symbols)
        # Windows disjoint from the burst interval (or after the cap is
        # exhausted) touch no state at all — not even the RNG.
        last_round = ctx.base_round + len(symbols) - 1
        if (
            self._spent >= self.max_corruptions
            or last_round < self.start_round
            or ctx.base_round > self.end_round
        ):
            return list(symbols)
        return super().corrupt_window(ctx, symbols)

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        # Windows disjoint from the burst interval (or, in the sequential
        # mode, after the cap is exhausted) pass their planes straight
        # through; overlapping windows take the generic unpack fallback.
        last_round = ctx.base_round + count - 1
        if last_round < self.start_round or ctx.base_round > self.end_round:
            return bits, present
        if not self.slot_addressed and self._spent >= self.max_corruptions:
            return bits, present
        return super().corrupt_window_packed(ctx, bits, present, count)

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._spent = 0


@dataclass
class DeletionAdversary(Adversary):
    """Delete each transmitted symbol independently with a fixed probability.

    Useful for isolating the insertion/deletion aspect of the noise model
    (e.g. to show that baselines relying purely on timing fail).

    With ``slot_addressed=True`` each deletion coin comes from the slot's own
    derived stream (pure in ``(seed, round, link)``); a ``budget`` is
    rejected for the same cross-slot reason as in
    :class:`RandomNoiseAdversary`.
    """

    deletion_probability: float = 0.0
    seed: int = 0
    budget: Optional[NoiseBudget] = None
    name: str = "deletion"
    oblivious: bool = True
    may_insert: bool = False
    slot_addressed: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.deletion_probability <= 1.0:
            raise ValueError("deletion_probability must lie in [0, 1]")
        if self.slot_addressed and self.budget is not None:
            raise ValueError(
                "slot-addressed DeletionAdversary cannot carry a NoiseBudget: "
                "a fraction budget feeds on realised communication, which is "
                "cross-slot state"
            )
        self._rng = make_rng(self.seed)

    def _slot_symbol(self, round_index: int, sender: int, receiver: int, sent: Symbol) -> Symbol:
        """The pure per-slot decision of the slot-addressed mode."""
        if sent is None or self.deletion_probability <= 0.0:
            return sent
        rng = slot_rng(self.seed, round_index, sender, receiver)
        if rng.random() >= self.deletion_probability:
            return sent
        return None

    def corruption_schedule(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        if not self.slot_addressed:
            return super().corruption_schedule(ctx, symbols)  # raises
        sender, receiver = ctx.link
        base = ctx.base_round
        slot = self._slot_symbol
        return [slot(base + offset, sender, receiver, sent) for offset, sent in enumerate(symbols)]

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if self.slot_addressed:
            return self._slot_symbol(ctx.round_index, ctx.sender, ctx.receiver, sent)
        if sent is None:
            return sent
        if self.budget is not None:
            self.budget.observe_transmission()
        if self._rng.random() >= self.deletion_probability:
            return sent
        if self.budget is not None:
            if not self.budget.can_spend():
                return sent
            self.budget.spend()
        return None

    def corrupt_window(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        if self.slot_addressed:
            return self.corruption_schedule(ctx, symbols)
        # Per-slot ``corrupt`` draws the RNG for every transmitted slot (even
        # at probability 0), so the batch path must too — one draw per
        # non-silent slot, in offset order.
        rng = self._rng
        rand = rng.random
        probability = self.deletion_probability
        budget = self.budget
        out: List[Symbol] = []
        append = out.append
        if budget is None:
            for sent in symbols:
                if sent is None or rand() >= probability:
                    append(sent)
                else:
                    append(None)
            return out
        seen = budget.transmissions_seen
        spent = budget.corruptions_spent
        fraction = budget.fraction
        allowance = budget.absolute_allowance
        allowance_at = budget.allowance_at
        for sent in symbols:
            if sent is None:
                append(None)
                continue
            seen += 1
            if rand() >= probability or spent + 1 > allowance_at(fraction, seen, allowance):
                append(sent)
                continue
            append(None)
            spent += 1
        budget.transmissions_seen = seen
        budget.corruptions_spent = spent
        return out

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        # Deletions only ever clear plane bits, so the kernel walks the set
        # bits of ``present`` LSB-first (= offset order, preserving the draw
        # sequence) and never touches ``bits`` except to keep the
        # bits-subset-of-present invariant.
        probability = self.deletion_probability
        if self.slot_addressed:
            if probability <= 0.0:
                return bits, present
            sender, receiver = ctx.link
            base = ctx.base_round
            seed = self.seed
            remaining = present
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                rng = slot_rng(seed, base + low.bit_length() - 1, sender, receiver)
                if rng.random() < probability:
                    bits &= ~low
                    present ^= low
            return bits, present
        # The sequential mode draws once per transmitted slot even at
        # probability 0, so the loop below must too.
        rand = self._rng.random
        budget = self.budget
        if budget is None:
            remaining = present
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                if rand() < probability:
                    bits &= ~low
                    present ^= low
            return bits, present
        seen = budget.transmissions_seen
        spent = budget.corruptions_spent
        fraction = budget.fraction
        allowance = budget.absolute_allowance
        allowance_at = budget.allowance_at
        remaining = present
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            seen += 1
            if rand() < probability and spent + 1 <= allowance_at(fraction, seen, allowance):
                bits &= ~low
                present ^= low
                spent += 1
        budget.transmissions_seen = seen
        budget.corruptions_spent = spent
        return bits, present

    def reset(self) -> None:
        self._rng = make_rng(self.seed)


@dataclass
class CompositeAdversary(Adversary):
    """Apply several adversaries in sequence to every slot.

    Each component sees the (possibly already corrupted) symbol produced by
    the previous one; the composite is oblivious only if every component is.
    Useful for combining a background noise floor with a targeted attack —
    e.g. the Table 1 harness pairs random insertion/deletion noise with a
    short burst on one link so that baselines face at least a few guaranteed
    errors.
    """

    components: Sequence[Adversary] = ()
    name: str = "composite"

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("CompositeAdversary needs at least one component")
        self.oblivious = all(component.oblivious for component in self.components)
        self.may_insert = any(component.may_insert for component in self.components)
        # The batched path runs each component over a whole window before the
        # next one sees it, mirroring budget counters locally per component.
        # That is only equivalent to the per-slot interleaving when every
        # component owns its budget, so a shared NoiseBudget object is
        # rejected rather than silently diverging between the two paths.
        seen_budgets = set()
        for component in self._flattened():
            budget = getattr(component, "budget", None)
            if budget is None:
                continue
            if id(budget) in seen_budgets:
                raise ValueError(
                    "CompositeAdversary components must not share a NoiseBudget instance"
                )
            seen_budgets.add(id(budget))
        # A component that records state via notify_delivery must be replayed
        # slot by slot: the per-slot path notifies every component with the
        # ORIGINAL sent and FINAL received symbol of each slot, interleaved
        # between slots, which chaining whole windows cannot reproduce.
        # Whole-window chaining is used only when every leaf's notify hook is
        # the base no-op (true for all stock adversaries).
        self._chain_windows = all(
            type(component).notify_delivery is Adversary.notify_delivery
            for component in self._flattened()
        )
        # A chain of pure schedules is itself pure: slot i of the composite
        # depends only on slot i of every component.  Any stateful component
        # (or one that needs the per-slot notify replay) poisons the whole
        # composite, which then truthfully reports slot_addressed=False.
        self.slot_addressed = self._chain_windows and all(
            component.slot_addressed for component in self._flattened()
        )

    def _flattened(self) -> Iterable[Adversary]:
        for component in self.components:
            if isinstance(component, CompositeAdversary):
                yield from component._flattened()
            else:
                yield component

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        symbol = sent
        for component in self.components:
            symbol = component.corrupt(ctx, symbol)
        return symbol

    def corrupt_window(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        # Chaining whole windows is bit-identical to chaining per slot: each
        # component owns its RNG/budget, and its state when reaching slot i
        # depends only on the slots it already processed (0..i-1 of this
        # window in both orders) — the interleaving with other components is
        # unobservable.  Components with a real notify_delivery hook break
        # that argument, so they take the per-slot fallback (which chains
        # `corrupt` per slot and forwards the original/final symbols through
        # `notify_delivery`, exactly like the per-slot transport).
        if not self._chain_windows:
            return super().corrupt_window(ctx, symbols)
        out = list(symbols)
        for component in self.components:
            out = component.corrupt_window(ctx, out)
        return out

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        # Same chaining argument as ``corrupt_window``: each component's
        # packed kernel is bit-identical to its symbol-sequence path, so the
        # planes can flow straight through the chain without unpacking.
        if not self._chain_windows:
            return super().corrupt_window_packed(ctx, bits, present, count)
        for component in self.components:
            bits, present = component.corrupt_window_packed(ctx, bits, present, count)
        return bits, present

    def corruption_schedule(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        if not self.slot_addressed:
            return super().corruption_schedule(ctx, symbols)  # raises
        out = list(symbols)
        for component in self.components:
            out = component.corruption_schedule(ctx, out)
        return out

    def notify_delivery(self, ctx: TransmissionContext, sent: Symbol, received: Symbol) -> None:
        for component in self.components:
            component.notify_delivery(ctx, sent, received)

    def reset(self) -> None:
        for component in self.components:
            component.reset()


@dataclass
class PhaseTargetedAdaptiveAdversary(Adversary):
    """A non-oblivious adversary that spends its budget on chosen phases.

    It watches the actual communication (so its budget tracks the realised
    communication complexity) and corrupts transmissions that occur in the
    listed phases, preferring early iterations.  This captures the classic
    adaptive attacks against the scheme: hitting the meeting-points hashes or
    the flag-passing bits, where a single corrupted bit has the largest
    downstream effect.
    """

    fraction: float = 0.0
    phases: Sequence[str] = ("meeting_points", "flag_passing")
    seed: int = 0
    max_iteration: Optional[int] = None
    name: str = "adaptive-phase-targeted"
    oblivious: bool = False
    may_insert: bool = False

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if sent is not None:
            self._budget.observe_transmission()
        if sent is None:
            return sent
        if ctx.phase not in self.phases:
            return sent
        if self.max_iteration is not None and ctx.iteration > self.max_iteration:
            return sent
        if not self._budget.can_spend():
            return sent
        self._budget.spend()
        return _corrupt_randomly(self._rng, sent)

    def corrupt_window(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        # Windows outside the targeted phases (or beyond the iteration cap)
        # only feed the budget's notion of realised communication.
        if ctx.phase not in self.phases or (
            self.max_iteration is not None and ctx.iteration > self.max_iteration
        ):
            return _pass_through_observing(self._budget, symbols)
        return super().corrupt_window(ctx, symbols)

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        if ctx.phase not in self.phases or (
            self.max_iteration is not None and ctx.iteration > self.max_iteration
        ):
            if present:
                self._budget.observe_transmissions(present.bit_count())
            return bits, present
        return super().corrupt_window_packed(ctx, bits, present, count)

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)


@dataclass
class RotatingLinkAdaptiveAdversary(Adversary):
    """A non-oblivious adversary that keeps moving its attack across links.

    Every time its budget allows another corruption it targets the next
    directed link in a round-robin order, corrupting the first transmitted
    symbol it sees there.  Spreading single errors across many links maximises
    the number of (iteration, link) pairs that need local correction, which is
    the stress case for the global flag-passing/rewind machinery.
    """

    links: Sequence[Tuple[int, int]] = ()
    fraction: float = 0.0
    seed: int = 0
    name: str = "adaptive-rotating-link"
    oblivious: bool = False
    may_insert: bool = False

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("RotatingLinkAdaptiveAdversary needs a non-empty link list")
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._cursor = 0

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if sent is not None:
            self._budget.observe_transmission()
        if sent is None:
            return sent
        if (ctx.sender, ctx.receiver) != tuple(self.links[self._cursor]):
            return sent
        if not self._budget.can_spend():
            return sent
        self._budget.spend()
        self._cursor = (self._cursor + 1) % len(self.links)
        return _corrupt_randomly(self._rng, sent)

    def corrupt_window(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        # The cursor only advances when a corruption lands on the cursor
        # link, so a window on any other link cannot become targeted
        # mid-window: bulk-observe it and pass it through.
        if ctx.link != tuple(self.links[self._cursor]):
            return _pass_through_observing(self._budget, symbols)
        return super().corrupt_window(ctx, symbols)

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        if ctx.link != tuple(self.links[self._cursor]):
            if present:
                self._budget.observe_transmissions(present.bit_count())
            return bits, present
        return super().corrupt_window_packed(ctx, bits, present, count)

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._cursor = 0


@dataclass
class EchoSpoofingAdversary(Adversary):
    """The synchronisation attack of BGMO17 adapted to our model.

    Whenever it can afford two corruptions it deletes a symbol travelling in
    one direction of the target link and inserts a spoofed symbol in the
    opposite direction within the same window, driving the two endpoints out
    of sync — the attack that makes insertion/deletion noise strictly harder
    than substitutions.  Non-oblivious (it reacts to observed traffic).
    """

    target: Tuple[int, int] = (0, 1)
    fraction: float = 0.0
    seed: int = 0
    name: str = "echo-spoofing"
    oblivious: bool = False
    may_insert: bool = True

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._pending_spoof = False

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        if sent is not None:
            self._budget.observe_transmission()
        forward = (ctx.sender, ctx.receiver) == tuple(self.target)
        backward = (ctx.receiver, ctx.sender) == tuple(self.target)
        if forward and sent is not None and self._budget.can_spend(2):
            self._budget.spend()
            self._pending_spoof = True
            return None  # deletion
        if backward and sent is None and self._pending_spoof:
            self._pending_spoof = False
            self._budget.spend()
            return self._rng.choice([0, 1])  # spoofed reply (insertion)
        return sent

    def corrupt_window(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        # Only the two directions of the target link are ever touched; every
        # other window just grows the observed communication.
        target = tuple(self.target)
        if ctx.link != target and (ctx.link[1], ctx.link[0]) != target:
            return _pass_through_observing(self._budget, symbols)
        return super().corrupt_window(ctx, symbols)

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        target = tuple(self.target)
        if ctx.link != target and (ctx.link[1], ctx.link[0]) != target:
            if present:
                self._budget.observe_transmissions(present.bit_count())
            return bits, present
        return super().corrupt_window_packed(ctx, bits, present, count)

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._budget = NoiseBudget(fraction=self.fraction)
        self._pending_spoof = False
