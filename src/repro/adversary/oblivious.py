"""Oblivious adversaries.

An oblivious adversary (paper §2.1) fixes its entire noise attack before the
protocol starts, independently of the parties' inputs and randomness.  The
paper's primary model is the **additive** adversary: the noise pattern is a
vector ``e`` indexed by (round, directed link) with entries in ``{0, 1, 2}``;
the symbol actually delivered is ``received = sent + e (mod 3)`` over the
alphabet ``{0, 1, *}``.  Remark 1 also discusses the stronger **fixing**
adversary, which pins the channel output of a corrupted slot to a
predetermined value; we implement both.

Because the pattern is indexed by absolute round numbers, an oblivious
adversary has no knowledge of what the slot carries — exactly the oblivious
guarantee the analysis of Section 4 relies on.

Concrete pattern generators (uniformly random slots, bursts on one link,
attacks on the randomness-exchange prefix, ...) live in
:mod:`repro.adversary.strategies`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.adversary.base import Adversary
from repro.network.channel import (
    Symbol,
    TransmissionContext,
    WindowContext,
    apply_additive_noise,
)

#: Key of one channel slot in an oblivious noise pattern.
SlotKey = Tuple[int, int, int]  # (round_index, sender, receiver)


def _index_pattern_by_link(pattern: Dict[SlotKey, object]) -> Dict[Tuple[int, int], Dict[int, object]]:
    """Group an oblivious pattern by directed link (round -> value).

    Built eagerly at construction time: the slot-addressed purity law forbids
    ``corruption_schedule`` (and the packed kernels that share its pattern)
    from writing any state, so lazy memoisation on first use is off the
    table.
    """
    by_link: Dict[Tuple[int, int], Dict[int, object]] = {}
    for (round_index, sender, receiver), value in pattern.items():
        by_link.setdefault((sender, receiver), {})[round_index] = value
    return by_link

#: Sentinel distinguishing "slot not in pattern" from a pattern value of
#: ``None`` (which the fixing adversary uses to force silence).
_MISSING = object()


def slot_key(ctx: TransmissionContext) -> SlotKey:
    return (ctx.round_index, ctx.sender, ctx.receiver)


@dataclass
class AdditiveObliviousAdversary(Adversary):
    """The additive oblivious adversary of §2.1.

    ``pattern`` maps slots to offsets in {1, 2}; absent slots are clean
    (offset 0).  The number of *intended* corruptions is ``len(pattern)``;
    note the paper's subtle point that an additive offset always changes the
    delivered symbol (offset 1 or 2 is never the identity on Z_3), so every
    pattern entry that is exercised becomes a real corruption.
    """

    pattern: Dict[SlotKey, int] = field(default_factory=dict)
    name: str = "oblivious-additive"
    oblivious: bool = True
    # The pattern is immutable and indexed by absolute (round, link): the
    # noise is a pure function of the slot coordinates and the sent symbol,
    # which is the slot-addressed contract verbatim.
    slot_addressed: bool = True

    def __post_init__(self) -> None:
        for key, offset in self.pattern.items():
            if offset not in (1, 2):
                raise ValueError(f"pattern offset for slot {key} must be 1 or 2, got {offset}")
        # Insertions only happen on slots the pattern touches.
        self.may_insert = bool(self.pattern)
        self._pattern_by_link = _index_pattern_by_link(self.pattern)

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        offset = self.pattern.get(slot_key(ctx), 0)
        if offset == 0:
            return sent
        return apply_additive_noise(sent, offset)

    def corruption_schedule(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        # Precompute the additive noise mask of this window from the pattern;
        # clean windows (the common case) pass through with no per-slot work.
        pattern = self.pattern
        if not pattern:
            return list(symbols)
        sender, receiver = ctx.link
        base = ctx.base_round
        mask = [pattern.get((base + offset, sender, receiver), 0) for offset in range(len(symbols))]
        if not any(mask):
            return list(symbols)
        return [
            sent if offset == 0 else apply_additive_noise(sent, offset)
            for sent, offset in zip(symbols, mask)
        ]

    corrupt_window = corruption_schedule

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        # The corruption mask of the window is generated in one pass over
        # this directed link's pattern entries (or over the window's slots,
        # whichever is smaller); clean links pass their planes through with
        # no per-slot work at all.
        per_round = self._pattern_by_link.get(ctx.link)
        if not per_round:
            return bits, present
        base = ctx.base_round
        if count <= len(per_round):
            hits = [
                (slot, per_round[base + slot])
                for slot in range(count)
                if base + slot in per_round
            ]
        else:
            hits = [
                (round_index - base, offset)
                for round_index, offset in per_round.items()
                if 0 <= round_index - base < count
            ]
        for slot, offset in hits:
            mask = 1 << slot
            sent = ((bits >> slot) & 1) if present & mask else None
            received = apply_additive_noise(sent, offset)
            if received is None:
                bits &= ~mask
                present &= ~mask
            else:
                present |= mask
                if received:
                    bits |= mask
                else:
                    bits &= ~mask
        return bits, present

    def planned_corruptions(self) -> int:
        return len(self.pattern)

    def reset(self) -> None:  # the pattern is immutable state; nothing to do
        return None


@dataclass
class FixingObliviousAdversary(Adversary):
    """The "fixing" oblivious adversary of Remark 1.

    ``pattern`` maps slots to the symbol the receiver will observe (0, 1 or
    ``None`` for "force silence").  A fixed slot only counts as a corruption
    if it actually differs from what was sent; this matches the remark's
    discussion that fixing the channel to the honest value is not an error.
    """

    pattern: Dict[SlotKey, Symbol] = field(default_factory=dict)
    name: str = "oblivious-fixing"
    oblivious: bool = True
    # Like the additive adversary: an immutable pattern keyed on absolute
    # slot coordinates, pure in (round, link, symbol).
    slot_addressed: bool = True

    def __post_init__(self) -> None:
        for key, value in self.pattern.items():
            if value not in (0, 1, None):
                raise ValueError(f"pattern value for slot {key} must be 0, 1 or None")
        self.may_insert = any(value is not None for value in self.pattern.values())
        self._pattern_by_link = _index_pattern_by_link(self.pattern)

    def corrupt(self, ctx: TransmissionContext, sent: Symbol) -> Symbol:
        key = slot_key(ctx)
        if key in self.pattern:
            return self.pattern[key]
        return sent

    def corruption_schedule(self, ctx: WindowContext, symbols: Sequence[Symbol]) -> List[Symbol]:
        # ``None`` is a legal pattern value (force silence), so membership is
        # resolved with a private sentinel rather than ``dict.get``'s default.
        pattern = self.pattern
        if not pattern:
            return list(symbols)
        sender, receiver = ctx.link
        base = ctx.base_round
        missing = _MISSING
        out = [
            pattern.get((base + offset, sender, receiver), missing)
            for offset in range(len(symbols))
        ]
        return [
            sent if fixed is missing else fixed
            for sent, fixed in zip(symbols, out)
        ]

    corrupt_window = corruption_schedule

    def corrupt_window_packed(
        self, ctx: WindowContext, bits: int, present: int, count: int
    ) -> Tuple[int, int]:
        # One pass per directed link, like the additive kernel: only the
        # window's fixed slots are rewritten, everything else passes through.
        per_round = self._pattern_by_link.get(ctx.link)
        if not per_round:
            return bits, present
        base = ctx.base_round
        if count <= len(per_round):
            hits = [
                (slot, per_round[base + slot])
                for slot in range(count)
                if base + slot in per_round
            ]
        else:
            hits = [
                (round_index - base, fixed)
                for round_index, fixed in per_round.items()
                if 0 <= round_index - base < count
            ]
        for slot, fixed in hits:
            mask = 1 << slot
            if fixed is None:
                bits &= ~mask
                present &= ~mask
            else:
                present |= mask
                if fixed:
                    bits |= mask
                else:
                    bits &= ~mask
        return bits, present

    def planned_corruptions(self) -> int:
        return len(self.pattern)

    def reset(self) -> None:
        return None
