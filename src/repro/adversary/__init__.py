"""Noise models: oblivious and non-oblivious adversaries plus budgeting."""

from repro.adversary.base import Adversary, NoiseBudget, NoiselessAdversary
from repro.adversary.contract import ContractReport, ContractViolation, check_contract
from repro.adversary.oblivious import AdditiveObliviousAdversary, FixingObliviousAdversary
from repro.adversary.strategies import (
    BurstAdversary,
    CompositeAdversary,
    DeletionAdversary,
    EchoSpoofingAdversary,
    LinkTargetedAdversary,
    PhaseTargetedAdaptiveAdversary,
    RandomNoiseAdversary,
    RotatingLinkAdaptiveAdversary,
)

__all__ = [
    "Adversary",
    "ContractReport",
    "ContractViolation",
    "NoiseBudget",
    "NoiselessAdversary",
    "check_contract",
    "AdditiveObliviousAdversary",
    "FixingObliviousAdversary",
    "BurstAdversary",
    "CompositeAdversary",
    "DeletionAdversary",
    "EchoSpoofingAdversary",
    "LinkTargetedAdversary",
    "PhaseTargetedAdaptiveAdversary",
    "RandomNoiseAdversary",
    "RotatingLinkAdaptiveAdversary",
]
