"""Per-link hash-seed management.

Every meeting-points exchange on a link needs fresh hash seeds that both
endpoints agree on.  The paper offers two ways to obtain them:

* a **common random string** (CRS) shared by all parties and unknown to the
  adversary (Algorithm 1 / Theorem 1.1, and Algorithm C), and
* a per-link **randomness exchange** (Algorithm 5): one endpoint samples a
  short uniform seed, sends it through an error-correcting code, and both
  endpoints expand their (hopefully equal) seeds into a long δ-biased string
  (Algorithm A / B).

``SeedSource`` abstracts "give me the seed bits for iteration *i* and purpose
*p* on this link"; the engine instantiates one source per (party, incident
link).  Two endpoints produce identical bits iff they hold identical
underlying randomness, which is exactly the property the analysis needs: a
corrupted randomness exchange desynchronises every subsequent hash comparison
on that link (the ``E \\ E'`` case of Section 5).

Two access paths exist:

* the **per-call reference path**: :meth:`SeedSource.seed_for` derives one
  (iteration, purpose) slot at a time — this is the original (pre-fast-path)
  derivation and its bit streams are frozen;
* the **batched fast path**: :meth:`SeedSource.seeds_for_iteration` derives
  every slot of an interned :class:`SeedLayout` in one expansion pass.  The
  native overrides (one incremental label hash per iteration for the CRS
  source, one contiguous δ-biased read per iteration for the exchanged
  source) produce *exactly* the same bits as the per-call path — pinned by
  ``tests/test_hashing_equivalence.py``.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hashing.small_bias import SmallBiasGenerator
from repro.utils.rng import FORK_MULTIPLIER, FORK_SEED_MASK, fork, make_rng, random_bitstring_int

#: Purposes for which per-iteration seeds are drawn, with fixed indices so
#: both endpoints carve identical ranges out of the expanded string.
SEED_PURPOSES: Tuple[str, ...] = ("mp_counter", "mp_prefix", "extra")


@dataclass(frozen=True)
class SeedLayout:
    """How many seed bits each :data:`SEED_PURPOSES` slot needs per iteration.

    A layout is the unit of the batched seed contract: handing the same
    (interned) layout to :meth:`SeedSource.seeds_for_iteration` on both
    endpoints of a link guarantees they carve identical slots.  A length of
    zero marks a purpose the caller does not use; no bits are derived for it.
    """

    lengths: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lengths) != len(SEED_PURPOSES):
            raise ValueError(
                f"layout must give one length per purpose {SEED_PURPOSES}, got {self.lengths}"
            )
        if any(length < 0 for length in self.lengths):
            raise ValueError("seed lengths must be non-negative")


_LAYOUT_CACHE: Dict[Tuple[int, ...], SeedLayout] = {}


def seed_layout(**lengths_by_purpose: int) -> SeedLayout:
    """Build (and intern) a :class:`SeedLayout` from per-purpose bit lengths.

    >>> seed_layout(mp_counter=256, mp_prefix=1024) is seed_layout(mp_prefix=1024, mp_counter=256)
    True
    """
    unknown = set(lengths_by_purpose) - set(SEED_PURPOSES)
    if unknown:
        raise ValueError(f"unknown seed purposes {sorted(unknown)}; known: {SEED_PURPOSES}")
    lengths = tuple(lengths_by_purpose.get(purpose, 0) for purpose in SEED_PURPOSES)
    layout = _LAYOUT_CACHE.get(lengths)
    if layout is None:
        layout = _LAYOUT_CACHE[lengths] = SeedLayout(lengths)
    return layout


class SeedSource(abc.ABC):
    """Produces per-(iteration, purpose) hash seeds for one link."""

    @abc.abstractmethod
    def seed_for(self, iteration: int, purpose: str, length_bits: int) -> int:
        """Return ``length_bits`` seed bits (packed) for the given slot."""

    def seeds_for_iteration(self, iteration: int, layout: SeedLayout) -> Tuple[Optional[int], ...]:
        """All of an iteration's seed slots in one call.

        Returns one packed integer per :data:`SEED_PURPOSES` entry (``None``
        for slots the layout leaves empty).  This reference implementation
        simply loops over :meth:`seed_for`; subclasses override it with a
        single-expansion-pass derivation that is bit-identical.
        """
        return tuple(
            self.seed_for(iteration, purpose, length) if length else None
            for purpose, length in zip(SEED_PURPOSES, layout.lengths)
        )

    @staticmethod
    def _purpose_index(purpose: str) -> int:
        try:
            return SEED_PURPOSES.index(purpose)
        except ValueError as exc:
            raise ValueError(f"unknown seed purpose {purpose!r}; known: {SEED_PURPOSES}") from exc


@dataclass
class CrsSeedSource(SeedSource):
    """Seeds derived from a common random string.

    ``master_seed`` models the CRS; both endpoints of a link construct the
    source with the same master seed and the same canonical link, so they
    derive identical uniform bits.  The adversary never gets access to the
    object, which models obliviousness to the CRS.

    The per-call path forks a child generator per (iteration, purpose) label;
    the batched path hashes the shared ``crs|link|iteration|`` label prefix
    once per iteration and extends it per purpose with cheap incremental
    updates — the resulting child seeds (and therefore the bits) are exactly
    the per-call ones, because SHA-256 of the concatenated label does not
    care how the label was chunked.
    """

    master_seed: int
    link: Tuple[int, int]
    #: Cache-miss slot derivations performed by this source (``repro.obs``).
    derivations: int = 0
    _cache: Dict[Tuple[int, str, int], int] = field(default_factory=dict)
    _batch_cache: Dict[Tuple[int, SeedLayout], Tuple[Optional[int], ...]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        # Incremental SHA-256 state of the constant label prefix; copied (not
        # recomputed) for every iteration's derivation.
        self._link_prefix_hash = hashlib.sha256(f"crs|{self.link}|".encode("utf-8"))

    def seed_for(self, iteration: int, purpose: str, length_bits: int) -> int:
        self._purpose_index(purpose)
        key = (iteration, purpose, length_bits)
        if key not in self._cache:
            rng = fork(self.master_seed, f"crs|{self.link}|{iteration}|{purpose}")
            self._cache[key] = random_bitstring_int(rng, length_bits)
            self.derivations += 1
        return self._cache[key]

    def seeds_for_iteration(self, iteration: int, layout: SeedLayout) -> Tuple[Optional[int], ...]:
        batch_key = (iteration, layout)
        cached = self._batch_cache.get(batch_key)
        if cached is not None:
            return cached
        iteration_hash = self._link_prefix_hash.copy()
        iteration_hash.update(f"{iteration}|".encode("utf-8"))
        master = self.master_seed
        cache = self._cache
        seeds: List[Optional[int]] = []
        for purpose, length in zip(SEED_PURPOSES, layout.lengths):
            if not length:
                seeds.append(None)
                continue
            key = (iteration, purpose, length)
            value = cache.get(key)
            if value is None:
                purpose_hash = iteration_hash.copy()
                purpose_hash.update(purpose.encode("utf-8"))
                label_hash = int.from_bytes(purpose_hash.digest()[:8], "big")
                child_seed = (master * FORK_MULTIPLIER + label_hash) & FORK_SEED_MASK
                value = cache[key] = random_bitstring_int(make_rng(child_seed), length)
                self.derivations += 1
            seeds.append(value)
        result = tuple(seeds)
        self._batch_cache[batch_key] = result
        return result


@dataclass
class ExchangedSeedSource(SeedSource):
    """Seeds carved out of a δ-biased string expanded from a short link seed.

    ``link_seed`` is the (decoded) short seed this endpoint holds after the
    randomness exchange; if the exchange was corrupted the two endpoints hold
    different seeds and their hash comparisons will keep failing, which is the
    behaviour Section 5 accounts for.

    ``slot_capacity_bits`` is the fixed budget of δ-biased bits reserved per
    (iteration, purpose) slot; the same deterministic layout is used by both
    endpoints, so no coordination is needed.

    The batched path reads all of an iteration's slots in one sequential pass
    over the δ-biased string (:meth:`SmallBiasGenerator.packed_slots`) —
    identical bits to per-slot reads because the slot offsets are the same
    deterministic function of (iteration, purpose) on both paths.
    """

    link_seed: int
    field_degree: int = 64
    slot_capacity_bits: int = 4096
    #: ``False`` expands the δ-biased string through the original per-bit
    #: field-multiplication loop (the pre-fast-path reference); ``True`` uses
    #: table-driven stepping.  Bit-identical either way.
    table_expansion: bool = True
    #: Cache-miss slot derivations performed by this source (``repro.obs``).
    derivations: int = 0
    _generator: SmallBiasGenerator = field(init=False)
    _cache: Dict[Tuple[int, str, int], int] = field(default_factory=dict)
    _batch_cache: Dict[Tuple[int, SeedLayout], Tuple[Optional[int], ...]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        self._generator = SmallBiasGenerator(
            seed_bits=self.link_seed,
            field_degree=self.field_degree,
            table_stepping=self.table_expansion,
        )

    def share_generator_with(self, other: "ExchangedSeedSource") -> None:
        """Share the expansion machinery (and derived slots) with a sibling.

        The two endpoints of a link whose randomness exchange succeeded hold
        the same ``link_seed`` and therefore expand the same δ-biased string;
        sharing the generator lets them share the lazily-built multiplication
        tables, and sharing the slot caches means each (iteration, purpose)
        slot is expanded once per link instead of once per endpoint.  Only
        valid for equal seeds (the derived values are identical by
        construction, so aliasing the caches is observationally invisible).
        """
        if (other.link_seed, other.field_degree) != (self.link_seed, self.field_degree):
            raise ValueError("generator sharing requires identical link seeds and field degrees")
        if (other.slot_capacity_bits, other.table_expansion) != (
            self.slot_capacity_bits,
            self.table_expansion,
        ):
            raise ValueError("generator sharing requires identical slot layouts and expansion paths")
        self._generator = other._generator
        self._cache = other._cache
        self._batch_cache = other._batch_cache

    def _slot_offset(self, iteration: int, purpose_index: int) -> int:
        return (iteration * len(SEED_PURPOSES) + purpose_index) * self.slot_capacity_bits

    def _check_length(self, length_bits: int) -> None:
        if length_bits > self.slot_capacity_bits:
            raise ValueError(
                f"requested {length_bits} seed bits but each slot only holds "
                f"{self.slot_capacity_bits}; increase slot_capacity_bits"
            )

    def seed_for(self, iteration: int, purpose: str, length_bits: int) -> int:
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        self._check_length(length_bits)
        purpose_index = self._purpose_index(purpose)
        key = (iteration, purpose, length_bits)
        if key not in self._cache:
            offset = self._slot_offset(iteration, purpose_index)
            self._cache[key] = self._generator.packed_bits(offset, length_bits)
            self.derivations += 1
        return self._cache[key]

    def seeds_for_iteration(self, iteration: int, layout: SeedLayout) -> Tuple[Optional[int], ...]:
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        batch_key = (iteration, layout)
        cached = self._batch_cache.get(batch_key)
        if cached is not None:
            return cached
        slots: List[Tuple[int, int]] = []
        occupied: List[Tuple[int, int]] = []  # (purpose_index, length) of non-empty slots
        for purpose_index, length in enumerate(layout.lengths):
            if not length:
                continue
            self._check_length(length)
            slots.append((self._slot_offset(iteration, purpose_index), length))
            occupied.append((purpose_index, length))
        values = self._generator.packed_slots(slots)
        self.derivations += len(occupied)
        seeds: List[Optional[int]] = [None] * len(SEED_PURPOSES)
        for (purpose_index, length), value in zip(occupied, values):
            seeds[purpose_index] = value
            self._cache[(iteration, SEED_PURPOSES[purpose_index], length)] = value
        result = tuple(seeds)
        self._batch_cache[batch_key] = result
        return result
