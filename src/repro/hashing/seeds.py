"""Per-link hash-seed management.

Every meeting-points exchange on a link needs fresh hash seeds that both
endpoints agree on.  The paper offers two ways to obtain them:

* a **common random string** (CRS) shared by all parties and unknown to the
  adversary (Algorithm 1 / Theorem 1.1, and Algorithm C), and
* a per-link **randomness exchange** (Algorithm 5): one endpoint samples a
  short uniform seed, sends it through an error-correcting code, and both
  endpoints expand their (hopefully equal) seeds into a long δ-biased string
  (Algorithm A / B).

``SeedSource`` abstracts "give me the seed bits for iteration *i* and purpose
*p* on this link"; the engine instantiates one source per (party, incident
link).  Two endpoints produce identical bits iff they hold identical
underlying randomness, which is exactly the property the analysis needs: a
corrupted randomness exchange desynchronises every subsequent hash comparison
on that link (the ``E \\ E'`` case of Section 5).

Since the 2.0 API break both concrete sources share **one expansion
contract** (:class:`SlotAddressedSeedSource`): seeds are fixed-capacity slots
carved out of a δ-biased string expanded by
:meth:`~repro.hashing.small_bias.SmallBiasGenerator.packed_slots`, with the
slot of ``(iteration, purpose)`` at a deterministic, layout-independent
offset.  :class:`ExchangedSeedSource` expands the seed it received over the
wire; :class:`CrsSeedSource` derives its per-link generator seed from the CRS
and the canonical link label, then expands it exactly the same way.  The
previous ``CrsSeedSource`` (per-purpose ``random.Random`` re-seeding through
``utils.rng.fork``) is retired — a **documented behaviour break**: CRS-scheme
bit streams and trial fingerprints differ from every pre-2.0 version, which
the package major version and the runtime cache/key schema bumps gate.

Two access paths exist:

* the **batched fast path**: :meth:`SeedSource.seeds_for_iteration` — the
  contract's one required method — derives every slot of an interned
  :class:`SeedLayout` in one expansion pass;
* the **per-call reference path**: :meth:`SeedSource.seed_for` derives one
  (iteration, purpose) slot at a time.  The concrete sources keep a per-slot
  override whose bit streams the equivalence suite pins against the batched
  path (``tests/test_hashing_equivalence.py``).
"""

from __future__ import annotations

import abc
import hashlib
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hashing.small_bias import SmallBiasGenerator

#: Purposes for which per-iteration seeds are drawn, with fixed indices so
#: both endpoints carve identical ranges out of the expanded string.
SEED_PURPOSES: Tuple[str, ...] = ("mp_counter", "mp_prefix", "extra")


@dataclass(frozen=True)
class SeedLayout:
    """How many seed bits each :data:`SEED_PURPOSES` slot needs per iteration.

    A layout is the unit of the batched seed contract: handing the same
    (interned) layout to :meth:`SeedSource.seeds_for_iteration` on both
    endpoints of a link guarantees they carve identical slots.  A length of
    zero marks a purpose the caller does not use; no bits are derived for it.
    """

    lengths: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lengths) != len(SEED_PURPOSES):
            raise ValueError(
                f"layout must give one length per purpose {SEED_PURPOSES}, got {self.lengths}"
            )
        if any(length < 0 for length in self.lengths):
            raise ValueError("seed lengths must be non-negative")


_LAYOUT_CACHE: Dict[Tuple[int, ...], SeedLayout] = {}


def seed_layout(**lengths_by_purpose: int) -> SeedLayout:
    """Build (and intern) a :class:`SeedLayout` from per-purpose bit lengths.

    >>> seed_layout(mp_counter=256, mp_prefix=1024) is seed_layout(mp_prefix=1024, mp_counter=256)
    True
    """
    unknown = set(lengths_by_purpose) - set(SEED_PURPOSES)
    if unknown:
        raise ValueError(f"unknown seed purposes {sorted(unknown)}; known: {SEED_PURPOSES}")
    lengths = tuple(lengths_by_purpose.get(purpose, 0) for purpose in SEED_PURPOSES)
    layout = _LAYOUT_CACHE.get(lengths)
    if layout is None:
        layout = _LAYOUT_CACHE[lengths] = SeedLayout(lengths)
    return layout


class SeedSource(abc.ABC):
    """Produces per-(iteration, purpose) hash seeds for one link.

    The unified expansion contract has one required method:
    :meth:`seeds_for_iteration`.  Everything else (:meth:`seed_for`, the
    deprecated :meth:`fork`) has a default implementation in terms of it.
    """

    @abc.abstractmethod
    def seeds_for_iteration(self, iteration: int, layout: SeedLayout) -> Tuple[Optional[int], ...]:
        """All of an iteration's seed slots in one call.

        Returns one packed integer per :data:`SEED_PURPOSES` entry (``None``
        for slots the layout leaves empty).  The (callable) default body loops
        over :meth:`seed_for`; the concrete sources override it with a
        single-expansion-pass derivation that is bit-identical.
        """
        return tuple(
            self.seed_for(iteration, purpose, length) if length else None
            for purpose, length in zip(SEED_PURPOSES, layout.lengths)
        )

    def seed_for(self, iteration: int, purpose: str, length_bits: int) -> int:
        """Return ``length_bits`` seed bits (packed) for one slot.

        Default: carve the single requested slot out of
        :meth:`seeds_for_iteration`.  The concrete sources override this with
        the frozen per-slot reference derivation.
        """
        index = self._purpose_index(purpose)
        seeds = self.seeds_for_iteration(iteration, seed_layout(**{purpose: length_bits}))
        value = seeds[index]
        assert value is not None  # non-zero length requested
        return value

    def fork(self, iteration: int, purpose: str, length_bits: int) -> int:
        """Deprecated pre-2.0 spelling of :meth:`seed_for`.

        Kept as a thin compatibility wrapper for one release cycle; see the
        migration note in ``docs/architecture.md``.
        """
        warnings.warn(
            "SeedSource.fork() is deprecated; call seed_for() (or the batched "
            "seeds_for_iteration()) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.seed_for(iteration, purpose, length_bits)

    @staticmethod
    def _purpose_index(purpose: str) -> int:
        try:
            return SEED_PURPOSES.index(purpose)
        except ValueError as exc:
            raise ValueError(f"unknown seed purpose {purpose!r}; known: {SEED_PURPOSES}") from exc


class SlotAddressedSeedSource(SeedSource):
    """Shared machinery of the unified expansion contract.

    Concrete subclasses provide (in ``__post_init__``) a
    :class:`SmallBiasGenerator` as ``_generator`` plus the bookkeeping
    attributes; this class implements the deterministic slot addressing —
    ``(iteration * len(SEED_PURPOSES) + purpose_index) * slot_capacity_bits``
    — and the two access paths on top of it.  The addressing depends only on
    (iteration, purpose), never on the layout, so the batched and per-call
    paths read identical bits by construction.
    """

    # Provided by the dataclass subclasses.
    slot_capacity_bits: int
    derivations: int
    _generator: SmallBiasGenerator
    _cache: Dict[Tuple[int, str, int], int]
    _batch_cache: Dict[Tuple[int, SeedLayout], Tuple[Optional[int], ...]]

    def _slot_offset(self, iteration: int, purpose_index: int) -> int:
        return (iteration * len(SEED_PURPOSES) + purpose_index) * self.slot_capacity_bits

    def _check_length(self, length_bits: int) -> None:
        if length_bits > self.slot_capacity_bits:
            raise ValueError(
                f"requested {length_bits} seed bits but each slot only holds "
                f"{self.slot_capacity_bits}; increase slot_capacity_bits"
            )

    def seed_for(self, iteration: int, purpose: str, length_bits: int) -> int:
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        self._check_length(length_bits)
        purpose_index = self._purpose_index(purpose)
        key = (iteration, purpose, length_bits)
        if key not in self._cache:
            offset = self._slot_offset(iteration, purpose_index)
            self._cache[key] = self._generator.packed_bits(offset, length_bits)
            self.derivations += 1
        return self._cache[key]

    def seeds_for_iteration(self, iteration: int, layout: SeedLayout) -> Tuple[Optional[int], ...]:
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        batch_key = (iteration, layout)
        cached = self._batch_cache.get(batch_key)
        if cached is not None:
            return cached
        slots: List[Tuple[int, int]] = []
        occupied: List[Tuple[int, int]] = []  # (purpose_index, length) of non-empty slots
        for purpose_index, length in enumerate(layout.lengths):
            if not length:
                continue
            self._check_length(length)
            slots.append((self._slot_offset(iteration, purpose_index), length))
            occupied.append((purpose_index, length))
        values = self._generator.packed_slots(slots)
        self.derivations += len(occupied)
        seeds: List[Optional[int]] = [None] * len(SEED_PURPOSES)
        for (purpose_index, length), value in zip(occupied, values):
            seeds[purpose_index] = value
            self._cache[(iteration, SEED_PURPOSES[purpose_index], length)] = value
        result = tuple(seeds)
        self._batch_cache[batch_key] = result
        return result


@dataclass
class CrsSeedSource(SlotAddressedSeedSource):
    """Seeds carved out of a δ-biased string derived from a common random string.

    ``master_seed`` models the CRS; both endpoints of a link construct the
    source with the same master seed and the same canonical link, so they
    derive the identical per-link generator seed (a SHA-256 digest of the
    CRS and the link label) and therefore expand the identical δ-biased
    string.  The adversary never gets access to the object, which models
    obliviousness to the CRS.

    Expansion and slot addressing are exactly those of
    :class:`ExchangedSeedSource` (the unified contract): one
    :meth:`~repro.hashing.small_bias.SmallBiasGenerator.packed_slots` pass
    per iteration.  Because both directions of a link derive the same string,
    the engine shares a single instance per undirected edge.
    """

    master_seed: int
    link: Tuple[int, int]
    field_degree: int = 64
    slot_capacity_bits: int = 4096
    #: ``False`` expands the δ-biased string through the original per-bit
    #: field-multiplication loop (the expansion reference); ``True`` uses the
    #: LFSR stream fast path.  Bit-identical either way.
    table_expansion: bool = True
    #: Cache-miss slot derivations performed by this source (``repro.obs``).
    derivations: int = 0
    _generator: SmallBiasGenerator = field(init=False)
    _cache: Dict[Tuple[int, str, int], int] = field(default_factory=dict)
    _batch_cache: Dict[Tuple[int, SeedLayout], Tuple[Optional[int], ...]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        label = f"crs|{self.master_seed}|{self.link}|link-seed".encode("utf-8")
        digest = hashlib.sha256(label).digest()
        link_seed = int.from_bytes(digest, "little") & ((1 << (2 * self.field_degree)) - 1)
        self._generator = SmallBiasGenerator(
            seed_bits=link_seed,
            field_degree=self.field_degree,
            table_stepping=self.table_expansion,
        )


@dataclass
class ExchangedSeedSource(SlotAddressedSeedSource):
    """Seeds carved out of a δ-biased string expanded from a short link seed.

    ``link_seed`` is the (decoded) short seed this endpoint holds after the
    randomness exchange; if the exchange was corrupted the two endpoints hold
    different seeds and their hash comparisons will keep failing, which is the
    behaviour Section 5 accounts for.

    ``slot_capacity_bits`` is the fixed budget of δ-biased bits reserved per
    (iteration, purpose) slot; the same deterministic layout is used by both
    endpoints, so no coordination is needed.

    The batched path reads all of an iteration's slots in one sequential pass
    over the δ-biased string (:meth:`SmallBiasGenerator.packed_slots`) —
    identical bits to per-slot reads because the slot offsets are the same
    deterministic function of (iteration, purpose) on both paths.
    """

    link_seed: int
    field_degree: int = 64
    slot_capacity_bits: int = 4096
    #: ``False`` expands the δ-biased string through the original per-bit
    #: field-multiplication loop (the pre-fast-path reference); ``True`` uses
    #: the LFSR stream fast path.  Bit-identical either way.
    table_expansion: bool = True
    #: Cache-miss slot derivations performed by this source (``repro.obs``).
    derivations: int = 0
    _generator: SmallBiasGenerator = field(init=False)
    _cache: Dict[Tuple[int, str, int], int] = field(default_factory=dict)
    _batch_cache: Dict[Tuple[int, SeedLayout], Tuple[Optional[int], ...]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        self._generator = SmallBiasGenerator(
            seed_bits=self.link_seed,
            field_degree=self.field_degree,
            table_stepping=self.table_expansion,
        )

    def share_generator_with(self, other: "ExchangedSeedSource") -> None:
        """Share the expansion machinery (and derived slots) with a sibling.

        The two endpoints of a link whose randomness exchange succeeded hold
        the same ``link_seed`` and therefore expand the same δ-biased string;
        sharing the generator lets them share the lazily-built stream cache,
        and sharing the slot caches means each (iteration, purpose) slot is
        expanded once per link instead of once per endpoint.  Only valid for
        equal seeds (the derived values are identical by construction, so
        aliasing the caches is observationally invisible).
        """
        if (other.link_seed, other.field_degree) != (self.link_seed, self.field_degree):
            raise ValueError("generator sharing requires identical link seeds and field degrees")
        if (other.slot_capacity_bits, other.table_expansion) != (
            self.slot_capacity_bits,
            self.table_expansion,
        ):
            raise ValueError("generator sharing requires identical slot layouts and expansion paths")
        self._generator = other._generator
        self._cache = other._cache
        self._batch_cache = other._batch_cache
