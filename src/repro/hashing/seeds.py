"""Per-link hash-seed management.

Every meeting-points exchange on a link needs fresh hash seeds that both
endpoints agree on.  The paper offers two ways to obtain them:

* a **common random string** (CRS) shared by all parties and unknown to the
  adversary (Algorithm 1 / Theorem 1.1, and Algorithm C), and
* a per-link **randomness exchange** (Algorithm 5): one endpoint samples a
  short uniform seed, sends it through an error-correcting code, and both
  endpoints expand their (hopefully equal) seeds into a long δ-biased string
  (Algorithm A / B).

``SeedSource`` abstracts "give me the seed bits for iteration *i* and purpose
*p* on this link"; the engine instantiates one source per (party, incident
link).  Two endpoints produce identical bits iff they hold identical
underlying randomness, which is exactly the property the analysis needs: a
corrupted randomness exchange desynchronises every subsequent hash comparison
on that link (the ``E \\ E'`` case of Section 5).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.hashing.small_bias import SmallBiasGenerator
from repro.utils.rng import fork, random_bitstring_int

#: Purposes for which per-iteration seeds are drawn, with fixed indices so
#: both endpoints carve identical ranges out of the expanded string.
SEED_PURPOSES: Tuple[str, ...] = ("mp_counter", "mp_prefix", "extra")


class SeedSource(abc.ABC):
    """Produces per-(iteration, purpose) hash seeds for one link."""

    @abc.abstractmethod
    def seed_for(self, iteration: int, purpose: str, length_bits: int) -> int:
        """Return ``length_bits`` seed bits (packed) for the given slot."""

    @staticmethod
    def _purpose_index(purpose: str) -> int:
        try:
            return SEED_PURPOSES.index(purpose)
        except ValueError as exc:
            raise ValueError(f"unknown seed purpose {purpose!r}; known: {SEED_PURPOSES}") from exc


@dataclass
class CrsSeedSource(SeedSource):
    """Seeds derived from a common random string.

    ``master_seed`` models the CRS; both endpoints of a link construct the
    source with the same master seed and the same canonical link, so they
    derive identical uniform bits.  The adversary never gets access to the
    object, which models obliviousness to the CRS.
    """

    master_seed: int
    link: Tuple[int, int]
    _cache: Dict[Tuple[int, str, int], int] = field(default_factory=dict)

    def seed_for(self, iteration: int, purpose: str, length_bits: int) -> int:
        self._purpose_index(purpose)
        key = (iteration, purpose, length_bits)
        if key not in self._cache:
            rng = fork(self.master_seed, f"crs|{self.link}|{iteration}|{purpose}")
            self._cache[key] = random_bitstring_int(rng, length_bits)
        return self._cache[key]


@dataclass
class ExchangedSeedSource(SeedSource):
    """Seeds carved out of a δ-biased string expanded from a short link seed.

    ``link_seed`` is the (decoded) short seed this endpoint holds after the
    randomness exchange; if the exchange was corrupted the two endpoints hold
    different seeds and their hash comparisons will keep failing, which is the
    behaviour Section 5 accounts for.

    ``slot_capacity_bits`` is the fixed budget of δ-biased bits reserved per
    (iteration, purpose) slot; the same deterministic layout is used by both
    endpoints, so no coordination is needed.
    """

    link_seed: int
    field_degree: int = 64
    slot_capacity_bits: int = 4096
    _generator: SmallBiasGenerator = field(init=False)
    _cache: Dict[Tuple[int, str, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._generator = SmallBiasGenerator(seed_bits=self.link_seed, field_degree=self.field_degree)

    def seed_for(self, iteration: int, purpose: str, length_bits: int) -> int:
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        if length_bits > self.slot_capacity_bits:
            raise ValueError(
                f"requested {length_bits} seed bits but each slot only holds "
                f"{self.slot_capacity_bits}; increase slot_capacity_bits"
            )
        purpose_index = self._purpose_index(purpose)
        key = (iteration, purpose, length_bits)
        if key not in self._cache:
            offset = (iteration * len(SEED_PURPOSES) + purpose_index) * self.slot_capacity_bits
            self._cache[key] = self._generator.packed_bits(offset, length_bits)
        return self._cache[key]
