"""δ-biased (small-bias) pseudorandom strings.

Algorithm A/B replace the long common random string with a short seed that
both endpoints of a link expand into a δ-biased string (paper §2.3,
Lemma 2.5, citing Naor–Naor and Alon–Goldreich–Håstad–Peres).  We implement
the AGHP *powering construction*:

    seed = (x, y) with x, y ∈ GF(2^r);   bit_i = ⟨x, y^i⟩

where ⟨·,·⟩ is the GF(2) inner product of coefficient vectors.  The bias of
the first ℓ bits of this generator is at most ℓ / 2^r, so choosing
``r = Θ(log(ℓ/δ))`` gives a δ-biased distribution from a 2r-bit seed —
matching the seed length ``Θ(log(1/δ) + log ℓ)`` of Lemma 2.5.

``SmallBiasGenerator`` supports random access (``bit(i)``) and efficient
sequential block generation (``packed_bits`` / ``packed_slots``), which is
what the seed manager uses to carve per-iteration hash seeds out of the
expanded string.  Sequential generation materialises the expanded string as
one packed integer grown by an LFSR doubling step: ``s_i = ⟨x, y^i⟩`` is a
linear functional of the state orbit of the (linear) map ``· y``, so the
stream satisfies a linear recurrence of order at most ``r``.  The generator
bootstraps ``2r`` bits with the reference loop, recovers the minimal
connection polynomial with a packed Berlekamp–Massey pass, and then roughly
doubles the cached stream per extension with whole-stream shift/XOR kernels —
no per-bit Python work at all.  The per-bit reference path (:meth:`bits`)
keeps the plain field-multiplication loop, and the equivalence suite pins the
two bit-identical.

The expanded stream is a pure function of the seed ``(x, y)`` and the field
degree, so the fast path shares one expansion state per distinct seed across
*all* generator instances in the process (a bounded module-level cache).
Repeated trials over the same CRS — a parameter sweep, a benchmark rerun —
bootstrap and extend each per-link stream once instead of once per
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hashing.gf2m import GF2m


def _poly_mulmod(a: int, b: int, modulus: int, degree: int) -> int:
    """``a · b mod modulus`` over GF(2)[x]; ``modulus`` is monic of ``degree``."""
    product = 0
    while a:
        low = a & -a
        product ^= b << (low.bit_length() - 1)
        a ^= low
    top = product.bit_length() - 1
    while top >= degree:
        product ^= modulus << (top - degree)
        top = product.bit_length() - 1
    return product


def _poly_powmod(base: int, exponent: int, modulus: int, degree: int) -> int:
    """``base ** exponent mod modulus`` over GF(2)[x] by square and multiply."""
    result = 1
    base = _poly_mulmod(base, 1, modulus, degree)  # reduce in case deg(base) >= degree
    while exponent:
        if exponent & 1:
            result = _poly_mulmod(result, base, modulus, degree)
        base = _poly_mulmod(base, base, modulus, degree)
        exponent >>= 1
    return result


#: Block size of the chunked stream-extension phase.  Small enough that the
#: XOR base stays cache-friendly, large enough that the one-time
#: ``x^chunk mod conn`` exponentiation amortises over a handful of blocks.
_EXTENSION_CHUNK_BITS = 1 << 15


class _StreamState:
    """Mutable LFSR expansion state for one ``(x, y, field_degree)`` seed.

    ``stream`` holds the first ``length`` expanded bits packed LSB-first;
    ``lfsr`` is ``None`` until bootstrapped, then the
    ``(shift, conn, conn_degree, inv_step, jump)`` tuple documented on
    :class:`SmallBiasGenerator`.  The state is shared by every fast-path
    generator instance with the same seed, so it must only ever *grow* —
    which the expansion code guarantees.
    """

    __slots__ = ("stream", "length", "lfsr")

    def __init__(self) -> None:
        self.stream = 0
        self.length = 0
        self.lfsr: Optional[Tuple[int, int, int, int, int]] = None


#: Process-level expansion cache: seeds are pure inputs, so sharing the
#: expanded stream across generator instances is observationally invisible
#: (the equivalence suite pins the output against the per-bit reference
#: either way).  Bounded FIFO so pathological seed churn cannot grow it
#: without limit.
_STREAM_STATES: Dict[Tuple[int, int, int], _StreamState] = {}
_STREAM_STATE_CAPACITY = 512


def _shared_stream_state(x: int, y: int, field_degree: int) -> _StreamState:
    key = (x, y, field_degree)
    state = _STREAM_STATES.get(key)
    if state is None:
        if len(_STREAM_STATES) >= _STREAM_STATE_CAPACITY:
            _STREAM_STATES.pop(next(iter(_STREAM_STATES)))
        state = _STREAM_STATES[key] = _StreamState()
    return state


def _minimal_connection_polynomial(stream: int, count: int) -> Tuple[int, int]:
    """Berlekamp–Massey over GF(2) on the first ``count`` bits of ``stream``.

    Returns ``(C, L)`` with ``C`` packed (bit ``j`` = coefficient of ``x^j``,
    ``C(0) = 1``) such that ``⊕_{j=0}^{L} C_j · s_{i-j} = 0`` for all
    ``i ≥ L``.  Discrepancies are whole-register popcounts over the
    bit-reversed stream instead of per-term Python loops.
    """
    rbits = 0
    for i in range(count):
        if (stream >> i) & 1:
            rbits |= 1 << (count - 1 - i)
    connection, backup = 1, 1
    complexity, gap = 0, 1
    for i in range(count):
        discrepancy = (connection & (rbits >> (count - 1 - i))).bit_count() & 1
        if discrepancy == 0:
            gap += 1
        elif 2 * complexity <= i:
            previous = connection
            connection ^= backup << gap
            complexity = i + 1 - complexity
            backup = previous
            gap = 1
        else:
            connection ^= backup << gap
            gap += 1
    return connection, complexity


def required_field_degree(output_length: int, delta: float) -> int:
    """Smallest supported field degree giving bias <= ``delta`` for ``output_length`` bits."""
    if output_length <= 0:
        raise ValueError("output_length must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    for degree in (8, 16, 32, 64, 128):
        # bias of the first ℓ bits of the powering construction is <= ℓ / 2^r
        if output_length / (2.0 ** degree) <= delta:
            return degree
    raise ValueError("requested bias is too small for the supported field degrees")


def seed_length_bits(field_degree: int) -> int:
    """Number of uniform seed bits consumed by the generator (two field elements)."""
    return 2 * field_degree


@dataclass
class SmallBiasGenerator:
    """AGHP powering-construction generator for a δ-biased bit string."""

    seed_bits: int
    field_degree: int = 64
    #: ``False`` routes sequential generation through the original per-bit
    #: field-multiplication loop instead of the table-driven step — the
    #: reference path the equivalence suite and the hashing benchmark compare
    #: against.
    table_stepping: bool = True

    def __post_init__(self) -> None:
        self.field = GF2m(self.field_degree)
        mask = self.field.order - 1
        self.x = self.seed_bits & mask
        self.y = (self.seed_bits >> self.field_degree) & mask
        # A zero x would make the whole string zero and a zero y would make it
        # constant after the first bit; both still satisfy the bias bound on
        # average over seeds, but we keep them as-is for faithfulness (the
        # probability of drawing them is 2^-r).
        #
        # The fast sequential path caches the expanded string as one packed
        # integer, grown on demand by the LFSR doubling step.  The state's
        # ``lfsr`` tuple is (shift, conn, conn_degree, inv_step, jump): the
        # stream s satisfies x^shift·conn as a characteristic polynomial with
        # conn(0) = 1; ``jump`` is x^(length - shift) mod conn, kept in
        # lockstep with the cached stream; ``inv_step`` is x^(1 - deg conn)
        # mod conn, the constant that advances ``jump`` across one doubling.
        # Fast-path instances with the same seed share one process-level
        # state, so a stream is bootstrapped and extended once per seed.
        if self.table_stepping:
            self._state = _shared_stream_state(self.x, self.y, self.field_degree)
        else:
            self._state = _StreamState()

    def _bootstrap_stream(self) -> None:
        """Seed the stream cache: 2r stepped bits + Berlekamp–Massey.

        The AGHP stream is a linear functional of the ``· y`` orbit in
        GF(2^r), so its linear complexity is at most ``r``; 2r terms therefore
        determine the minimal connection polynomial exactly, and the LFSR
        extension reproduces the reference stream bit for bit (pinned by the
        hashing equivalence suite).  The 2r bootstrap terms are stepped with
        small nibble-indexed tables for the (linear) ``· y`` map — exact field
        products, so bit-identical to the :meth:`bits` reference loop at a
        fraction of its cost.
        """
        state = self._state
        field = self.field
        degree = self.field_degree
        basis: List[int] = []
        product = self.y
        for _ in range(degree):
            basis.append(product)
            product = field.reduce(product << 1)
        step_tables: List[List[int]] = []
        for base_bit in range(0, degree, 4):
            table = [0] * 16
            for value in range(1, 16):
                low = value & -value
                table[value] = table[value ^ low] ^ basis[base_bit + low.bit_length() - 1]
            step_tables.append(table)
        count = 2 * degree
        stream = 0
        x = self.x
        power = 1
        for i in range(count):
            if (x & power).bit_count() & 1:
                stream |= 1 << i
            shifted = power
            stepped = 0
            for table in step_tables:
                stepped ^= table[shifted & 0xF]
                shifted >>= 4
            power = stepped
        state.stream = stream
        state.length = count
        connection, complexity = _minimal_connection_polynomial(stream, count)
        # Characteristic form: bit-reverse C over degree L, then strip the
        # x^shift factor (present exactly when the minimal polynomial has a
        # pre-periodic head, e.g. y = 0) so conn is invertible at 0.
        reversed_conn = 0
        for j in range(complexity + 1):
            if (connection >> j) & 1:
                reversed_conn |= 1 << (complexity - j)
        if complexity == 0:
            state.lfsr = (0, 1, 0, 0, 0)  # all-zero stream
            return
        shift = (reversed_conn & -reversed_conn).bit_length() - 1
        conn = reversed_conn >> shift
        conn_degree = complexity - shift
        if conn_degree == 0:
            state.lfsr = (shift, 1, 0, 0, 0)  # zero beyond the first `shift` bits
            return
        # x is invertible mod conn because conn(0) = 1: x·(conn + 1)/x ≡ 1.
        inverse_x = (conn ^ 1) >> 1
        inv_step = _poly_powmod(inverse_x, conn_degree - 1, conn, conn_degree)
        jump = _poly_powmod(2, count - shift, conn, conn_degree)
        state.lfsr = (shift, conn, conn_degree, inv_step, jump)

    def _ensure_stream(self, length: int) -> None:
        """Grow the cached stream to at least ``length`` bits."""
        state = self._state
        if length <= state.length:
            return
        if state.lfsr is None:
            self._bootstrap_stream()
            if length <= state.length:
                return
        shift, conn, conn_degree, inv_step, jump = state.lfsr
        if conn_degree == 0:
            # Eventually-zero stream: every bit past the cached prefix is 0.
            state.length = length
            return
        stream = state.stream
        stream_len = state.length
        chunk_bits = _EXTENSION_CHUNK_BITS
        while stream_len < length and stream_len - shift < chunk_bits + conn_degree:
            # Doubling phase (small streams).  With jump = x^have mod conn
            # (have counted past the shift head), s_{shift+have+t} =
            # ⊕_{j ∈ jump} s_{shift+t+j}, valid for t < have - deg(conn) + 1 —
            # one shift/XOR per set coefficient over the cached stream.
            have = stream_len - shift
            fresh = have - conn_degree + 1
            block = 0
            coefficients = jump
            base = stream >> shift
            while coefficients:
                low = coefficients & -coefficients
                block ^= base >> (low.bit_length() - 1)
                coefficients ^= low
            stream |= (block & ((1 << fresh) - 1)) << stream_len
            stream_len += fresh
            # jump ← x^(2·have - deg + 1) = jump² · x^(1 - deg) mod conn.
            jump = _poly_mulmod(_poly_mulmod(jump, jump, conn, conn_degree), inv_step, conn, conn_degree)
        if stream_len < length:
            # Chunked phase (long streams): append fixed-size blocks computed
            # against the short stream *prefix* instead of the whole cached
            # stream, keeping the per-generated-bit cost constant.  The same
            # identity applies — s_{shift+have+t} = ⊕_{j ∈ jump} s_{shift+t+j}
            # for t < chunk — and t + j stays inside the prefix window.
            base = (stream >> shift) & ((1 << (chunk_bits + conn_degree)) - 1)
            chunk_mask = (1 << chunk_bits) - 1
            chunk_step = _poly_powmod(2, chunk_bits, conn, conn_degree)
            while stream_len < length:
                block = 0
                coefficients = jump
                while coefficients:
                    low = coefficients & -coefficients
                    block ^= base >> (low.bit_length() - 1)
                    coefficients ^= low
                stream |= (block & chunk_mask) << stream_len
                stream_len += chunk_bits
                jump = _poly_mulmod(jump, chunk_step, conn, conn_degree)
        state.stream = stream
        state.length = stream_len
        state.lfsr = (shift, conn, conn_degree, inv_step, jump)

    @classmethod
    def from_bit_list(cls, bits: List[int], field_degree: int = 64) -> "SmallBiasGenerator":
        """Build a generator from an explicit list of seed bits (LSB first)."""
        if len(bits) < seed_length_bits(field_degree):
            raise ValueError(
                f"need {seed_length_bits(field_degree)} seed bits, got {len(bits)}"
            )
        value = 0
        for index, bit in enumerate(bits[: seed_length_bits(field_degree)]):
            if bit:
                value |= 1 << index
        return cls(seed_bits=value, field_degree=field_degree)

    # -- bit access ---------------------------------------------------------------

    def bit(self, index: int) -> int:
        """The ``index``-th bit of the expanded string (random access)."""
        if index < 0:
            raise ValueError("index must be non-negative")
        power = self.field.pow(self.y, index)
        return GF2m.inner_product_bit(self.x, power)

    def bits(self, offset: int, count: int) -> List[int]:
        """``count`` consecutive bits starting at ``offset`` (sequential generation)."""
        if offset < 0 or count < 0:
            raise ValueError("offset and count must be non-negative")
        out: List[int] = []
        power = self.field.pow(self.y, offset)
        for _ in range(count):
            out.append(GF2m.inner_product_bit(self.x, power))
            power = self.field.mul(power, self.y)
        return out

    def packed_bits(self, offset: int, count: int) -> int:
        """Same as :meth:`bits` but packed into an integer (bit 0 = first bit).

        This is the fast sequential path: one whole-register slice out of the
        LFSR-extended stream cache instead of per-bit field multiplications.
        Bit-identical to packing the output of :meth:`bits` (pinned by the
        hashing equivalence suite); with ``table_stepping=False`` it *is* that
        packing loop.
        """
        if offset < 0 or count < 0:
            raise ValueError("offset and count must be non-negative")
        if not self.table_stepping:
            value = 0
            for position, bit in enumerate(self.bits(offset, count)):
                if bit:
                    value |= 1 << position
            return value
        if count == 0:
            return 0
        self._ensure_stream(offset + count)
        return (self._state.stream >> offset) & ((1 << count) - 1)

    def packed_slots(self, offset_lengths: Sequence[Tuple[int, int]]) -> Tuple[int, ...]:
        """Read several ``(offset, length)`` slots in one sequential pass.

        Slots must be given in increasing-offset order and must not overlap.
        All slots are served from the shared stream cache, which is extended
        once to cover the furthest slot.  This is what
        :class:`~repro.hashing.seeds.ExchangedSeedSource` (and, since the
        unified expansion contract, :class:`~repro.hashing.seeds.CrsSeedSource`)
        uses to pull a whole iteration's seed slots out of the δ-biased string
        in one read.
        """
        if not self.table_stepping:
            return tuple(self.packed_bits(offset, count) for offset, count in offset_lengths)
        values: List[int] = []
        position: Optional[int] = None
        for offset, count in offset_lengths:
            if offset < 0 or count < 0:
                raise ValueError("offset and count must be non-negative")
            if position is not None and offset < position:
                raise ValueError("slots must be given in increasing-offset order")
            values.append(self.packed_bits(offset, count))
            position = offset + count
        return tuple(values)


def empirical_bias(bits: List[int]) -> float:
    """|Pr[parity = 0] - 1/2| of the given sample — used by tests and benchmarks."""
    if not bits:
        raise ValueError("need at least one bit")
    zeros = sum(1 for bit in bits if bit == 0)
    return abs(zeros / len(bits) - 0.5)
