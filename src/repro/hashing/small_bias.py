"""δ-biased (small-bias) pseudorandom strings.

Algorithm A/B replace the long common random string with a short seed that
both endpoints of a link expand into a δ-biased string (paper §2.3,
Lemma 2.5, citing Naor–Naor and Alon–Goldreich–Håstad–Peres).  We implement
the AGHP *powering construction*:

    seed = (x, y) with x, y ∈ GF(2^r);   bit_i = ⟨x, y^i⟩

where ⟨·,·⟩ is the GF(2) inner product of coefficient vectors.  The bias of
the first ℓ bits of this generator is at most ℓ / 2^r, so choosing
``r = Θ(log(ℓ/δ))`` gives a δ-biased distribution from a 2r-bit seed —
matching the seed length ``Θ(log(1/δ) + log ℓ)`` of Lemma 2.5.

``SmallBiasGenerator`` supports random access (``bit(i)``) and efficient
sequential block generation (``packed_bits``), which is what the seed
manager uses to carve per-iteration hash seeds out of the expanded string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hashing.gf2m import GF2m
from repro.utils.bitstring import int_to_bits


def required_field_degree(output_length: int, delta: float) -> int:
    """Smallest supported field degree giving bias <= ``delta`` for ``output_length`` bits."""
    if output_length <= 0:
        raise ValueError("output_length must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    for degree in (8, 16, 32, 64, 128):
        # bias of the first ℓ bits of the powering construction is <= ℓ / 2^r
        if output_length / (2.0 ** degree) <= delta:
            return degree
    raise ValueError("requested bias is too small for the supported field degrees")


def seed_length_bits(field_degree: int) -> int:
    """Number of uniform seed bits consumed by the generator (two field elements)."""
    return 2 * field_degree


@dataclass
class SmallBiasGenerator:
    """AGHP powering-construction generator for a δ-biased bit string."""

    seed_bits: int
    field_degree: int = 64

    def __post_init__(self) -> None:
        self.field = GF2m(self.field_degree)
        mask = self.field.order - 1
        self.x = self.seed_bits & mask
        self.y = (self.seed_bits >> self.field_degree) & mask
        # A zero x would make the whole string zero and a zero y would make it
        # constant after the first bit; both still satisfy the bias bound on
        # average over seeds, but we keep them as-is for faithfulness (the
        # probability of drawing them is 2^-r).

    @classmethod
    def from_bit_list(cls, bits: List[int], field_degree: int = 64) -> "SmallBiasGenerator":
        """Build a generator from an explicit list of seed bits (LSB first)."""
        if len(bits) < seed_length_bits(field_degree):
            raise ValueError(
                f"need {seed_length_bits(field_degree)} seed bits, got {len(bits)}"
            )
        value = 0
        for index, bit in enumerate(bits[: seed_length_bits(field_degree)]):
            if bit:
                value |= 1 << index
        return cls(seed_bits=value, field_degree=field_degree)

    # -- bit access ---------------------------------------------------------------

    def bit(self, index: int) -> int:
        """The ``index``-th bit of the expanded string (random access)."""
        if index < 0:
            raise ValueError("index must be non-negative")
        power = self.field.pow(self.y, index)
        return GF2m.inner_product_bit(self.x, power)

    def bits(self, offset: int, count: int) -> List[int]:
        """``count`` consecutive bits starting at ``offset`` (sequential generation)."""
        if offset < 0 or count < 0:
            raise ValueError("offset and count must be non-negative")
        out: List[int] = []
        power = self.field.pow(self.y, offset)
        for _ in range(count):
            out.append(GF2m.inner_product_bit(self.x, power))
            power = self.field.mul(power, self.y)
        return out

    def packed_bits(self, offset: int, count: int) -> int:
        """Same as :meth:`bits` but packed into an integer (bit 0 = first bit)."""
        value = 0
        for position, bit in enumerate(self.bits(offset, count)):
            if bit:
                value |= 1 << position
        return value


def empirical_bias(bits: List[int]) -> float:
    """|Pr[parity = 0] - 1/2| of the given sample — used by tests and benchmarks."""
    if not bits:
        raise ValueError("need at least one bit")
    zeros = sum(1 for bit in bits if bit == 0)
    return abs(zeros / len(bits) - 0.5)
