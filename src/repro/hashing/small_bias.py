"""δ-biased (small-bias) pseudorandom strings.

Algorithm A/B replace the long common random string with a short seed that
both endpoints of a link expand into a δ-biased string (paper §2.3,
Lemma 2.5, citing Naor–Naor and Alon–Goldreich–Håstad–Peres).  We implement
the AGHP *powering construction*:

    seed = (x, y) with x, y ∈ GF(2^r);   bit_i = ⟨x, y^i⟩

where ⟨·,·⟩ is the GF(2) inner product of coefficient vectors.  The bias of
the first ℓ bits of this generator is at most ℓ / 2^r, so choosing
``r = Θ(log(ℓ/δ))`` gives a δ-biased distribution from a 2r-bit seed —
matching the seed length ``Θ(log(1/δ) + log ℓ)`` of Lemma 2.5.

``SmallBiasGenerator`` supports random access (``bit(i)``) and efficient
sequential block generation (``packed_bits`` / ``packed_slots``), which is
what the seed manager uses to carve per-iteration hash seeds out of the
expanded string.  Sequential generation steps ``power ← power · y`` through a
table-driven :class:`~repro.hashing.gf2m.FixedMultiplier` (built lazily on
first use); the per-bit reference path (:meth:`bits`) keeps the plain
field-multiplication loop, and the equivalence suite pins the two
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.hashing.gf2m import GF2m, FixedMultiplier


def required_field_degree(output_length: int, delta: float) -> int:
    """Smallest supported field degree giving bias <= ``delta`` for ``output_length`` bits."""
    if output_length <= 0:
        raise ValueError("output_length must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    for degree in (8, 16, 32, 64, 128):
        # bias of the first ℓ bits of the powering construction is <= ℓ / 2^r
        if output_length / (2.0 ** degree) <= delta:
            return degree
    raise ValueError("requested bias is too small for the supported field degrees")


def seed_length_bits(field_degree: int) -> int:
    """Number of uniform seed bits consumed by the generator (two field elements)."""
    return 2 * field_degree


@dataclass
class SmallBiasGenerator:
    """AGHP powering-construction generator for a δ-biased bit string."""

    seed_bits: int
    field_degree: int = 64
    #: ``False`` routes sequential generation through the original per-bit
    #: field-multiplication loop instead of the table-driven step — the
    #: reference path the equivalence suite and the hashing benchmark compare
    #: against.
    table_stepping: bool = True

    def __post_init__(self) -> None:
        self.field = GF2m(self.field_degree)
        mask = self.field.order - 1
        self.x = self.seed_bits & mask
        self.y = (self.seed_bits >> self.field_degree) & mask
        # A zero x would make the whole string zero and a zero y would make it
        # constant after the first bit; both still satisfy the bias bound on
        # average over seeds, but we keep them as-is for faithfulness (the
        # probability of drawing them is 2^-r).
        self._step: Optional[FixedMultiplier] = None
        # y^gap values for the skips packed_slots makes between slot reads,
        # keyed by gap width.  Slot layouts repeat every iteration, so the
        # distinct gaps (within a layout, and from one iteration's last slot
        # to the next iteration's first) form a small fixed set.
        self._jump_cache: dict = {}
        # (position, y^position) just past the last packed_slots read; lets
        # the next monotone read resume with one cached jump instead of a
        # fresh exponentiation.
        self._cursor: Optional[Tuple[int, int]] = None

    def _step_multiplier(self) -> FixedMultiplier:
        """The lazily-built table multiplier for the ``· y`` expansion step."""
        if self._step is None:
            self._step = self.field.fixed_multiplier(self.y)
        return self._step

    def _jump(self, power: int, gap: int) -> int:
        """``power · y^gap`` with the per-gap constant cached (bounded cache:
        regular slot layouts produce a small fixed set of gaps; irregular
        access patterns fall back to plain exponentiation)."""
        if gap == 0:
            return power
        constant = self._jump_cache.get(gap)
        if constant is None:
            constant = self.field.pow(self.y, gap)
            if len(self._jump_cache) < 64:
                self._jump_cache[gap] = constant
        return self.field.mul(power, constant)

    @classmethod
    def from_bit_list(cls, bits: List[int], field_degree: int = 64) -> "SmallBiasGenerator":
        """Build a generator from an explicit list of seed bits (LSB first)."""
        if len(bits) < seed_length_bits(field_degree):
            raise ValueError(
                f"need {seed_length_bits(field_degree)} seed bits, got {len(bits)}"
            )
        value = 0
        for index, bit in enumerate(bits[: seed_length_bits(field_degree)]):
            if bit:
                value |= 1 << index
        return cls(seed_bits=value, field_degree=field_degree)

    # -- bit access ---------------------------------------------------------------

    def bit(self, index: int) -> int:
        """The ``index``-th bit of the expanded string (random access)."""
        if index < 0:
            raise ValueError("index must be non-negative")
        power = self.field.pow(self.y, index)
        return GF2m.inner_product_bit(self.x, power)

    def bits(self, offset: int, count: int) -> List[int]:
        """``count`` consecutive bits starting at ``offset`` (sequential generation)."""
        if offset < 0 or count < 0:
            raise ValueError("offset and count must be non-negative")
        out: List[int] = []
        power = self.field.pow(self.y, offset)
        for _ in range(count):
            out.append(GF2m.inner_product_bit(self.x, power))
            power = self.field.mul(power, self.y)
        return out

    def packed_bits(self, offset: int, count: int) -> int:
        """Same as :meth:`bits` but packed into an integer (bit 0 = first bit).

        This is the fast sequential path: one table-driven multiply per bit
        instead of a full field multiplication.  Bit-identical to packing the
        output of :meth:`bits` (pinned by the hashing equivalence suite); with
        ``table_stepping=False`` it *is* that packing loop.
        """
        if offset < 0 or count < 0:
            raise ValueError("offset and count must be non-negative")
        if not self.table_stepping:
            value = 0
            for position, bit in enumerate(self.bits(offset, count)):
                if bit:
                    value |= 1 << position
            return value
        power = self.field.pow(self.y, offset)
        value, _ = self._read_packed(power, count)
        return value

    def packed_slots(self, offset_lengths: Sequence[Tuple[int, int]]) -> Tuple[int, ...]:
        """Read several ``(offset, length)`` slots in one sequential pass.

        Slots must be given in increasing-offset order and must not overlap.
        The generator walks the expanded string once: it raises ``y`` to the
        first offset, reads the first slot with table-driven stepping, jumps
        the gap to the next slot with one cached multiplication, and so on.
        This is what :class:`~repro.hashing.seeds.ExchangedSeedSource` uses to
        pull a whole iteration's seed slots out of the δ-biased string in one
        read.
        """
        if not self.table_stepping:
            return tuple(self.packed_bits(offset, count) for offset, count in offset_lengths)
        values: List[int] = []
        position: Optional[int] = None
        power = 0
        for offset, count in offset_lengths:
            if offset < 0 or count < 0:
                raise ValueError("offset and count must be non-negative")
            if position is None:
                cursor = self._cursor
                if cursor is not None and cursor[0] <= offset:
                    power = self._jump(cursor[1], offset - cursor[0])
                else:
                    power = self.field.pow(self.y, offset)
            elif offset < position:
                raise ValueError("slots must be given in increasing-offset order")
            else:
                power = self._jump(power, offset - position)
            value, power = self._read_packed(power, count)
            values.append(value)
            position = offset + count
        if position is not None:
            self._cursor = (position, power)
        return tuple(values)

    def _read_packed(self, power: int, count: int) -> Tuple[int, int]:
        """``count`` packed bits starting at ``power = y^offset``; returns
        the packed value and the power positioned just past the slot."""
        tables = self._step_multiplier()._tables
        x = self.x
        value = 0
        for position in range(count):
            if (x & power).bit_count() & 1:
                value |= 1 << position
            shifted = power
            stepped = 0
            for table in tables:
                stepped ^= table[shifted & 0xFF]
                shifted >>= 8
            power = stepped
        return value, power


def empirical_bias(bits: List[int]) -> float:
    """|Pr[parity = 0] - 1/2| of the given sample — used by tests and benchmarks."""
    if not bits:
        raise ValueError("need at least one bit")
    zeros = sum(1 for bit in bits if bit == 0)
    return abs(zeros / len(bits) - 0.5)
