"""Binary extension field GF(2^r) arithmetic on Python integers.

The δ-biased string generator (:mod:`repro.hashing.small_bias`) uses the
Alon–Goldreich–Håstad–Peres "powering" construction, which works over a
binary extension field GF(2^r).  Elements are represented as integers whose
bits are the coefficients of a polynomial over GF(2); multiplication is
carry-less multiplication followed by reduction modulo a fixed irreducible
polynomial.

Only the operations the generator needs are provided: multiplication,
exponentiation, the GF(2) inner product of two elements' coefficient
vectors, and a table-driven :class:`FixedMultiplier` for the hot
multiply-by-a-constant step of sequential δ-biased expansion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Irreducible polynomials (including the leading x^r term) for supported degrees.
IRREDUCIBLE_POLYNOMIALS: Dict[int, int] = {
    8: (1 << 8) | 0b11011,                 # x^8 + x^4 + x^3 + x + 1
    16: (1 << 16) | (1 << 5) | (1 << 3) | (1 << 1) | 1,   # x^16 + x^5 + x^3 + x + 1
    32: (1 << 32) | (1 << 7) | (1 << 3) | (1 << 2) | 1,   # x^32 + x^7 + x^3 + x^2 + 1
    64: (1 << 64) | (1 << 4) | (1 << 3) | (1 << 1) | 1,   # x^64 + x^4 + x^3 + x + 1
    128: (1 << 128) | (1 << 7) | (1 << 2) | (1 << 1) | 1,  # x^128 + x^7 + x^2 + x + 1
}


def carryless_multiply(a: int, b: int) -> int:
    """Multiply two GF(2) polynomials given as integers (no reduction)."""
    result = 0
    while b:
        low = b & -b
        result ^= a * low  # multiplying by a power of two is a shift
        b ^= low
    return result


@dataclass(frozen=True)
class GF2m:
    """The field GF(2^degree) with a fixed irreducible modulus."""

    degree: int

    def __post_init__(self) -> None:
        if self.degree not in IRREDUCIBLE_POLYNOMIALS:
            raise ValueError(
                f"unsupported field degree {self.degree}; "
                f"supported: {sorted(IRREDUCIBLE_POLYNOMIALS)}"
            )

    @property
    def modulus(self) -> int:
        return IRREDUCIBLE_POLYNOMIALS[self.degree]

    @property
    def order(self) -> int:
        return 1 << self.degree

    def reduce(self, value: int) -> int:
        """Reduce a polynomial modulo the field's irreducible polynomial."""
        modulus = self.modulus
        degree = self.degree
        while value.bit_length() > degree:
            shift = value.bit_length() - degree - 1
            value ^= modulus << shift
        return value

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        self._check(a)
        self._check(b)
        return self.reduce(carryless_multiply(a, b))

    def pow(self, base: int, exponent: int) -> int:
        """Field exponentiation by a non-negative integer exponent."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self._check(base)
        result = 1
        acc = base
        while exponent:
            if exponent & 1:
                result = self.mul(result, acc)
            acc = self.mul(acc, acc)
            exponent >>= 1
        return result

    @staticmethod
    def inner_product_bit(a: int, b: int) -> int:
        """GF(2) inner product of the coefficient vectors of two elements."""
        return (a & b).bit_count() & 1

    def fixed_multiplier(self, constant: int) -> "FixedMultiplier":
        """A table-driven multiplier for repeated products with ``constant``."""
        return FixedMultiplier(self, constant)

    def _check(self, value: int) -> None:
        if value < 0 or value >= self.order:
            raise ValueError(f"{value} is not an element of GF(2^{self.degree})")


class FixedMultiplier:
    """Multiplication by one fixed field element via byte-indexed tables.

    Multiplication by a constant is a GF(2)-linear map, so the product of an
    arbitrary element with the constant is the XOR of the per-byte partial
    products ``(byte << 8k) * constant``.  Precomputing those 256-entry tables
    turns the per-step field multiplication of sequential δ-biased expansion
    (``power ← power · y``) into a handful of C-level shifts, masks and XORs —
    the results are bit-identical to :meth:`GF2m.mul` (the table entries *are*
    reduced products).

    Building the tables costs ``degree`` reductions plus O(256 · degree/8)
    XORs (each byte entry extends a previously-filled entry by one bit), so
    construction is cheap enough to do lazily on first use.
    """

    __slots__ = ("field", "constant", "_tables")

    def __init__(self, field: GF2m, constant: int) -> None:
        field._check(constant)
        self.field = field
        self.constant = constant
        num_bits = field.degree
        # Reduced products of the constant with every power of x ...
        bit_products: List[int] = []
        for bit in range(num_bits):
            bit_products.append(field.reduce(carryless_multiply(1 << bit, constant)))
        # ... combined into byte-indexed tables by dynamic programming: every
        # byte value extends the entry with its lowest set bit cleared.
        tables: List[List[int]] = []
        for k in range(0, num_bits, 8):
            table = [0] * 256
            for byte in range(1, 256):
                low = byte & -byte
                table[byte] = table[byte ^ low] ^ bit_products[k + low.bit_length() - 1]
            tables.append(table)
        self._tables: Tuple[List[int], ...] = tuple(tables)

    def mul(self, value: int) -> int:
        """``value * constant`` in the field (bit-identical to ``GF2m.mul``)."""
        self.field._check(value)
        out = 0
        for table in self._tables:
            out ^= table[value & 0xFF]
            value >>= 8
        return out
