"""The inner-product hash family of Definition 2.2.

``h(x, s)`` maps an ``L``-bit input and a ``τ·L``-bit seed to ``τ`` output
bits; output bit ``j`` is the GF(2) inner product of ``x`` with the ``j``-th
disjoint ``L``-bit block of the seed.  For a uniform seed the output of any
non-zero input is uniform (Lemma 2.3), hence the collision probability of two
distinct inputs is exactly ``2^-τ``; for a δ-biased seed the collision
indicator deviates from that by at most δ (Lemma 2.6).

Inputs and seeds are handled as packed integers for speed; helpers accept bit
lists and byte strings as well.

The coding engine normally does not feed entire transcripts to this hash.
Raw transcripts grow as Θ(|Π|·K) bits, which would require impractically long
seeds exactly as the paper discusses; instead the engine first compresses the
transcript to a fixed-width *fingerprint* (see :func:`fingerprint_bits`) and
applies the inner-product hash to the fingerprint.  This keeps the
inner-product/δ-bias structure that the analysis is about while bounding the
seed length; the substitution is recorded in DESIGN.md.  A ``raw`` mode that
hashes the full serialisation is available for small instances.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.utils.bitstring import bits_to_int

#: Width (in bits) of the pre-hash transcript fingerprint.
FINGERPRINT_BITS = 128


def fingerprint_bits(data: bytes, width: int = FINGERPRINT_BITS) -> int:
    """Compress arbitrary data to a ``width``-bit integer fingerprint.

    Uses BLAKE2b; collisions of the fingerprint stage are negligible compared
    with the ``2^-τ`` inner-product collisions the scheme is designed around.
    """
    if width <= 0 or width % 8 != 0:
        raise ValueError("fingerprint width must be a positive multiple of 8")
    digest = hashlib.blake2b(data, digest_size=width // 8).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class InnerProductHash:
    """An inner-product hash with a fixed output length.

    The same object is reused for every input length; the seed must provide
    ``output_bits * input_bits`` bits.
    """

    output_bits: int

    def __post_init__(self) -> None:
        if self.output_bits <= 0:
            raise ValueError("output_bits must be positive")

    def seed_bits_required(self, input_bits: int) -> int:
        """Seed length needed to hash an ``input_bits``-bit input."""
        if input_bits <= 0:
            raise ValueError("input_bits must be positive")
        return self.output_bits * input_bits

    def digest(self, value: int, input_bits: int, seed: int) -> int:
        """Hash a packed ``input_bits``-bit integer with a packed seed.

        Returns the output as a packed ``output_bits``-bit integer.
        """
        if value < 0 or value >= (1 << input_bits):
            raise ValueError("value does not fit in input_bits bits")
        if seed < 0 or seed >= (1 << self.seed_bits_required(input_bits)):
            raise ValueError("seed does not fit in the required seed length")
        mask = (1 << input_bits) - 1
        out = 0
        for j in range(self.output_bits):
            block = (seed >> (j * input_bits)) & mask
            if (block & value).bit_count() & 1:
                out |= 1 << j
        return out

    def digest_many(self, values: Sequence[int], input_bits: int, seed: int) -> Tuple[int, ...]:
        """Hash several packed inputs with the *same* packed seed in one pass.

        The meeting-points exchange hashes three transcript prefixes per
        iteration with one shared seed; extracting each of the seed's
        ``output_bits`` blocks once and applying it to every value amortises
        the big-integer shifts that dominate :meth:`digest`.  Bit-identical to
        ``tuple(digest(v, input_bits, seed) for v in values)`` (pinned by the
        hashing equivalence suite).
        """
        if seed < 0 or seed >= (1 << self.seed_bits_required(input_bits)):
            raise ValueError("seed does not fit in the required seed length")
        cap = 1 << input_bits
        for value in values:
            if value < 0 or value >= cap:
                raise ValueError("value does not fit in input_bits bits")
        mask = cap - 1
        outs = [0] * len(values)
        for j in range(self.output_bits):
            block = (seed >> (j * input_bits)) & mask
            bit = 1 << j
            for index, value in enumerate(values):
                if (block & value).bit_count() & 1:
                    outs[index] |= bit
        return tuple(outs)

    def digest_bits(self, bits: Sequence[int], seed: int) -> List[int]:
        """Hash a bit list; returns the output as a bit list (LSB first)."""
        if not bits:
            raise ValueError("cannot hash an empty bit sequence")
        packed = bits_to_int(list(bits))
        out = self.digest(packed, len(bits), seed)
        return [(out >> j) & 1 for j in range(self.output_bits)]

    def collision_probability(self) -> float:
        """The nominal collision probability 2^-τ for distinct inputs under uniform seeds."""
        return 2.0 ** (-self.output_bits)
