"""Hashing substrate: inner-product hashes, small-bias strings, seed sources."""

from repro.hashing.gf2m import GF2m, carryless_multiply
from repro.hashing.inner_product import FINGERPRINT_BITS, InnerProductHash, fingerprint_bits
from repro.hashing.seeds import SEED_PURPOSES, CrsSeedSource, ExchangedSeedSource, SeedSource
from repro.hashing.small_bias import SmallBiasGenerator, empirical_bias, required_field_degree, seed_length_bits

__all__ = [
    "GF2m",
    "carryless_multiply",
    "FINGERPRINT_BITS",
    "InnerProductHash",
    "fingerprint_bits",
    "SEED_PURPOSES",
    "CrsSeedSource",
    "ExchangedSeedSource",
    "SeedSource",
    "SmallBiasGenerator",
    "empirical_bias",
    "required_field_degree",
    "seed_length_bits",
]
