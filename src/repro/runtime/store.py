"""A persistent store of experiment runs.

Where the :mod:`~repro.runtime.cache` remembers *trials* (so work can be
skipped), the :class:`RunStore` remembers *runs* (so results can be listed,
audited and compared later).  Every record is one JSON document under the
store root:

    <root>/run-000001.json
    <root>/run-000002.json
    ...

Three kinds of records exist:

* ``trial_set`` — the per-trial :class:`~repro.analysis.metrics.RunMetrics`
  plus the :class:`~repro.analysis.metrics.AggregateMetrics` of one
  experimental cell (written by ``run_trials`` whenever a store is active);
* ``report`` — a full :class:`~repro.experiments.reporting.ExperimentReport`
  (written by the CLI commands);
* ``bench`` — one row per benchmark of a ``pytest-benchmark`` session
  (wall-clock stats plus ``extra_info``, written by ``benchmarks/conftest.py``
  at session end), including a flat ``BENCH_<NAME>=<mean seconds>`` export so
  external dashboards can consume the numbers without knowing this layout.

Every document carries ``schema`` so future layouts can evolve; loading
raises on an unknown schema instead of silently misreading it.  Run ids are
monotonically increasing per store directory.  :mod:`repro.runtime.analytics`
builds cross-run comparison (``diff``), aggregation (``merge``) and pruning
(``gc``) on top of these records.

Listing does not scan every document: the store maintains ``index.json``
(run id → the summary row ``list_runs`` returns), updated on every write and
delete and rebuilt lazily whenever it is missing or disagrees with the run
files actually on disk — so a hand-deleted file, a crashed writer or an
older-version store heals on the next ``list``.  All metadata writes go
through atomic renames, and run ids are claimed with an exclusive hard link,
so two processes recording into the same store cannot tear a document or
silently overwrite each other's runs.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.metrics import AggregateMetrics, RunMetrics
from repro.obs import get_obs

#: Bump when the run-document layout changes incompatibly.  Deliberately NOT
#: bumped for the 2.0.0 CRS break: stored runs are historical observations,
#: never re-served as results, so pre-break history — including
#: ``.bench-runs`` trend lines — stays browsable and diffable.  Only the result *cache* (CACHE_SCHEMA_VERSION)
#: and trial fingerprints (TRIAL_KEY_SCHEMA) reject pre-break entries.
STORE_SCHEMA_VERSION = 1

_RUN_PREFIX = "run-"
_INDEX_NAME = "index.json"


@dataclass(frozen=True)
class StoredRun:
    """A ``trial_set`` record loaded back from disk."""

    run_id: str
    label: str
    experiment: str
    created_at: str
    parameters: Dict[str, object]
    runs: List[RunMetrics]
    aggregate: AggregateMetrics
    #: Wall-clock seconds of the trial-set execution; ``None`` for records
    #: written before timing was recorded.
    wall_clock_seconds: Optional[float] = None


def bench_env_name(name: str) -> str:
    """Map a benchmark name to its ``BENCH_*`` environment-style key
    (``test_noise sweep`` → ``BENCH_TEST_NOISE_SWEEP``)."""
    return "BENCH_" + re.sub(r"[^A-Za-z0-9]+", "_", name).strip("_").upper()


class RunStore:
    """Append-only store of experiment runs under one root directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        # The directory is created on first write, not here: read-only
        # commands (``repro runs list``) must not litter the working tree.
        self.root = Path(root)
        # Parsed-index memo, validated against the index file's stat token:
        # a sweep writing hundreds of records re-parses the index zero times
        # instead of once per write (another process's update changes the
        # token and invalidates the memo).
        self._index_memo: Optional[Tuple[List[int], Dict[str, Dict[str, object]]]] = None

    # -- writing -----------------------------------------------------------

    def _next_run_id(self) -> str:
        highest = 0
        for path in self.root.glob(f"{_RUN_PREFIX}*.json"):
            try:
                highest = max(highest, int(path.stem[len(_RUN_PREFIX) :]))
            except ValueError:
                continue
        return f"{_RUN_PREFIX}{highest + 1:06d}"

    def _write(self, payload: Dict[str, object]) -> str:
        """Persist one document under the next free run id.

        The document is staged in a temp file and *claimed* with an exclusive
        hard link onto its final name: if another process grabbed the same id
        between our scan and our link, the link fails and we retry with a
        fresh scan — so concurrent writers interleave ids instead of
        overwriting each other, and a reader never sees a half-written file.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        payload = dict(payload, schema=STORE_SCHEMA_VERSION)
        payload.setdefault("created_at", datetime.now(timezone.utc).isoformat())
        # mkstemp, not a pid-derived name: two threads of one process must
        # stage into different files or one could publish the other's payload.
        descriptor, staged = tempfile.mkstemp(prefix=".staging-", suffix=".json", dir=self.root)
        os.close(descriptor)
        temp = Path(staged)
        try:
            while True:
                run_id = self._next_run_id()
                payload["run_id"] = run_id
                temp.write_text(
                    json.dumps(payload, indent=2, sort_keys=True, default=str), encoding="utf-8"
                )
                try:
                    os.link(temp, self.root / f"{run_id}.json")
                    break
                except FileExistsError:
                    registry = get_obs().metrics
                    if registry is not None:
                        registry.inc("store.claim_conflicts")
                    continue  # lost the race for this id — rescan and retry
        finally:
            temp.unlink(missing_ok=True)
        self._index_put(run_id, self._summarize(payload, run_id))
        return run_id

    # -- index maintenance -------------------------------------------------

    @staticmethod
    def _summarize(payload: Dict[str, object], fallback_id: str) -> Dict[str, object]:
        """The summary row ``list_runs`` returns (and ``index.json`` stores)."""
        summary: Dict[str, object] = {
            "run_id": payload.get("run_id", fallback_id),
            "kind": payload.get("kind", "?"),
            "experiment": payload.get("experiment", ""),
            "label": payload.get("label", ""),
            "created_at": payload.get("created_at", ""),
        }
        if payload.get("kind") == "trial_set":
            aggregate = payload.get("aggregate", {})
            trials = aggregate.get("trials", 0) if isinstance(aggregate, dict) else 0
            summary["trials"] = trials
            summary["success_rate"] = (
                aggregate.get("successes", 0) / trials if trials else ""
            )
        elif payload.get("kind") == "bench":
            summary["trials"] = len(payload.get("benchmarks", []))
            summary["success_rate"] = ""
        elif payload.get("kind") == "trace":
            summary["trials"] = len(payload.get("spans", []))
            summary["success_rate"] = ""
        else:
            summary["trials"] = len(payload.get("rows", []))
            summary["success_rate"] = ""
        return summary

    def _index_path(self) -> Path:
        return self.root / _INDEX_NAME

    @staticmethod
    def _stat_token(path: Path) -> Optional[List[int]]:
        """A cheap change detector for one run file: ``[size, mtime_ns]``."""
        try:
            stat = path.stat()
        except OSError:
            return None
        return [stat.st_size, stat.st_mtime_ns]

    def _read_index(self) -> Optional[Dict[str, Dict[str, object]]]:
        """The ``run id → {"stat", "summary"}`` map, or None when the index
        is missing/corrupt/foreign.  A ``None`` summary marks a run file that
        could not be parsed — remembered, so a permanently corrupt file does
        not force a rebuild on every list."""
        token = self._stat_token(self._index_path())
        if token is None:
            self._index_memo = None
            return None
        if self._index_memo is not None and self._index_memo[0] == token:
            return dict(self._index_memo[1])
        try:
            payload = json.loads(self._index_path().read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != STORE_SCHEMA_VERSION:
            return None
        runs = payload.get("runs")
        if not isinstance(runs, dict) or not all(isinstance(entry, dict) for entry in runs.values()):
            return None
        self._index_memo = (token, dict(runs))
        return dict(runs)

    def _write_index(self, runs: Dict[str, Dict[str, object]]) -> None:
        """Atomic-rename write, so a concurrent reader sees old or new index,
        never a torn one.  (Two concurrent writers can still lose one entry
        to a read-modify-write race; the staleness check in :meth:`list_runs`
        detects exactly that and rebuilds, so the index self-heals.)"""
        if not self.root.is_dir():
            return  # never create the store root just to cache a listing
        temp = self._index_path().with_name(f".{_INDEX_NAME}.{os.getpid()}")
        try:
            temp.write_text(
                json.dumps({"schema": STORE_SCHEMA_VERSION, "runs": runs}, sort_keys=True),
                encoding="utf-8",
            )
            os.replace(temp, self._index_path())
        except OSError:
            # A concurrent gc may sweep the temp file (it matches the
            # stale-temp pattern) or the store root between our existence
            # check and the rename.  The index is only a cache: drop the
            # write and let the next list_runs rebuild it.
            return
        self._index_memo = (self._stat_token(self._index_path()), dict(runs))

    def _index_put(self, run_id: str, summary: Optional[Dict[str, object]]) -> None:
        runs = self._read_index()
        if runs is None:
            self._rebuild_index()
            return
        runs[run_id] = {
            "stat": self._stat_token(self.root / f"{run_id}.json"),
            "summary": summary,
        }
        self._write_index(runs)

    def _index_remove(self, run_id: str) -> None:
        runs = self._read_index()
        if runs is None:
            return  # next list_runs rebuilds from the files
        runs.pop(run_id, None)
        self._write_index(runs)

    def _rebuild_index(self) -> Dict[str, Dict[str, object]]:
        """Re-derive the index by scanning every run document (the slow path
        the index exists to avoid; taken only when missing or stale)."""
        registry = get_obs().metrics
        if registry is not None:
            registry.inc("store.index_rebuilds")
        runs: Dict[str, Dict[str, object]] = {}
        for path in sorted(self.root.glob(f"{_RUN_PREFIX}*.json")):
            token = self._stat_token(path)  # before the read: a racing write
            # makes the token stale, which the next list detects and heals
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                runs[path.stem] = {"stat": token, "summary": None}
                continue
            if not isinstance(payload, dict) or payload.get("schema") != STORE_SCHEMA_VERSION:
                runs[path.stem] = {"stat": token, "summary": None}
                continue
            runs[path.stem] = {"stat": token, "summary": self._summarize(payload, path.stem)}
        self._write_index(runs)
        return runs

    def record_trial_set(
        self,
        label: str,
        runs: List[RunMetrics],
        aggregate: AggregateMetrics,
        experiment: str = "trials",
        parameters: Optional[Dict[str, object]] = None,
        wall_clock_seconds: Optional[float] = None,
        cached_trials: Optional[int] = None,
        worker_attribution: Optional[Dict[str, object]] = None,
        obs_metrics: Optional[Dict[str, float]] = None,
        forensics: Optional[Sequence[Dict[str, object]]] = None,
    ) -> str:
        """Persist one experimental cell; returns the new run id.

        ``cached_trials`` records how many of the trials were served from the
        result cache — analytics treat the wall clock of a partially-cached
        run as informative only.  ``worker_attribution`` is the per-worker
        summary of a distributed run (who executed / stole / re-ran what);
        purely informative, so analytics and diffing ignore it.
        ``obs_metrics`` is the flat metric delta this cell produced in the
        ambient :class:`~repro.obs.metrics.MetricsRegistry` (present only
        when one was active) — ``repro runs metrics`` renders it and
        ``repro runs diff --kind metrics`` gates on it.  ``forensics`` is the
        per-trial dump list of an active
        :class:`~repro.obs.recorder.FlightRecorder` — ``repro runs explain``
        and ``repro runs flight`` read it back; purely informative.
        """
        payload: Dict[str, object] = {
            "kind": "trial_set",
            "label": label,
            "experiment": experiment,
            "parameters": parameters or {},
            "runs": [metrics.to_payload() for metrics in runs],
            "aggregate": aggregate.to_payload(),
        }
        if wall_clock_seconds is not None:
            payload["wall_clock_seconds"] = wall_clock_seconds
        if cached_trials is not None:
            payload["cached_trials"] = cached_trials
        if worker_attribution is not None:
            payload["workers"] = worker_attribution
        if obs_metrics is not None:
            payload["obs_metrics"] = obs_metrics
        if forensics is not None:
            payload["forensics"] = [dict(dump) for dump in forensics]
        return self._write(payload)

    def record_trace(
        self,
        label: str,
        trace_id: str,
        spans: Sequence[Dict[str, object]],
        experiment: str = "trace",
        parameters: Optional[Dict[str, object]] = None,
    ) -> str:
        """Persist one trace (the finished span dicts of one
        :class:`~repro.obs.trace.Tracer` drain); returns the new run id.

        Spans from a distributed sweep arrive already adopted onto the
        coordinator's trace id, so one record holds the whole cross-host
        trace; ``repro runs trace <run>`` renders it.
        """
        return self._write(
            {
                "kind": "trace",
                "label": label,
                "experiment": experiment,
                "parameters": parameters or {},
                "trace_id": trace_id,
                "spans": [dict(span) for span in spans],
            }
        )

    def record_bench(
        self,
        benchmarks: Sequence[Dict[str, object]],
        label: str = "benchmark-session",
    ) -> str:
        """Persist one benchmark session; returns the new run id.

        Each row must carry ``name`` and ``mean_seconds`` (plus whatever
        stats/``extra_info`` the harness collected).  A flat
        ``BENCH_<NAME> → mean_seconds`` map is stored alongside so the
        numbers are consumable without knowing the row layout.
        """
        rows = [dict(row) for row in benchmarks]
        export = {
            bench_env_name(str(row.get("name", ""))): row.get("mean_seconds")
            for row in rows
            if row.get("name")
        }
        return self._write(
            {
                "kind": "bench",
                "label": label,
                "experiment": "benchmarks",
                "benchmarks": rows,
                "bench_env": export,
            }
        )

    def record_report(self, report) -> str:
        """Persist an :class:`~repro.experiments.reporting.ExperimentReport`
        (duck-typed: anything with ``experiment``/``rows``/``parameters``/
        ``generated_at``); returns the new run id."""
        return self._write(
            {
                "kind": "report",
                "label": report.experiment,
                "experiment": report.experiment,
                "parameters": dict(report.parameters),
                "rows": list(report.rows),
                "generated_at": report.generated_at,
            }
        )

    # -- reading -----------------------------------------------------------

    def load(self, run_id: str) -> Dict[str, object]:
        """The raw JSON document of one run; raises ``KeyError`` if absent."""
        path = self.root / f"{run_id}.json"
        if not path.exists():
            raise KeyError(f"no run {run_id!r} in {self.root}")
        payload = json.loads(path.read_text(encoding="utf-8"))
        schema = payload.get("schema")
        if schema != STORE_SCHEMA_VERSION:
            raise ValueError(
                f"run {run_id!r} has schema {schema!r}; this build reads schema {STORE_SCHEMA_VERSION}"
            )
        return payload

    def load_trial_set(self, run_id: str) -> StoredRun:
        """Load a ``trial_set`` record back into metrics objects."""
        return self.trial_set_from_payload(self.load(run_id))

    @staticmethod
    def trial_set_from_payload(payload: Dict[str, object]) -> StoredRun:
        """Rehydrate an already-loaded ``trial_set`` document."""
        run_id = payload.get("run_id", "?")
        if payload.get("kind") != "trial_set":
            raise ValueError(f"run {run_id!r} is a {payload.get('kind')!r}, not a trial_set")
        return StoredRun(
            run_id=payload["run_id"],
            label=payload["label"],
            experiment=payload["experiment"],
            created_at=payload["created_at"],
            parameters=dict(payload.get("parameters", {})),
            runs=[RunMetrics.from_payload(data) for data in payload["runs"]],
            aggregate=AggregateMetrics.from_payload(payload["aggregate"]),
            wall_clock_seconds=payload.get("wall_clock_seconds"),
        )

    def list_runs(self) -> List[Dict[str, object]]:
        """One summary row per stored run, ordered by run id.

        Served from ``index.json`` when it agrees with the run files on disk
        (a per-file ``[size, mtime]`` comparison — documents are stat'ed,
        never opened); any disagreement (hand-added/-deleted/-edited files, a
        lost index race, an index written by an incompatible version)
        triggers a full rebuild."""
        on_disk = {
            path.stem: self._stat_token(path)
            for path in self.root.glob(f"{_RUN_PREFIX}*.json")
        }
        runs = self._read_index()
        if runs is None or {run_id: entry.get("stat") for run_id, entry in runs.items()} != on_disk:
            runs = self._rebuild_index()
        return [
            # Copies, so a caller mutating a row can never corrupt the memo.
            dict(entry["summary"])
            for _, entry in sorted(runs.items())
            if entry.get("summary") is not None
        ]

    def resolve(
        self,
        ref: str,
        kind: Optional[str] = None,
        experiment: Optional[str] = None,
    ) -> str:
        """Resolve a run reference to a concrete run id.

        ``ref`` is either a literal run id (``run-000042``) or the symbolic
        form ``latest`` / ``latest~N`` — the newest (N-th newest) run,
        optionally restricted to a ``kind`` / ``experiment``.  Raises
        ``KeyError`` when the reference points past the available history.
        """
        if not ref.startswith("latest"):
            return ref
        match = re.fullmatch(r"latest(?:~(\d+))?", ref)
        if match is None:
            raise KeyError(f"unrecognised run reference {ref!r} (expected 'latest' or 'latest~N')")
        offset = int(match.group(1) or 0)
        rows = self.query(kind=kind, experiment=experiment)
        if offset >= len(rows):
            constraint = f" of kind {kind!r}" if kind else ""
            raise KeyError(
                f"{ref!r} needs {offset + 1} run(s){constraint} in {self.root}, found {len(rows)}"
            )
        return str(rows[-1 - offset]["run_id"])

    # -- pruning -----------------------------------------------------------

    def delete(self, run_id: str) -> None:
        """Remove one run document; raises ``KeyError`` if absent."""
        path = self.root / f"{run_id}.json"
        if not path.exists():
            raise KeyError(f"no run {run_id!r} in {self.root}")
        path.unlink()
        self._index_remove(run_id)

    def query(
        self,
        kind: Optional[str] = None,
        experiment: Optional[str] = None,
        label_contains: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Filter :meth:`list_runs` by kind / experiment / label substring."""
        rows = self.list_runs()
        if kind is not None:
            rows = [row for row in rows if row["kind"] == kind]
        if experiment is not None:
            rows = [row for row in rows if row["experiment"] == experiment]
        if label_contains is not None:
            rows = [row for row in rows if label_contains in str(row["label"])]
        return rows
