"""A persistent store of experiment runs.

Where the :mod:`~repro.runtime.cache` remembers *trials* (so work can be
skipped), the :class:`RunStore` remembers *runs* (so results can be listed,
audited and compared later).  Every record is one JSON document under the
store root:

    <root>/run-000001.json
    <root>/run-000002.json
    ...

Three kinds of records exist:

* ``trial_set`` — the per-trial :class:`~repro.analysis.metrics.RunMetrics`
  plus the :class:`~repro.analysis.metrics.AggregateMetrics` of one
  experimental cell (written by ``run_trials`` whenever a store is active);
* ``report`` — a full :class:`~repro.experiments.reporting.ExperimentReport`
  (written by the CLI commands);
* ``bench`` — one row per benchmark of a ``pytest-benchmark`` session
  (wall-clock stats plus ``extra_info``, written by ``benchmarks/conftest.py``
  at session end), including a flat ``BENCH_<NAME>=<mean seconds>`` export so
  external dashboards can consume the numbers without knowing this layout.

Every document carries ``schema`` so future layouts can evolve; loading
raises on an unknown schema instead of silently misreading it.  Run ids are
monotonically increasing per store directory (single-writer by design — the
store backs a CLI, not a database).  :mod:`repro.runtime.analytics` builds
cross-run comparison (``diff``), aggregation (``merge``) and pruning (``gc``)
on top of these records.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.metrics import AggregateMetrics, RunMetrics

#: Bump when the run-document layout changes incompatibly.
STORE_SCHEMA_VERSION = 1

_RUN_PREFIX = "run-"


@dataclass(frozen=True)
class StoredRun:
    """A ``trial_set`` record loaded back from disk."""

    run_id: str
    label: str
    experiment: str
    created_at: str
    parameters: Dict[str, object]
    runs: List[RunMetrics]
    aggregate: AggregateMetrics
    #: Wall-clock seconds of the trial-set execution; ``None`` for records
    #: written before timing was recorded.
    wall_clock_seconds: Optional[float] = None


def bench_env_name(name: str) -> str:
    """Map a benchmark name to its ``BENCH_*`` environment-style key
    (``test_noise sweep`` → ``BENCH_TEST_NOISE_SWEEP``)."""
    return "BENCH_" + re.sub(r"[^A-Za-z0-9]+", "_", name).strip("_").upper()


class RunStore:
    """Append-only store of experiment runs under one root directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        # The directory is created on first write, not here: read-only
        # commands (``repro runs list``) must not litter the working tree.
        self.root = Path(root)

    # -- writing -----------------------------------------------------------

    def _next_run_id(self) -> str:
        highest = 0
        for path in self.root.glob(f"{_RUN_PREFIX}*.json"):
            try:
                highest = max(highest, int(path.stem[len(_RUN_PREFIX) :]))
            except ValueError:
                continue
        return f"{_RUN_PREFIX}{highest + 1:06d}"

    def _write(self, payload: Dict[str, object]) -> str:
        self.root.mkdir(parents=True, exist_ok=True)
        run_id = self._next_run_id()
        payload = dict(payload, run_id=run_id, schema=STORE_SCHEMA_VERSION)
        payload.setdefault("created_at", datetime.now(timezone.utc).isoformat())
        (self.root / f"{run_id}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str), encoding="utf-8"
        )
        return run_id

    def record_trial_set(
        self,
        label: str,
        runs: List[RunMetrics],
        aggregate: AggregateMetrics,
        experiment: str = "trials",
        parameters: Optional[Dict[str, object]] = None,
        wall_clock_seconds: Optional[float] = None,
        cached_trials: Optional[int] = None,
    ) -> str:
        """Persist one experimental cell; returns the new run id.

        ``cached_trials`` records how many of the trials were served from the
        result cache — analytics treat the wall clock of a partially-cached
        run as informative only.
        """
        payload: Dict[str, object] = {
            "kind": "trial_set",
            "label": label,
            "experiment": experiment,
            "parameters": parameters or {},
            "runs": [metrics.to_payload() for metrics in runs],
            "aggregate": aggregate.to_payload(),
        }
        if wall_clock_seconds is not None:
            payload["wall_clock_seconds"] = wall_clock_seconds
        if cached_trials is not None:
            payload["cached_trials"] = cached_trials
        return self._write(payload)

    def record_bench(
        self,
        benchmarks: Sequence[Dict[str, object]],
        label: str = "benchmark-session",
    ) -> str:
        """Persist one benchmark session; returns the new run id.

        Each row must carry ``name`` and ``mean_seconds`` (plus whatever
        stats/``extra_info`` the harness collected).  A flat
        ``BENCH_<NAME> → mean_seconds`` map is stored alongside so the
        numbers are consumable without knowing the row layout.
        """
        rows = [dict(row) for row in benchmarks]
        export = {
            bench_env_name(str(row.get("name", ""))): row.get("mean_seconds")
            for row in rows
            if row.get("name")
        }
        return self._write(
            {
                "kind": "bench",
                "label": label,
                "experiment": "benchmarks",
                "benchmarks": rows,
                "bench_env": export,
            }
        )

    def record_report(self, report) -> str:
        """Persist an :class:`~repro.experiments.reporting.ExperimentReport`
        (duck-typed: anything with ``experiment``/``rows``/``parameters``/
        ``generated_at``); returns the new run id."""
        return self._write(
            {
                "kind": "report",
                "label": report.experiment,
                "experiment": report.experiment,
                "parameters": dict(report.parameters),
                "rows": list(report.rows),
                "generated_at": report.generated_at,
            }
        )

    # -- reading -----------------------------------------------------------

    def load(self, run_id: str) -> Dict[str, object]:
        """The raw JSON document of one run; raises ``KeyError`` if absent."""
        path = self.root / f"{run_id}.json"
        if not path.exists():
            raise KeyError(f"no run {run_id!r} in {self.root}")
        payload = json.loads(path.read_text(encoding="utf-8"))
        schema = payload.get("schema")
        if schema != STORE_SCHEMA_VERSION:
            raise ValueError(
                f"run {run_id!r} has schema {schema!r}; this build reads schema {STORE_SCHEMA_VERSION}"
            )
        return payload

    def load_trial_set(self, run_id: str) -> StoredRun:
        """Load a ``trial_set`` record back into metrics objects."""
        return self.trial_set_from_payload(self.load(run_id))

    @staticmethod
    def trial_set_from_payload(payload: Dict[str, object]) -> StoredRun:
        """Rehydrate an already-loaded ``trial_set`` document."""
        run_id = payload.get("run_id", "?")
        if payload.get("kind") != "trial_set":
            raise ValueError(f"run {run_id!r} is a {payload.get('kind')!r}, not a trial_set")
        return StoredRun(
            run_id=payload["run_id"],
            label=payload["label"],
            experiment=payload["experiment"],
            created_at=payload["created_at"],
            parameters=dict(payload.get("parameters", {})),
            runs=[RunMetrics.from_payload(data) for data in payload["runs"]],
            aggregate=AggregateMetrics.from_payload(payload["aggregate"]),
            wall_clock_seconds=payload.get("wall_clock_seconds"),
        )

    def list_runs(self) -> List[Dict[str, object]]:
        """One summary row per stored run, ordered by run id."""
        summaries: List[Dict[str, object]] = []
        for path in sorted(self.root.glob(f"{_RUN_PREFIX}*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except ValueError:
                continue
            if payload.get("schema") != STORE_SCHEMA_VERSION:
                continue
            summary: Dict[str, object] = {
                "run_id": payload.get("run_id", path.stem),
                "kind": payload.get("kind", "?"),
                "experiment": payload.get("experiment", ""),
                "label": payload.get("label", ""),
                "created_at": payload.get("created_at", ""),
            }
            if payload.get("kind") == "trial_set":
                aggregate = payload.get("aggregate", {})
                trials = aggregate.get("trials", 0)
                summary["trials"] = trials
                summary["success_rate"] = (
                    aggregate.get("successes", 0) / trials if trials else ""
                )
            elif payload.get("kind") == "bench":
                summary["trials"] = len(payload.get("benchmarks", []))
                summary["success_rate"] = ""
            else:
                summary["trials"] = len(payload.get("rows", []))
                summary["success_rate"] = ""
            summaries.append(summary)
        return summaries

    def resolve(
        self,
        ref: str,
        kind: Optional[str] = None,
        experiment: Optional[str] = None,
    ) -> str:
        """Resolve a run reference to a concrete run id.

        ``ref`` is either a literal run id (``run-000042``) or the symbolic
        form ``latest`` / ``latest~N`` — the newest (N-th newest) run,
        optionally restricted to a ``kind`` / ``experiment``.  Raises
        ``KeyError`` when the reference points past the available history.
        """
        if not ref.startswith("latest"):
            return ref
        match = re.fullmatch(r"latest(?:~(\d+))?", ref)
        if match is None:
            raise KeyError(f"unrecognised run reference {ref!r} (expected 'latest' or 'latest~N')")
        offset = int(match.group(1) or 0)
        rows = self.query(kind=kind, experiment=experiment)
        if offset >= len(rows):
            constraint = f" of kind {kind!r}" if kind else ""
            raise KeyError(
                f"{ref!r} needs {offset + 1} run(s){constraint} in {self.root}, found {len(rows)}"
            )
        return str(rows[-1 - offset]["run_id"])

    # -- pruning -----------------------------------------------------------

    def delete(self, run_id: str) -> None:
        """Remove one run document; raises ``KeyError`` if absent."""
        path = self.root / f"{run_id}.json"
        if not path.exists():
            raise KeyError(f"no run {run_id!r} in {self.root}")
        path.unlink()

    def query(
        self,
        kind: Optional[str] = None,
        experiment: Optional[str] = None,
        label_contains: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Filter :meth:`list_runs` by kind / experiment / label substring."""
        rows = self.list_runs()
        if kind is not None:
            rows = [row for row in rows if row["kind"] == kind]
        if experiment is not None:
            rows = [row for row in rows if row["experiment"] == experiment]
        if label_contains is not None:
            rows = [row for row in rows if label_contains in str(row["label"])]
        return rows
