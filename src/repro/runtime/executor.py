"""The trial orchestrator: fingerprint → cache lookup → backend → cache fill.

:func:`execute_trials` is the single entry point the experiment harness uses.
It resolves the backend/cache from the ambient :mod:`~repro.runtime.context`
when not given explicitly, serves every already-known trial from the cache,
runs only the remainder through the backend (in one batch, so a process pool
sees all the parallelism at once), and returns the metrics in spec order.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List, Optional, Sequence

from repro.analysis.metrics import RunMetrics
from repro.obs import get_obs
from repro.runtime.backends import ExecutionBackend
from repro.runtime.cache import ResultCache
from repro.runtime.context import UNSET as _UNSET
from repro.runtime.context import get_runtime
from repro.runtime.spec import TrialSpec, fingerprint_trial


def execute_trials(
    specs: Sequence[TrialSpec],
    backend: Optional[ExecutionBackend] = None,
    cache=_UNSET,
) -> List[RunMetrics]:
    """Execute trial specs, returning metrics in the same order.

    ``backend``/``cache`` default to the active runtime context; pass
    ``cache=None`` explicitly to bypass caching for this call only.
    """
    specs = list(specs)
    context = get_runtime()
    backend = backend if backend is not None else context.backend
    cache: Optional[ResultCache] = context.cache if cache is _UNSET else cache

    obs = get_obs()
    stats_before = cache.stats.as_dict() if (obs.metrics is not None and cache is not None) else None

    results: List[Optional[RunMetrics]] = [None] * len(specs)
    pending: List[tuple] = []
    probe_scope = (
        obs.tracer.span("cache_probe", trials=len(specs))
        if obs.tracer is not None and cache is not None
        else nullcontext()
    )
    with probe_scope as probe_span:
        for index, spec in enumerate(specs):
            if cache is None:
                pending.append((index, spec, None))
                continue
            key = fingerprint_trial(spec)
            hit = cache.get(key)
            if hit is not None:
                results[index] = hit
            else:
                pending.append((index, spec, key))
        if probe_span is not None:
            probe_span.set(hits=len(specs) - len(pending), misses=len(pending))

    if pending:
        computed = backend.run([spec for _, spec, _ in pending])
        for (index, _, key), metrics in zip(pending, computed):
            results[index] = metrics
            if cache is not None and key is not None:
                cache.put(key, metrics)

    if stats_before is not None:
        stats_after = cache.stats.as_dict()
        obs.metrics.inc_many(
            {f"cache.{name}": stats_after[name] - stats_before[name] for name in stats_after}
        )
    return results  # type: ignore[return-value]  # every slot is filled above
