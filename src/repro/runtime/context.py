"""The ambient runtime configuration.

Experiment code is layered: the CLI calls ``build_table1`` which calls
``run_trials`` which calls the backend.  Threading ``backend=``/``cache=``
arguments through every intermediate layer would churn every signature in
:mod:`repro.experiments`, so the runtime keeps one process-wide
:class:`RuntimeContext` instead.  ``run_trials`` (and anything else routing
through :func:`repro.runtime.execute_trials`) consults it whenever no explicit
backend/cache/store is passed; explicit arguments always win.

The default context is maximally conservative — serial execution, no cache,
no store — so importing the runtime never changes behaviour by itself.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.core.config import EngineConfig
from repro.runtime.backends import ExecutionBackend, SerialBackend
from repro.runtime.cache import ResultCache
from repro.runtime.store import RunStore

#: Shared "argument not provided" sentinel: lets callers pass ``cache=None`` /
#: ``store=None`` to mean "explicitly disabled" as opposed to "use the ambient
#: context".  Imported by every layer that forwards these arguments, so the
#: sentinel compares identical across modules.
UNSET = object()
_UNSET = UNSET


@dataclass(frozen=True)
class RuntimeContext:
    """How trials execute when the caller does not say otherwise.

    ``engine`` is the ambient :class:`~repro.core.config.EngineConfig` for
    trials whose spec does not carry one (``None`` means the engine default).
    Engine configuration selects execution paths that are pinned
    bit-identical, so it is fingerprint-invisible: it never alters cache keys
    or results, only how fast they are computed.
    """

    backend: ExecutionBackend
    cache: Optional[ResultCache] = None
    store: Optional[RunStore] = None
    engine: Optional[EngineConfig] = None


_active = RuntimeContext(backend=SerialBackend())


def get_runtime() -> RuntimeContext:
    """The currently active runtime context."""
    return _active


def set_default_runtime(
    backend: Optional[ExecutionBackend] = None,
    cache=_UNSET,
    store=_UNSET,
    engine=_UNSET,
) -> RuntimeContext:
    """Replace fields of the process-wide default context.

    ``backend=None`` keeps the current backend; pass ``cache=None`` /
    ``store=None`` / ``engine=None`` explicitly to clear those fields.
    """
    global _active
    updates = {}
    if backend is not None:
        updates["backend"] = backend
    if cache is not _UNSET:
        updates["cache"] = cache
    if store is not _UNSET:
        updates["store"] = store
    if engine is not _UNSET:
        updates["engine"] = engine
    _active = replace(_active, **updates)
    return _active


@contextmanager
def use_runtime(
    backend: Optional[ExecutionBackend] = None,
    cache=_UNSET,
    store=_UNSET,
    engine=_UNSET,
) -> Iterator[RuntimeContext]:
    """Temporarily override the runtime context (restored on exit)."""
    global _active
    previous = _active
    try:
        yield set_default_runtime(backend=backend, cache=cache, store=store, engine=engine)
    finally:
        _active = previous
