"""Execution backends: where trials actually run.

``ExecutionBackend`` is the single seam between "what to run" (a list of
:class:`~repro.runtime.spec.TrialSpec`) and "how to run it".  Two
implementations ship today:

* :class:`SerialBackend` — the reference implementation; runs every trial in
  the calling process, in order.
* :class:`ProcessPoolBackend` — fans the trials out over a
  :class:`concurrent.futures.ProcessPoolExecutor` in contiguous chunks.

Determinism contract: every trial carries its own fully-derived seed inside
its spec and builds a fresh adversary from that seed, so a trial's result is
a pure function of its spec.  The pool backend therefore returns results that
are **bit-identical** to the serial backend — parallelism only changes *where*
a trial runs, never *what* it computes.  (``tests/test_runtime.py`` asserts
this equality directly.)

Pickling contract: the pool backend ships specs to worker processes with
pickle, so workloads, schemes and adversary factories must be module-level
importables or dataclasses — no lambdas or closures
(:mod:`repro.experiments.factories` provides picklable factory classes).
"""

from __future__ import annotations

import math
import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import RunMetrics
from repro.core.engine import simulate
from repro.obs import FlightRecorder, get_obs, use_obs
from repro.runtime.spec import TrialSpec


def execute_trial(spec: TrialSpec) -> RunMetrics:
    """Run one trial: build a fresh adversary from the trial seed and simulate.

    ``spec.engine`` (when set) selects the execution configuration.  It rides
    inside the spec — not the ambient runtime context — so worker processes,
    which never inherit the parent's context, run the exact configuration the
    parent resolved.  Results are bit-identical whichever configuration runs.
    """
    obs = get_obs()
    recorder = obs.recorder
    if recorder is not None:
        recorder.begin_trial(seed=spec.seed, scheme=spec.scheme.name)
    tracer = obs.tracer
    if tracer is not None:
        # ``trial()`` applies the tracer's sampling policy: an unsampled trial
        # suppresses its own span and every engine span opened under it.
        with tracer.trial(seed=spec.seed, scheme=spec.scheme.name) as span:
            adversary = spec.adversary_factory(spec.seed)
            result = simulate(
                spec.workload.protocol,
                scheme=spec.scheme,
                adversary=adversary,
                seed=spec.seed,
                config=spec.engine,
            )
            if span is not None:
                span.set(success=result.success, iterations=result.iterations_run)
    else:
        adversary = spec.adversary_factory(spec.seed)
        result = simulate(
            spec.workload.protocol,
            scheme=spec.scheme,
            adversary=adversary,
            seed=spec.seed,
            config=spec.engine,
        )
    if recorder is not None:
        metrics = result.metrics
        recorder.finish_trial(
            success=result.success,
            iterations_run=metrics.iterations_run,
            iterations_budget=metrics.iterations_budget,
            noise_fraction=metrics.noise_fraction,
            corruptions=metrics.corruptions,
            tolerance=spec.scheme.nominal_noise_fraction(spec.workload.protocol.graph),
            rewinds_sent=metrics.rewinds_sent,
            hash_mismatches_detected=metrics.hash_mismatches_detected,
            hash_collisions_observed=metrics.hash_collisions_observed,
        )
    return result.metrics


def _execute_chunk(
    specs: Sequence[TrialSpec],
    forensics_capacity: Optional[int] = None,
) -> Tuple[List[RunMetrics], List[Dict[str, Any]]]:
    """Worker entry point: run a contiguous chunk of trials (module-level so
    it is picklable under every multiprocessing start method).

    Worker processes never inherit the parent's ambient obs context, so when
    the parent had a flight recorder installed it passes the ring capacity
    instead: the chunk runs under a fresh local recorder and the JSON-pure
    dumps ride home with the metrics (mirroring the distributed worker's
    ``forensics`` result-frame field)."""
    if forensics_capacity is None:
        return [execute_trial(spec) for spec in specs], []
    recorder = FlightRecorder(capacity=forensics_capacity)
    with use_obs(recorder=recorder):
        metrics = [execute_trial(spec) for spec in specs]
    return metrics, recorder.drain()


class ExecutionBackend(ABC):
    """Strategy object that turns trial specs into run metrics, in order."""

    #: Short human-readable backend name for logs and stored runs.
    name: str = "abstract"

    def __init__(self) -> None:
        #: Trials actually executed (cache hits never reach the backend).
        self.trials_executed = 0

    @abstractmethod
    def run(self, specs: Sequence[TrialSpec]) -> List[RunMetrics]:
        """Execute every spec and return metrics in the same order."""


class SerialBackend(ExecutionBackend):
    """Run every trial in the calling process (the reference semantics)."""

    name = "serial"

    def run(self, specs: Sequence[TrialSpec]) -> List[RunMetrics]:
        specs = list(specs)
        self.trials_executed += len(specs)
        return [execute_trial(spec) for spec in specs]


class ProcessPoolBackend(ExecutionBackend):
    """Fan trials out over worker processes in contiguous chunks.

    ``max_workers=None`` lets :class:`ProcessPoolExecutor` pick (the CPU
    count).  ``chunk_size=None`` targets roughly four chunks per worker, which
    amortises task submission without starving the pool on skewed workloads.
    Single-trial batches skip the pool entirely — spinning up processes for
    one simulation is pure overhead.

    The executor is created lazily on the first multi-trial batch and reused
    across ``run()`` calls — experiments like Table 1 call ``run_trials`` once
    per cell, and paying pool startup per cell would eat the speedup.  Call
    :meth:`close` (or use the backend as a context manager) to release the
    workers early; otherwise they are reaped at interpreter exit.

    Observability caveat: worker *processes* do not inherit the ambient
    :mod:`repro.obs` context, so trials executed in the pool run without
    spans or engine counter flushes.  The serial and distributed backends
    observe everything; use one of those when tracing.  The flight recorder
    is the exception: when one is ambient, each chunk runs under a fresh
    worker-local recorder and its dumps ride back with the results (see
    :func:`_execute_chunk`), so ``--forensics --jobs N`` records exactly
    what a serial run would.
    """

    name = "process-pool"

    def __init__(self, max_workers: Optional[int] = None, chunk_size: Optional[int] = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be a positive integer")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be a positive integer")
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self._executor: Optional[ProcessPoolExecutor] = None

    def _chunks(self, specs: List[TrialSpec]) -> List[List[TrialSpec]]:
        workers = self.max_workers or os.cpu_count() or 1
        size = self.chunk_size or max(1, math.ceil(len(specs) / (workers * 4)))
        return [specs[start : start + size] for start in range(0, len(specs), size)]

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a later run() restarts it)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, specs: Sequence[TrialSpec]) -> List[RunMetrics]:
        specs = list(specs)
        self.trials_executed += len(specs)
        if len(specs) <= 1:
            return [execute_trial(spec) for spec in specs]
        recorder = get_obs().recorder
        task = (
            _execute_chunk
            if recorder is None
            else partial(_execute_chunk, forensics_capacity=recorder.capacity)
        )
        chunk_results = list(self._pool().map(task, self._chunks(specs)))
        results: List[RunMetrics] = []
        for chunk_metrics, dumps in chunk_results:
            results.extend(chunk_metrics)
            if recorder is not None:
                recorder.adopt(dumps)
        return results
