"""repro.runtime — parallel trial execution, result caching, run persistence.

The runtime is the layer between the experiment harnesses (which decide
*what* to measure) and the simulator core (which measures it).  It provides:

* :class:`~repro.runtime.backends.ExecutionBackend` with
  :class:`~repro.runtime.backends.SerialBackend`,
  :class:`~repro.runtime.backends.ProcessPoolBackend` and
  :class:`~repro.runtime.distributed.DistributedBackend` (bit-identical
  results on one core, many cores or many hosts — see README.md in this
  directory);
* :class:`~repro.runtime.spec.TrialSpec` / :class:`~repro.runtime.spec.TrialKey`
  — content-addressed trial fingerprints;
* :class:`~repro.runtime.cache.ResultCache` — skip already-computed trials,
  optionally persisted to disk;
* :class:`~repro.runtime.store.RunStore` — a queryable on-disk history of
  every run;
* :mod:`~repro.runtime.analytics` — cross-run comparison
  (:func:`~repro.runtime.analytics.diff_runs`), aggregation
  (:func:`~repro.runtime.analytics.merge_runs`) and pruning
  (:func:`~repro.runtime.analytics.gc_runs`) over a store;
* :func:`~repro.runtime.context.use_runtime` — ambient configuration so deep
  call stacks (CLI → experiment → harness) share one backend/cache/store.

Typical use::

    from repro.runtime import ProcessPoolBackend, ResultCache, use_runtime

    with use_runtime(backend=ProcessPoolBackend(max_workers=4),
                     cache=ResultCache(".repro-cache")):
        rows = build_table1()          # trials fan out, repeats are cached
"""

from repro.runtime.analytics import (
    CellDelta,
    GCResult,
    MergeResult,
    RegressionThresholds,
    RunDiff,
    diff_runs,
    gc_runs,
    merge_runs,
)
from repro.runtime.backends import ExecutionBackend, ProcessPoolBackend, SerialBackend, execute_trial
from repro.runtime.cache import CACHE_SCHEMA_VERSION, CacheStats, ResultCache
from repro.runtime.context import RuntimeContext, get_runtime, set_default_runtime, use_runtime
from repro.runtime.distributed import (
    PROTOCOL_VERSION,
    DistributedBackend,
    TrialExecutionError,
    WireError,
    WorkerServer,
)
from repro.runtime.executor import execute_trials
from repro.runtime.spec import (
    TRIAL_KEY_SCHEMA,
    TrialKey,
    TrialSpec,
    build_trial_specs,
    canonical_payload,
    clear_payload_memo,
    derive_trial_seed,
    fingerprint_trial,
    memoized_payload,
    payload_memo_stats,
)
from repro.runtime.store import STORE_SCHEMA_VERSION, RunStore, StoredRun, bench_env_name

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "DistributedBackend",
    "WorkerServer",
    "TrialExecutionError",
    "WireError",
    "PROTOCOL_VERSION",
    "execute_trial",
    "execute_trials",
    "TrialSpec",
    "TrialKey",
    "TRIAL_KEY_SCHEMA",
    "build_trial_specs",
    "canonical_payload",
    "memoized_payload",
    "payload_memo_stats",
    "clear_payload_memo",
    "derive_trial_seed",
    "fingerprint_trial",
    "ResultCache",
    "CacheStats",
    "CACHE_SCHEMA_VERSION",
    "RunStore",
    "StoredRun",
    "STORE_SCHEMA_VERSION",
    "bench_env_name",
    "CellDelta",
    "RunDiff",
    "RegressionThresholds",
    "diff_runs",
    "MergeResult",
    "merge_runs",
    "GCResult",
    "gc_runs",
    "RuntimeContext",
    "get_runtime",
    "set_default_runtime",
    "use_runtime",
]
