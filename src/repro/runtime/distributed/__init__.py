"""repro.runtime.distributed — multi-host trial execution.

A stdlib-only coordinator/worker pair (sockets + length-prefixed JSON
frames; see :mod:`~repro.runtime.distributed.wire`):

* :class:`~repro.runtime.distributed.worker.WorkerServer` — the daemon
  behind ``repro worker serve``; executes trial chunks, answers cache
  probes from its local :class:`~repro.runtime.cache.ResultCache`, and
  heartbeats while a chunk runs;
* :class:`~repro.runtime.distributed.coordinator.DistributedBackend` — an
  :class:`~repro.runtime.backends.ExecutionBackend` that probes every
  worker's cache before dispatching, deals chunks with work stealing, and
  re-dispatches a dead worker's chunks to the survivors.

Results are bit-identical to :class:`~repro.runtime.backends.SerialBackend`
(specs carry fully-derived seeds; the handshake refuses version-mismatched
workers).  See ``docs/architecture.md`` and ``src/repro/runtime/README.md``
for the wire format and failure semantics.
"""

from repro.runtime.distributed.coordinator import (
    DistributedBackend,
    TrialExecutionError,
    parse_worker_address,
)
from repro.runtime.distributed.wire import PROTOCOL_VERSION, WireError
from repro.runtime.distributed.worker import WorkerServer

__all__ = [
    "DistributedBackend",
    "WorkerServer",
    "TrialExecutionError",
    "WireError",
    "PROTOCOL_VERSION",
    "parse_worker_address",
]
