"""The worker daemon: executes trial chunks and answers cache probes.

``repro worker serve --port P --cache-dir D`` runs one of these per host.
A worker is deliberately dumb: it holds no view of the overall run, it just

* answers ``probe`` requests from its local
  :class:`~repro.runtime.cache.ResultCache` (this is what makes a warm cache
  on *any* host short-circuit work cluster-wide — the coordinator probes
  every worker before dispatching anything);
* executes ``execute`` chunks trial by trial via the same
  :func:`~repro.runtime.backends.execute_trial` every other backend uses
  (the spec carries its fully-derived seed, so results are bit-identical to
  serial execution by construction), storing each fresh result into the
  local cache under its :func:`~repro.runtime.spec.fingerprint_trial` digest;
* emits ``heartbeat`` frames every ``heartbeat_interval`` seconds while a
  chunk is running, so the coordinator can tell "slow trial" from "dead
  worker" without a side channel.

The server is a thread-per-connection ``socket`` loop — trial execution is
CPU-bound Python, so one connection (the coordinator's) does the real work
and the others (probes, stats) are I/O-trivial.  ``crash_after_trials`` is a
failure-injection knob for tests and the smoke script: the worker drops dead
(closes every socket without a result frame) after executing that many
trials, which is exactly what a SIGKILL mid-chunk looks like from the
coordinator's side.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, List, Optional, Union

from pathlib import Path

from repro.obs import FlightRecorder, MetricsRegistry, Tracer, get_logger, use_obs
from repro.runtime.backends import execute_trial
from repro.runtime.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.runtime.distributed.wire import (
    PROTOCOL_VERSION,
    WireError,
    decode_specs,
    recv_frame,
    send_frame,
)
from repro.runtime.spec import TrialKey, fingerprint_trial


class WorkerCrash(Exception):
    """Raised internally when the failure-injection knob fires."""


class WorkerServer:
    """A single trial-execution worker listening on one TCP port."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[Union[str, Path]] = None,
        worker_id: Optional[str] = None,
        heartbeat_interval: float = 1.0,
        crash_after_trials: Optional[int] = None,
        status_port: Optional[int] = None,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.cache = ResultCache(cache_dir)
        self.heartbeat_interval = heartbeat_interval
        self.crash_after_trials = crash_after_trials
        #: Trials this worker actually simulated (cache probes never count).
        self.trials_executed = 0
        #: Always-on per-daemon metrics: chunks run on connection threads
        #: under ``use_obs(metrics=self.registry, ...)``, so engine/transport
        #: counters accumulate here for the whole daemon lifetime.  Exposed
        #: live by the ``--status-port`` HTTP endpoint and the ``stats`` frame.
        self.registry = MetricsRegistry()
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()[:2]
        self.worker_id = worker_id or f"{socket.gethostname()}:{self.port}"
        self._log = get_logger("worker")
        self._shutdown = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()  # guards trials_executed / cache puts
        #: The bound status port (None when the endpoint is disabled).
        self.status_port: Optional[int] = None
        self._status_server = None
        if status_port is not None:
            self._start_status_server(status_port)

    @property
    def address(self) -> str:
        """The ``host:port`` string a coordinator connects to."""
        return f"{self.host}:{self.port}"

    # -- status endpoint -----------------------------------------------------

    def status_snapshot(self) -> Dict[str, Any]:
        """Everything an operator wants at a glance: identity, progress,
        cache state and the live metrics registry."""
        return {
            "worker_id": self.worker_id,
            "address": self.address,
            "trials_executed": self.trials_executed,
            "cache_entries": len(self.cache),
            "cache": self.cache.stats.as_dict(),
            "metrics": self.registry.snapshot(),
        }

    def _start_status_server(self, port: int) -> None:
        """Serve :meth:`status_snapshot` as JSON on ``GET /`` (``--status-port``)."""
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        worker = self

        class _StatusHandler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server naming
                body = json.dumps(worker.status_snapshot(), sort_keys=True, default=str).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # keep HTTP chatter out of the daemon's stderr

        self._status_server = ThreadingHTTPServer((self.host, port), _StatusHandler)
        self.status_port = self._status_server.server_address[1]
        threading.Thread(target=self._status_server.serve_forever, daemon=True).start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerServer":
        """Serve in a background thread (for tests and in-process use)."""
        self._accept_thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop` (or a ``shutdown`` message)."""
        self._server.settimeout(0.2)  # so the loop notices the shutdown flag
        while not self._shutdown.is_set():
            try:
                connection, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listening socket closed under us by stop()
            thread = threading.Thread(target=self._serve_connection, args=(connection,), daemon=True)
            thread.start()
        self._server.close()

    def stop(self) -> None:
        """Stop accepting and unblock :meth:`serve_forever` (idempotent)."""
        self._shutdown.set()
        try:
            self._server.close()
        except OSError:
            pass
        if self._status_server is not None:
            self._status_server.shutdown()
            self._status_server.server_close()
            self._status_server = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    # -- connection handling ---------------------------------------------------

    def _serve_connection(self, connection: socket.socket) -> None:
        write_lock = threading.Lock()  # heartbeats interleave with the result frame
        try:
            with connection:
                while not self._shutdown.is_set():
                    try:
                        request = recv_frame(connection)
                    except (ConnectionError, WireError, OSError):
                        return
                    try:
                        if not self._dispatch(connection, write_lock, request):
                            return
                    except (ConnectionError, OSError):
                        # The coordinator hung up while we were answering
                        # (e.g. it timed us out mid-chunk and moved on) — an
                        # expected lifecycle event, not a worker fault.
                        return
        except WorkerCrash:
            # Failure injection: die without a goodbye, like a real crash.
            self.stop()

    def _dispatch(self, connection: socket.socket, write_lock: threading.Lock, request: Dict[str, Any]) -> bool:
        """Handle one request; returns False when the connection should end."""
        kind = request.get("type")
        if kind == "hello":
            from repro import __version__

            send_frame(connection, {
                "type": "hello",
                "worker_id": self.worker_id,
                "protocol": PROTOCOL_VERSION,
                "version": __version__,
                "cache_schema": CACHE_SCHEMA_VERSION,
                # Announced so the coordinator can size its read deadline to
                # this worker's actual pulse instead of assuming the default.
                "heartbeat_interval": self.heartbeat_interval,
            })
        elif kind == "ping":
            send_frame(connection, {"type": "pong", "worker_id": self.worker_id})
        elif kind == "probe":
            send_frame(connection, self._handle_probe(request))
        elif kind == "execute":
            self._handle_execute(connection, write_lock, request)
        elif kind == "stats":
            send_frame(connection, {
                "type": "stats",
                "worker_id": self.worker_id,
                "trials_executed": self.trials_executed,
                "cache_entries": len(self.cache),
                "cache": self.cache.stats.as_dict(),
                "metrics": self.registry.flat_snapshot(),
            })
        elif kind == "shutdown":
            send_frame(connection, {"type": "bye", "worker_id": self.worker_id})
            self._shutdown.set()
            return False
        else:
            send_frame(connection, {"type": "error", "message": f"unknown request type {kind!r}"})
        return True

    def _handle_probe(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer ``digest → result`` for every requested digest in the cache.

        Hits carry the cache schema version so the coordinator can refuse
        entries written under an incompatible layout (the digest itself
        already pins the package version — see ``fingerprint_trial``).
        """
        hits: Dict[str, Dict[str, Any]] = {}
        for digest in request.get("digests", []):
            metrics = self.cache.get(TrialKey(digest=str(digest), stable=True))
            if metrics is not None:
                hits[str(digest)] = {
                    "schema": CACHE_SCHEMA_VERSION,
                    "metrics": metrics.to_payload(),
                }
        return {"type": "probe_result", "worker_id": self.worker_id, "hits": hits}

    def _handle_execute(self, connection: socket.socket, write_lock: threading.Lock, request: Dict[str, Any]) -> None:
        """Run one chunk, heartbeating while it executes."""
        chunk_id = request.get("chunk_id")
        done = threading.Event()

        def heartbeat() -> None:
            while not done.wait(self.heartbeat_interval):
                try:
                    with write_lock:
                        send_frame(connection, {"type": "heartbeat", "worker_id": self.worker_id})
                except OSError:
                    return

        pulse = threading.Thread(target=heartbeat, daemon=True)
        pulse.start()
        trace = request.get("trace")
        tracer: Optional[Tracer] = None
        if isinstance(trace, dict) and trace.get("trace_id"):
            # The coordinator is tracing: record this chunk's spans under its
            # trace id, parented onto its dispatch span, and ship them back
            # inside the result frame for adoption.
            tracer = Tracer(
                sample_every=max(1, int(trace.get("sample_every") or 1)),
                trace_id=str(trace["trace_id"]),
                worker=self.worker_id,
            )
        forensics = request.get("forensics")
        recorder: Optional[FlightRecorder] = None
        if isinstance(forensics, dict) and forensics.get("enabled"):
            # The coordinator is flight-recording: capture this chunk's trial
            # dumps locally and ship them back inside the result frame for
            # adoption — dumps are JSON-pure, so the wire round trip is
            # lossless and coordinator-side forensics cover remote workers.
            recorder = FlightRecorder(capacity=int(forensics.get("capacity") or 4096))
        try:
            specs = decode_specs(request["specs"])
            payloads: List[Dict[str, Any]] = []

            def run_chunk() -> None:
                for spec in specs:
                    self._maybe_crash(connection)
                    metrics = execute_trial(spec)
                    with self._lock:
                        self.trials_executed += 1
                        self.cache.put(fingerprint_trial(spec), metrics)
                    payloads.append(metrics.to_payload())

            with use_obs(metrics=self.registry, tracer=tracer, recorder=recorder):
                if tracer is not None:
                    with tracer.span(
                        "worker_chunk",
                        parent_id=trace.get("parent"),
                        chunk=chunk_id,
                        trials=len(specs),
                    ):
                        run_chunk()
                else:
                    run_chunk()
            response: Dict[str, Any] = {
                "type": "result",
                "worker_id": self.worker_id,
                "chunk_id": chunk_id,
                "metrics": payloads,
            }
            if tracer is not None:
                response["spans"] = tracer.drain()
            if recorder is not None:
                response["forensics"] = recorder.drain()
        except WorkerCrash:
            raise
        except Exception as exc:  # deterministic simulation failure → report, don't die
            self._log.warning(
                "chunk_failed", worker=self.worker_id, chunk=chunk_id, error=f"{type(exc).__name__}: {exc}"
            )
            response = {
                "type": "error",
                "worker_id": self.worker_id,
                "chunk_id": chunk_id,
                "message": f"{type(exc).__name__}: {exc}",
            }
        finally:
            done.set()
        pulse.join(timeout=self.heartbeat_interval * 2)
        with write_lock:
            send_frame(connection, response)

    def _maybe_crash(self, connection: socket.socket) -> None:
        if self.crash_after_trials is not None and self.trials_executed >= self.crash_after_trials:
            # Slam the door: no result frame, no goodbye — the coordinator's
            # heartbeat timeout / connection error is the only signal.
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            connection.close()
            raise WorkerCrash()
