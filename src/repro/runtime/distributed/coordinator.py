"""The coordinator: :class:`DistributedBackend` fans trials out to workers.

One ``run(specs)`` call proceeds in two phases:

1. **Probe.**  Every spec is fingerprinted and every worker is asked which
   digests its local cache already holds.  Any hit anywhere in the cluster
   fills that result slot without dispatching the trial — the "do the work
   once, address it by content" discipline, stretched across hosts.  Hits
   whose cache-schema version does not match this build are ignored (the
   digest already pins the package version, so a matching digest under a
   matching schema is trustworthy).

2. **Dispatch.**  The remaining trials are split into contiguous chunks
   (roughly four per worker, same policy as the process pool) and dealt
   round-robin into per-worker queues.  Each worker is driven by one
   coordinator thread that drains its own queue first, then **steals** from
   the back of the longest other queue — so a fast (or cache-warm) worker
   never idles while a slow one has a backlog.  While a chunk runs, the
   worker heartbeats; if no frame arrives within ``heartbeat_timeout`` (or
   the connection drops), the worker is declared dead and its in-flight
   chunk is **re-dispatched** to the survivors.  A chunk's results are only
   ever accepted once, so a crash can never duplicate a seed.

Determinism: specs carry fully-derived seeds and workers run the same
:func:`~repro.runtime.backends.execute_trial` as every local backend, so the
returned metrics are bit-identical to :class:`~repro.runtime.backends.SerialBackend`
regardless of which worker ran what, in what order, or how many died on the
way.  The hello handshake refuses workers running a different ``repro``
version, closing the one hole in that guarantee.

Attribution: after each ``run`` the backend exposes a per-worker summary
(chunks dispatched / stolen / re-dispatched, trials executed, probe hits)
via :meth:`DistributedBackend.pop_last_attribution`; ``run_trials`` records
it into the run store so ``repro runs show`` answers "who computed this?".
"""

from __future__ import annotations

import math
import socket
import threading
import time
import warnings
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import RunMetrics
from repro.obs import FlightRecorder, MetricsRegistry, Tracer, get_logger, get_obs
from repro.runtime.backends import ExecutionBackend
from repro.runtime.cache import CACHE_SCHEMA_VERSION
from repro.runtime.distributed.wire import (
    PROTOCOL_VERSION,
    WireError,
    encode_specs,
    recv_frame,
    send_frame,
)
from repro.runtime.spec import TrialSpec, fingerprint_trial

#: A chunk: (chunk_id, [(index into the run's spec list, spec), ...]).
_Chunk = Tuple[int, List[Tuple[int, TrialSpec]]]

_log = get_logger("distributed")


def parse_worker_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; raises ``ValueError`` when malformed."""
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise ValueError(f"worker address {address!r} is not of the form host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"worker address {address!r} has a non-numeric port")
    if not (0 < port < 65536):
        raise ValueError(f"worker address {address!r} has an out-of-range port")
    return host, port


class _WorkerLink:
    """One coordinator-side connection to one worker."""

    def __init__(self, address: str, connect_timeout: float, heartbeat_timeout: float) -> None:
        self.address = address
        host, port = parse_worker_address(address)
        self.sock = socket.create_connection((host, port), timeout=connect_timeout)
        self.sock.settimeout(heartbeat_timeout)
        send_frame(self.sock, {"type": "hello"})
        hello = recv_frame(self.sock)
        # A worker configured with a slow pulse (--heartbeat-interval 15)
        # must not be declared dead by a coordinator expecting the default:
        # stretch the read deadline to at least three missed beats.
        try:
            announced = float(hello.get("heartbeat_interval") or 0.0)
        except (TypeError, ValueError):
            announced = 0.0
        if announced > 0:
            self.sock.settimeout(max(heartbeat_timeout, announced * 3))
        if hello.get("type") != "hello":
            raise WireError(f"worker {address} answered the handshake with {hello.get('type')!r}")
        if hello.get("protocol") != PROTOCOL_VERSION:
            raise WireError(
                f"worker {address} speaks protocol {hello.get('protocol')!r}, "
                f"this coordinator speaks {PROTOCOL_VERSION}"
            )
        from repro import __version__

        if hello.get("version") != __version__:
            raise WireError(
                f"worker {address} runs repro {hello.get('version')!r}, coordinator runs "
                f"{__version__!r} — mixed versions cannot guarantee bit-identical results"
            )
        self.worker_id = str(hello.get("worker_id") or address)

    def ping(self) -> None:
        """One liveness round-trip; raises when the link is no longer usable."""
        send_frame(self.sock, {"type": "ping"})
        if recv_frame(self.sock).get("type") != "pong":
            raise WireError(f"worker {self.address} answered a ping with something else")

    def probe(self, digests: Sequence[str]) -> Dict[str, Dict[str, Any]]:
        send_frame(self.sock, {"type": "probe", "digests": list(digests)})
        response = recv_frame(self.sock)
        if response.get("type") != "probe_result":
            raise WireError(f"worker {self.address} answered a probe with {response.get('type')!r}")
        hits = response.get("hits", {})
        return hits if isinstance(hits, dict) else {}

    def execute(
        self,
        chunk_id: int,
        specs: Sequence[TrialSpec],
        trace: Optional[Dict[str, Any]] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        recorder: Optional[FlightRecorder] = None,
    ) -> List[RunMetrics]:
        """Run one chunk remotely; heartbeat frames reset the read timeout.

        ``trace`` rides inside the execute frame so the worker records this
        chunk's spans under the coordinator's trace id; the result frame's
        ``spans`` are adopted into ``tracer``.  ``registry`` receives the
        observed inter-frame gap as the ``distributed.heartbeat_seconds``
        histogram — the live measure of how close a worker runs to its
        declared pulse (and how near the timeout the cluster is operating).
        ``recorder`` turns on the worker-side flight recorder for this chunk
        (sized to the coordinator recorder's capacity); the result frame's
        ``forensics`` dumps are adopted into it.  Dumps only ever travel in
        the result frame, so a chunk re-dispatched after a worker death can
        never duplicate a trial's dump.
        """
        try:
            encoded = encode_specs(specs)
        except Exception as exc:
            # Unpicklable spec (lambda/closure workload or factory): a
            # deterministic caller error, not a worker failure — same
            # contract ProcessPoolBackend imposes, said out loud.
            raise TrialExecutionError(
                "trial specs must be picklable to cross the wire (module-level "
                f"functions or dataclasses, never lambdas/closures): {exc}"
            ) from exc
        request: Dict[str, Any] = {"type": "execute", "chunk_id": chunk_id, "specs": encoded}
        if trace is not None:
            request["trace"] = trace
        if recorder is not None:
            request["forensics"] = {"enabled": True, "capacity": recorder.capacity}
        send_frame(self.sock, request)
        previous_frame = time.monotonic()
        while True:
            frame = recv_frame(self.sock)  # socket timeout = heartbeat_timeout
            if registry is not None:
                now = time.monotonic()
                registry.observe("distributed.heartbeat_seconds", now - previous_frame)
                previous_frame = now
            kind = frame.get("type")
            if kind == "heartbeat":
                continue
            if kind == "result":
                payloads = frame.get("metrics", [])
                if frame.get("chunk_id") != chunk_id or len(payloads) != len(specs):
                    raise WireError(f"worker {self.address} returned a mismatched result frame")
                if tracer is not None:
                    tracer.adopt(frame.get("spans") or ())
                if recorder is not None:
                    recorder.adopt(frame.get("forensics") or ())
                return [RunMetrics.from_payload(payload) for payload in payloads]
            if kind == "error":
                raise TrialExecutionError(
                    f"worker {self.worker_id} ({self.address}) failed a trial: {frame.get('message')}"
                )
            raise WireError(f"worker {self.address} sent unexpected frame {kind!r} during execute")

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class TrialExecutionError(RuntimeError):
    """A trial itself raised on a worker — deterministic, so never re-dispatched."""


class _WorkQueues:
    """Per-worker chunk queues with stealing, re-dispatch and completion
    tracking.

    The subtlety is liveness: a survivor whose queues look empty must not
    exit while another worker still has a chunk in flight — that chunk may
    come back via :meth:`requeue` if its worker dies.  :meth:`take` therefore
    blocks on a condition variable until there is either work to hand out or
    provably none left anywhere (no queued chunks, nothing in flight)."""

    def __init__(self, worker_ids: Sequence[str]) -> None:
        self._condition = threading.Condition()
        self._queues: Dict[str, deque] = {worker_id: deque() for worker_id in worker_ids}
        self._redispatch: deque = deque()
        self._in_flight = 0
        self._aborted = False

    def assign(self, worker_id: str, chunk: _Chunk) -> None:
        self._queues[worker_id].append(chunk)

    def take(self, worker_id: str) -> Optional[Tuple[_Chunk, str]]:
        """Next chunk for ``worker_id`` and how it got it (``own`` /
        ``stolen`` / ``redispatched``); blocks while work might still come
        back from a dying worker; None when the run is drained or aborted."""
        with self._condition:
            while True:
                if self._aborted:
                    return None
                if self._redispatch:
                    self._in_flight += 1
                    return self._redispatch.popleft(), "redispatched"
                own = self._queues.get(worker_id)
                if own:
                    self._in_flight += 1
                    return own.popleft(), "own"
                victim = max(
                    (queue for key, queue in self._queues.items() if key != worker_id and queue),
                    key=len,
                    default=None,
                )
                if victim is not None:
                    self._in_flight += 1
                    return victim.pop(), "stolen"  # steal from the back: coldest work
                if self._in_flight == 0:
                    return None
                self._condition.wait()

    def done(self, chunk_completed: bool, chunk: Optional[_Chunk] = None) -> None:
        """A taken chunk finished (``chunk_completed``) or its worker died
        (``chunk`` goes back into the re-dispatch pool)."""
        with self._condition:
            self._in_flight -= 1
            if not chunk_completed and chunk is not None:
                self._redispatch.append(chunk)
            self._condition.notify_all()

    def drop_queue(self, worker_id: str) -> None:
        """Move a dead worker's unstarted chunks into the re-dispatch pool."""
        with self._condition:
            for chunk in self._queues.pop(worker_id, ()):  # preserves order
                self._redispatch.append(chunk)
            self._condition.notify_all()

    def abort(self) -> None:
        """Stop handing out work (a trial failed deterministically)."""
        with self._condition:
            self._aborted = True
            self._condition.notify_all()

    def outstanding(self) -> int:
        with self._condition:
            return len(self._redispatch) + sum(len(queue) for queue in self._queues.values())


class DistributedBackend(ExecutionBackend):
    """Execute trials on remote workers with cluster-wide cache reuse.

    ``workers`` is a list of ``host:port`` strings (one per
    ``repro worker serve`` daemon).  ``chunk_size=None`` targets roughly four
    chunks per worker.  ``heartbeat_timeout`` must comfortably exceed the
    workers' heartbeat interval (default 1 s); it bounds how long a dead
    worker can stall the run.  ``probe_cache=False`` skips the probe phase
    (every trial is dispatched even if a worker already knows the answer).

    Worker connections are dialled lazily and **reused across ``run()``
    calls** — an experiment grid calls ``run_trials`` once per cell, and
    paying TCP + handshake per cell would eat the speedup (the process
    pool's reused-executor rationale, across hosts).  Each run revalidates
    kept links with a ping and redials the ones that fail it.  Call
    :meth:`close` (or use the backend as a context manager) to drop the
    connections early; otherwise they die with the process.
    """

    name = "distributed"

    def __init__(
        self,
        workers: Sequence[str],
        chunk_size: Optional[int] = None,
        heartbeat_timeout: float = 10.0,
        connect_timeout: float = 5.0,
        probe_cache: bool = True,
    ) -> None:
        super().__init__()
        # Deduplicate while preserving order: the same address twice is the
        # same worker, and two driver threads must never share one socket.
        addresses = list(dict.fromkeys(address.strip() for address in workers if address.strip()))
        if not addresses:
            raise ValueError("DistributedBackend needs at least one worker address")
        for address in addresses:
            parse_worker_address(address)  # fail fast on malformed flags
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be a positive integer")
        self.workers = addresses
        self.chunk_size = chunk_size
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_timeout = connect_timeout
        self.probe_cache = probe_cache
        self._last_attribution: Optional[Dict[str, object]] = None
        self._connect_failures: List[str] = []
        #: Worker links kept open across run() calls — an experiment grid
        #: calls run_trials once per cell, and paying TCP + handshake per
        #: cell would eat the speedup (same rationale as the process pool's
        #: reused executor).  Revalidated with a ping and reconnected as
        #: needed at the start of every run.
        self._links: Dict[str, _WorkerLink] = {}

    # -- attribution ---------------------------------------------------------

    def pop_last_attribution(self) -> Optional[Dict[str, object]]:
        """The per-worker summary of the most recent ``run`` (then cleared, so
        a caller can never attribute one cell's work to another)."""
        attribution, self._last_attribution = self._last_attribution, None
        return attribution

    # -- execution -----------------------------------------------------------

    def _connect(self) -> List[_WorkerLink]:
        """Live links to every reachable worker: existing links revalidated
        with a ping (a restarted or dead worker fails it and is reconnected
        from scratch), missing ones dialled fresh."""
        links: List[_WorkerLink] = []
        failures: List[str] = []
        for address in self.workers:
            link = self._links.pop(address, None)
            if link is not None:
                try:
                    link.ping()
                except (OSError, ConnectionError, WireError):
                    link.close()
                    link = None
            if link is None:
                try:
                    link = _WorkerLink(address, self.connect_timeout, self.heartbeat_timeout)
                except (OSError, WireError) as exc:
                    failures.append(f"{address}: {exc}")
                    continue
            self._links[address] = link
            links.append(link)
        if not links:
            raise RuntimeError(
                "no distributed worker is reachable — " + "; ".join(failures)
            )
        if failures:
            # Running degraded is better than failing a long sweep, but never
            # silently: the operator asked for a bigger cluster than they got.
            # The warning stays (callers assert on it); the structured event
            # carries the same facts for log aggregation.
            _log.warning(
                "cluster_degraded",
                reachable=len(links),
                requested=len(self.workers),
                unreachable="; ".join(failures),
            )
            warnings.warn(
                f"distributed run degraded to {len(links)}/{len(self.workers)} worker(s); "
                "unreachable: " + "; ".join(failures),
                RuntimeWarning,
                stacklevel=3,
            )
        self._connect_failures = failures
        # Queues, stats and attribution are keyed by worker_id; ids are
        # worker-chosen (--worker-id), so collisions across links must be
        # disambiguated or two workers would merge into one queue/row.
        seen: Dict[str, int] = {}
        for link in links:
            count = seen.get(link.worker_id, 0)
            seen[link.worker_id] = count + 1
            if count:
                link.worker_id = f"{link.worker_id}[{link.address}]"
        return links

    def _discard(self, link: _WorkerLink) -> None:
        """Forget a link whose worker died; the next run redials it."""
        self._links.pop(link.address, None)
        link.close()

    def close(self) -> None:
        """Drop every kept worker connection (idempotent; run() redials)."""
        for link in list(self._links.values()):
            link.close()
        self._links.clear()

    def __enter__(self) -> "DistributedBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, specs: Sequence[TrialSpec]) -> List[RunMetrics]:
        specs = list(specs)
        results: List[Optional[RunMetrics]] = [None] * len(specs)
        if not specs:
            self._last_attribution = {"backend": self.name, "workers": {}}
            return []
        # Capture the ambient obs context on the caller's thread: the drive
        # threads below cannot see its thread-local scope, so the registry,
        # tracer and parent span id travel to them explicitly.
        obs = get_obs()
        registry, tracer, recorder = obs.metrics, obs.tracer, obs.recorder
        links = self._connect()
        stats: Dict[str, Dict[str, int]] = {
            link.worker_id: {
                "dispatched": 0, "stolen": 0, "redispatched": 0,
                "trials_executed": 0, "cache_hits": 0,
            }
            for link in links
        }
        try:
            keys = [fingerprint_trial(spec) for spec in specs]
            if self.probe_cache:
                self._probe_phase(links, keys, results, stats)
            pending = [(index, spec) for index, spec in enumerate(specs) if results[index] is None]
            self.trials_executed += len(pending)
            if pending:
                if not links:  # every worker fell over during the probe phase
                    raise RuntimeError(
                        "every distributed worker died before dispatch "
                        f"({len(pending)} trial(s) unassigned)"
                    )
                self._dispatch_phase(links, pending, results, stats, registry, tracer, recorder)
        finally:
            self._last_attribution = {
                "backend": self.name,
                "workers": stats,
                "trials_total": len(specs),
                "remote_cache_hits": sum(row["cache_hits"] for row in stats.values()),
            }
            if self._connect_failures:
                # A degraded run must say so in its stored record, not just
                # in a transient warning.
                self._last_attribution["unreachable_workers"] = list(self._connect_failures)
            if registry is not None:
                registry.inc_many({
                    "distributed.runs": 1,
                    "distributed.trials_total": len(specs),
                    "distributed.chunks_dispatched": sum(r["dispatched"] for r in stats.values()),
                    "distributed.chunks_stolen": sum(r["stolen"] for r in stats.values()),
                    "distributed.chunks_redispatched": sum(r["redispatched"] for r in stats.values()),
                    "distributed.remote_trials_executed": sum(r["trials_executed"] for r in stats.values()),
                    "distributed.remote_cache_hits": sum(r["cache_hits"] for r in stats.values()),
                    "distributed.unreachable_workers": len(self._connect_failures),
                })
        missing = [index for index, value in enumerate(results) if value is None]
        if missing:  # pragma: no cover - defended against above, belt and braces
            raise RuntimeError(f"{len(missing)} trial(s) were never executed")
        return results  # type: ignore[return-value]

    def _probe_phase(
        self,
        links: List[_WorkerLink],
        keys: Sequence[Any],
        results: List[Optional[RunMetrics]],
        stats: Dict[str, Dict[str, int]],
    ) -> None:
        """Fill result slots from any worker's warm cache before dispatching.

        A link whose probe fails is removed from this run entirely (and from
        the reuse map): after a timeout the worker's answer may still be in
        the stream, and dispatching on a desynchronized link would misread
        that stale frame and condemn a perfectly healthy worker."""
        for link in list(links):
            unresolved = {
                keys[index].digest: index
                for index in range(len(results))
                if results[index] is None and keys[index].stable
            }
            if not unresolved:
                return
            try:
                hits = link.probe(list(unresolved))
            except (OSError, ConnectionError, WireError) as exc:
                _log.warning(
                    "worker_probe_failed",
                    worker=link.worker_id,
                    address=link.address,
                    error=f"{type(exc).__name__}: {exc}",
                )
                self._discard(link)
                links.remove(link)
                continue
            for digest, entry in hits.items():
                index = unresolved.get(digest)
                if index is None or results[index] is not None:
                    continue
                if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA_VERSION:
                    continue  # stale/incompatible cache layout: recompute instead
                try:
                    results[index] = RunMetrics.from_payload(entry["metrics"])
                except (KeyError, TypeError):
                    continue
                stats[link.worker_id]["cache_hits"] += 1

    def _dispatch_phase(
        self,
        links: List[_WorkerLink],
        pending: List[Tuple[int, TrialSpec]],
        results: List[Optional[RunMetrics]],
        stats: Dict[str, Dict[str, int]],
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        recorder: Optional[FlightRecorder] = None,
    ) -> None:
        # The caller's innermost span (run_trials' trial_set span) becomes
        # the explicit parent of every dispatch_chunk span — drive threads
        # have empty thread-local span stacks, so auto-parenting cannot work.
        parent_span = tracer.current_span_id() if tracer is not None else None
        chunk_size = self.chunk_size or max(1, math.ceil(len(pending) / (len(links) * 4)))
        chunks: List[_Chunk] = [
            (chunk_id, pending[start : start + chunk_size])
            for chunk_id, start in enumerate(range(0, len(pending), chunk_size))
        ]
        queues = _WorkQueues([link.worker_id for link in links])
        for position, chunk in enumerate(chunks):
            queues.assign(links[position % len(links)].worker_id, chunk)

        errors: List[BaseException] = []
        results_lock = threading.Lock()

        def drive(link: _WorkerLink) -> None:
            while True:
                taken = queues.take(link.worker_id)
                if taken is None:
                    return
                chunk, provenance = taken
                chunk_id, members = chunk
                chunk_specs = [spec for _, spec in members]
                try:
                    if tracer is not None:
                        with tracer.span(
                            "dispatch_chunk",
                            parent_id=parent_span,
                            chunk=chunk_id,
                            worker=link.worker_id,
                            provenance=provenance,
                            trials=len(members),
                        ) as dispatch_span:
                            metrics = link.execute(
                                chunk_id,
                                chunk_specs,
                                trace={
                                    "trace_id": tracer.trace_id,
                                    "parent": dispatch_span.span_id if dispatch_span is not None else None,
                                    "sample_every": tracer.sample_every,
                                },
                                registry=registry,
                                tracer=tracer,
                                recorder=recorder,
                            )
                    else:
                        metrics = link.execute(
                            chunk_id, chunk_specs, registry=registry, recorder=recorder
                        )
                except TrialExecutionError as exc:
                    # Deterministic failure: re-dispatching would fail again
                    # everywhere.  Surface it and stop the whole run.
                    with results_lock:
                        errors.append(exc)
                    queues.done(chunk_completed=False, chunk=chunk)
                    queues.abort()
                    return
                except (OSError, ConnectionError, WireError, socket.timeout) as exc:
                    # Dead worker (crash, kill, network): give its work back
                    # and forget the connection so the next run redials.
                    _log.warning(
                        "worker_dead",
                        worker=link.worker_id,
                        address=link.address,
                        chunk=chunk_id,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    self._discard(link)
                    queues.done(chunk_completed=False, chunk=chunk)
                    queues.drop_queue(link.worker_id)
                    return
                except BaseException as exc:  # never strand in-flight work
                    with results_lock:
                        errors.append(exc)
                    queues.done(chunk_completed=False, chunk=chunk)
                    queues.abort()
                    return
                with results_lock:
                    stats[link.worker_id]["dispatched"] += 1
                    if provenance == "stolen":
                        stats[link.worker_id]["stolen"] += 1
                    elif provenance == "redispatched":
                        stats[link.worker_id]["redispatched"] += 1
                    stats[link.worker_id]["trials_executed"] += len(members)
                    for (index, _), value in zip(members, metrics):
                        results[index] = value
                queues.done(chunk_completed=True)

        threads = [threading.Thread(target=drive, args=(link,), daemon=True) for link in links]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        if queues.outstanding():
            raise RuntimeError(
                "every distributed worker died before the run finished "
                f"({queues.outstanding()} chunk(s) left)"
            )
