"""The coordinator↔worker wire format: length-prefixed JSON frames.

Everything on the wire is a *frame*: a 4-byte big-endian length followed by
that many bytes of UTF-8 JSON encoding one message object.  JSON keeps the
protocol inspectable (``nc`` + a hex dump is a debugger) and stdlib-only;
the length prefix makes message boundaries explicit so a reader never has
to guess where one JSON document ends and the next begins.

Trial specs are the one payload JSON cannot carry: they contain workload /
scheme / adversary-factory objects.  Those cross the wire pickled and
base64-wrapped inside a JSON field (:func:`encode_specs` /
:func:`decode_specs`) — the exact same pickling contract
:class:`~repro.runtime.backends.ProcessPoolBackend` already imposes
(module-level importables and dataclasses, never lambdas), extended across
hosts.  Both ends must therefore run the same ``repro`` version; the hello
handshake enforces that, which is also what makes remote execution
bit-identical to local execution.

Message vocabulary (``type`` field):

==============  =======================  =====================================
request         response                 meaning
==============  =======================  =====================================
``hello``       ``hello``                handshake: ids + version check
``ping``        ``pong``                 liveness probe
``probe``       ``probe_result``         which of these digests do you have?
``execute``     ``heartbeat``* then      run this chunk of pickled specs
                ``result`` / ``error``   (heartbeats interleave while running)
``stats``       ``stats``                executed counter + cache counters
``shutdown``    ``bye``                  stop serving after this connection
==============  =======================  =====================================

Tracing rides the existing vocabulary instead of extending it: an
``execute`` request may carry an optional ``trace`` object —
``{"trace_id", "parent", "sample_every"}`` — and the matching ``result``
response then carries ``spans``, the finished span dicts the worker's local
:class:`~repro.obs.trace.Tracer` recorded under that trace id.  The
coordinator adopts those spans into its own tracer, so one distributed
sweep yields one coherent cross-host trace.  Both fields are optional, so
tracing-on and tracing-off peers interoperate within one protocol version.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import Any, Dict, List, Sequence

#: Bump when the frame layout or message vocabulary changes incompatibly.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame; anything larger is a protocol violation
#: (a length prefix of garbage bytes decodes to a huge number — better to
#: fail loudly than to allocate gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(RuntimeError):
    """A protocol violation: oversized frame, malformed JSON, bad handshake."""


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialise ``message`` and write it as one length-prefixed frame."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
    sock.sendall(_LENGTH.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Read exactly one frame; raises ``ConnectionError`` on a closed peer."""
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_FRAME_BYTES:
        raise WireError(f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})")
    try:
        message = json.loads(_recv_exact(sock, length).decode("utf-8"))
    except ValueError as exc:
        raise WireError(f"malformed frame payload: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise WireError("frame payload is not a message object with a 'type' field")
    return message


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    buffer = bytearray()
    while len(buffer) < count:
        chunk = sock.recv(count - len(buffer))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        buffer.extend(chunk)
    return bytes(buffer)


def encode_specs(specs: Sequence[Any]) -> str:
    """Pickle a chunk of :class:`~repro.runtime.spec.TrialSpec` for transport.

    One pickle for the whole chunk, so specs that share a workload/scheme
    object (every sweep grid does) ship — and unpickle — that object once.
    """
    return base64.b64encode(pickle.dumps(list(specs))).decode("ascii")


def decode_specs(text: str) -> List[Any]:
    """Inverse of :func:`encode_specs`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))
