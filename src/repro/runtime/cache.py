"""Content-addressed caching of trial results.

A trial's result is a pure function of its :class:`~repro.runtime.spec.TrialKey`
(see the determinism contract in :mod:`repro.runtime.backends`), so finished
trials can be skipped on re-run.  :class:`ResultCache` keeps an in-memory map
and, when given a directory, mirrors every stored result to an append-only
JSON-lines file so the cache survives across processes:

    <cache_dir>/trials.jsonl     one {"schema", "key", "metrics"} object per line

Entries carry a schema version; lines written by an incompatible version (or
corrupted, e.g. truncated by a crash mid-append) are skipped on load rather
than poisoning the cache.  Unstable keys — specs containing lambdas/closures
that have no canonical fingerprint — always miss and are never stored.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.analysis.metrics import RunMetrics
from repro.obs import get_obs
from repro.runtime.spec import TrialKey

#: Bump when the on-disk entry format changes incompatibly.
#: 2 = the 2.0.0 CRS seed-derivation break: entries written by pre-break
#: versions may hold CRS results the current code would compute differently,
#: so they are rejected wholesale on load (skipped, never served) and swept by
#: ``repro cache compact``.
CACHE_SCHEMA_VERSION = 2


@dataclass
class CacheStats:
    """Hit/miss/store counters, reset per :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


class ResultCache:
    """In-memory trial-result cache with an optional JSON-lines disk mirror."""

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        self._memory: Dict[str, RunMetrics] = {}
        self.stats = CacheStats()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._path: Optional[Path] = None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._path = self.cache_dir / "trials.jsonl"
            self._load()

    def _load(self) -> None:
        if self._path is None or not self._path.exists():
            return
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if record.get("schema") != CACHE_SCHEMA_VERSION:
                        continue
                    self._memory[record["key"]] = RunMetrics.from_payload(record["metrics"])
                except (ValueError, KeyError, TypeError):
                    continue  # skip corrupt / truncated lines

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, key: TrialKey) -> Optional[RunMetrics]:
        """The cached result for ``key``, or None (unstable keys always miss)."""
        if not key.stable:
            self.stats.misses += 1
            return None
        hit = self._memory.get(key.digest)
        if hit is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return hit

    def put(self, key: TrialKey, metrics: RunMetrics) -> None:
        """Store a freshly computed result (no-op for unstable keys)."""
        if not key.stable:
            return
        self._memory[key.digest] = metrics
        self.stats.stores += 1
        if self._path is not None:
            record = {
                "schema": CACHE_SCHEMA_VERSION,
                "key": key.digest,
                "metrics": metrics.to_payload(),
            }
            with self._path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    def compact(self) -> Dict[str, int]:
        """Rewrite ``trials.jsonl`` keeping only the latest entry per key.

        The mirror is append-only, so a key that was re-stored (or a file
        that accumulated lines from an older ``CACHE_SCHEMA_VERSION``) grows
        without bound; ``repro cache compact`` folds it back to one line per
        live key.  Version-mismatched and corrupt lines are dropped — they
        would be skipped on every load anyway.  The rewrite goes through a
        temp file + atomic rename, so a concurrent reader sees either the
        old file or the new one, never a half-written mix.

        A live writer (a ``repro worker serve`` daemon appending results) is
        tolerated: after the main pass, any bytes appended since are drained
        into the rewrite — repeatedly, until a drain comes up empty — before
        the rename.  The residual window between the last empty drain and
        the rename can in principle drop a line that was being appended at
        that exact instant; a cache line is a recomputable memo, so the cost
        is one re-simulated trial, never a wrong result.

        Returns ``{"kept", "dropped_superseded", "dropped_invalid"}``.
        """
        if self._path is None:
            raise ValueError("compact needs a disk-backed cache (pass cache_dir)")
        latest: Dict[str, str] = {}  # key digest → latest raw line (last one wins)
        counts = {"invalid": 0, "total": 0}
        pending = b""  # a trailing fragment without its newline yet

        def consume(chunk: bytes, final: bool = False) -> None:
            nonlocal pending
            lines = (pending + chunk).split(b"\n")
            pending = lines.pop()  # empty when the chunk ended on a newline
            if final and pending:
                lines.append(pending)
                pending = b""
            for raw in lines:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                counts["total"] += 1
                try:
                    record = json.loads(line)
                    if record.get("schema") != CACHE_SCHEMA_VERSION:
                        counts["invalid"] += 1
                        continue
                    latest[str(record["key"])] = line
                except (ValueError, KeyError, TypeError):
                    counts["invalid"] += 1

        offset = 0
        if self._path.exists():
            data = self._path.read_bytes()
            offset = len(data)
            consume(data)
        temp_path = self._path.with_name(f"{self._path.name}.compact-{os.getpid()}")
        try:
            while True:  # drain concurrent appends until none arrive
                try:
                    with self._path.open("rb") as handle:
                        handle.seek(offset)
                        tail = handle.read()
                except FileNotFoundError:
                    tail = b""
                if not tail:
                    break
                offset += len(tail)
                consume(tail)
            consume(b"", final=True)
            with temp_path.open("w", encoding="utf-8") as handle:
                for line in latest.values():
                    handle.write(line + "\n")
            os.replace(temp_path, self._path)
        finally:
            temp_path.unlink(missing_ok=True)
        outcome = {
            "kept": len(latest),
            "dropped_superseded": counts["total"] - counts["invalid"] - len(latest),
            "dropped_invalid": counts["invalid"],
        }
        registry = get_obs().metrics
        if registry is not None:
            registry.inc_many(
                {
                    "cache.compactions": 1,
                    "cache.compact_dropped": outcome["dropped_superseded"] + outcome["dropped_invalid"],
                }
            )
        return outcome

    def clear(self) -> None:
        """Drop the in-memory map and the disk mirror (if any)."""
        self._memory.clear()
        if self._path is not None and self._path.exists():
            self._path.unlink()
