"""Cross-run analytics over a :class:`~repro.runtime.store.RunStore`.

The store remembers runs; this module compares, combines and prunes them:

* :func:`diff_runs` — per-cell success-rate and wall-clock deltas between two
  persisted runs, classified against configurable
  :class:`RegressionThresholds` so CI can gate on the result (`repro runs
  diff` exits non-zero when any cell regresses);
* :func:`merge_runs` — union the trial sets of identical cells across runs,
  growing the effective sample size without re-running a single simulation;
* :func:`gc_runs` — age/count-based pruning that never drops the latest run
  of any experiment, so a store can run unattended without growing forever.

A *cell* is the unit of comparison: for ``trial_set`` records it is the
record's label (one record is one experimental cell), for ``bench`` records
it is one benchmark of the session, and for ``report`` records it is one row
keyed on the row's identity columns (its string-valued entries — scheme,
topology, noise type, …), so a regenerated Table 1 diffs row against row and
is gated the same way trial sets and benches are.  Diffing runs of different
kinds is refused — the metrics are not comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import summarize_runs
from repro.runtime.store import RunStore, StoredRun

#: Cell statuses a :class:`CellDelta` can carry.  Only ``regression`` makes
#: :attr:`RunDiff.has_regression` true; cells present in a single run are
#: reported (they make the diff *informative*) but never gate CI on their own.
STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVED = "improved"
STATUS_ONLY_BASELINE = "only-baseline"
STATUS_ONLY_CANDIDATE = "only-candidate"


@dataclass(frozen=True)
class RegressionThresholds:
    """What counts as a regression when diffing two runs.

    ``max_wall_clock_increase`` is fractional: ``0.25`` tolerates candidate
    wall clocks up to 25% above the baseline.  ``max_success_rate_drop`` is
    absolute: ``0.0`` means any drop in success rate regresses.
    ``min_wall_clock_seconds`` is an absolute floor below which wall-clock
    ratios never gate — on sub-millisecond cells the scheduler jitter alone
    exceeds any sane ratio, and a CI gate that flakes is a gate that gets
    deleted.  ``max_counter_increase`` is fractional and applies only to the
    ``metrics`` view: obs counters are deterministic (rounds exchanged, hashes
    derived, symbols dispatched), so the default of ``0.0`` — any increase
    regresses — is not flaky the way a wall-clock gate would be.
    """

    max_wall_clock_increase: float = 0.25
    max_success_rate_drop: float = 0.0
    min_wall_clock_seconds: float = 0.005
    max_counter_increase: float = 0.0

    def __post_init__(self) -> None:
        if self.max_wall_clock_increase < 0:
            raise ValueError("max_wall_clock_increase must be >= 0")
        if self.max_success_rate_drop < 0:
            raise ValueError("max_success_rate_drop must be >= 0")
        if self.min_wall_clock_seconds < 0:
            raise ValueError("min_wall_clock_seconds must be >= 0")
        if self.max_counter_increase < 0:
            raise ValueError("max_counter_increase must be >= 0")


@dataclass(frozen=True)
class CellDelta:
    """One (cell, metric) comparison between two runs."""

    cell: str
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    status: str

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.candidate is None:
            return None
        return self.candidate - self.baseline

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline is None or self.candidate is None or self.baseline == 0:
            return None
        return self.candidate / self.baseline

    def as_dict(self) -> Dict[str, object]:
        def fmt(value: Optional[float]) -> object:
            return "-" if value is None else value

        return {
            "cell": self.cell,
            "metric": self.metric,
            "baseline": fmt(self.baseline),
            "candidate": fmt(self.candidate),
            "delta": fmt(self.delta),
            "ratio": fmt(self.ratio),
            "status": self.status,
        }


@dataclass(frozen=True)
class RunDiff:
    """The full comparison of two runs, one :class:`CellDelta` per metric."""

    baseline_id: str
    candidate_id: str
    kind: str
    thresholds: RegressionThresholds
    rows: List[CellDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[CellDelta]:
        return [row for row in self.rows if row.status == STATUS_REGRESSION]

    @property
    def has_regression(self) -> bool:
        return bool(self.regressions)

    def as_rows(self) -> List[Dict[str, object]]:
        return [row.as_dict() for row in self.rows]


def _trial_set_cells(payload: Dict[str, object]) -> Tuple[Dict[str, Dict[str, float]], bool]:
    stored = RunStore.trial_set_from_payload(payload)
    metrics: Dict[str, float] = {
        "success_rate": stored.aggregate.success_rate,
        "mean_overhead": stored.aggregate.mean_overhead,
    }
    if stored.wall_clock_seconds is not None:
        metrics["wall_clock_seconds"] = float(stored.wall_clock_seconds)
    # A run that served any trial from the result cache did not pay for that
    # work, so its wall clock measures cache state, not this build's speed —
    # never gate on it (in either direction: a warm baseline would fake a
    # regression, a warm candidate would mask one).
    wall_clock_gated = not payload.get("cached_trials")
    return {stored.label: metrics}, wall_clock_gated


def _bench_cells(payload: Dict[str, object]) -> Tuple[Dict[str, Dict[str, float]], bool]:
    cells: Dict[str, Dict[str, float]] = {}
    for row in payload.get("benchmarks", []):
        name = str(row.get("fullname") or row.get("name") or "")
        if not name or row.get("mean_seconds") is None:
            continue
        cells[name] = {"wall_clock_seconds": float(row["mean_seconds"])}
    return cells, True


def _report_cells(payload: Dict[str, object]) -> Tuple[Dict[str, Dict[str, float]], bool]:
    """One cell per report row, keyed on the row's identity columns.

    A report row mixes identity (which experimental cell this is: scheme,
    topology, noise type, measured-vs-analytical kind — the string-valued
    entries) with measurements (the numeric entries).  The identity columns
    become the cell key, the numeric columns its metrics; booleans count as
    numeric (``success``-style flags diff as 1.0/0.0).  Rows whose identity
    columns collide — or rows with no string column at all — fall back to
    their position, which is stable because report generators emit rows in a
    deterministic order.
    """
    cells: Dict[str, Dict[str, float]] = {}
    for position, row in enumerate(payload.get("rows", [])):
        if not isinstance(row, Mapping):
            continue
        identity = ", ".join(
            f"{key}={row[key]}" for key in sorted(row) if isinstance(row[key], str)
        )
        cell = identity or f"row[{position}]"
        if cell in cells:
            cell = f"{cell} [{position}]"
        metrics: Dict[str, float] = {}
        for key in sorted(row):
            value = row[key]
            if isinstance(value, bool) or isinstance(value, (int, float)):
                metrics[key] = float(value)
        cells[cell] = metrics
    return cells, True


def _metrics_cells(payload: Dict[str, object]) -> Tuple[Dict[str, Dict[str, float]], bool]:
    """The ``metrics`` view over a ``trial_set``: the cell's obs counters.

    Requires the run to have been recorded under ``--obs`` (the harness only
    stores ``obs_metrics`` when a metrics registry was active) — a missing
    block is an explicit error rather than an empty diff, because an empty
    diff in CI reads as "no regressions" when it actually means "no data".
    """
    obs_metrics = payload.get("obs_metrics")
    if not isinstance(obs_metrics, Mapping) or not obs_metrics:
        raise ValueError(
            f"run {payload.get('run_id', '?')!r} carries no obs_metrics; "
            "re-run it with --obs to record counters"
        )
    stored = RunStore.trial_set_from_payload(payload)
    metrics = {str(name): float(value) for name, value in obs_metrics.items()}
    return {stored.label: metrics}, True


_CELL_EXTRACTORS = {
    "trial_set": _trial_set_cells,
    "bench": _bench_cells,
    "report": _report_cells,
}

#: Counter-name suffixes that are timing- or histogram-derived and therefore
#: never gate in the ``metrics`` view: timings jitter, and a histogram's
#: ``.max``/``.sum`` move with scheduling even when the workload is identical.
_INFORMATIVE_SUFFIXES = ("_seconds", ".count", ".sum", ".min", ".max", ".p50", ".p90", ".p99")


def _classify_counter(baseline: float, candidate: float, thresholds: RegressionThresholds) -> str:
    if candidate > baseline * (1.0 + thresholds.max_counter_increase):
        return STATUS_REGRESSION
    if baseline == 0 and candidate > 0:
        return STATUS_REGRESSION
    if candidate < baseline:
        return STATUS_IMPROVED
    return STATUS_OK


def _classify(
    metric: str,
    baseline: float,
    candidate: float,
    thresholds: RegressionThresholds,
    gate_wall_clock: bool = True,
) -> str:
    if metric == "success_rate":
        if baseline - candidate > thresholds.max_success_rate_drop:
            return STATUS_REGRESSION
        return STATUS_IMPROVED if candidate > baseline else STATUS_OK
    if metric == "wall_clock_seconds":
        if (
            gate_wall_clock
            and baseline >= thresholds.min_wall_clock_seconds
            and baseline > 0
            and candidate / baseline > 1.0 + thresholds.max_wall_clock_increase
        ):
            return STATUS_REGRESSION
        return STATUS_IMPROVED if candidate < baseline else STATUS_OK
    # Remaining metrics (mean_overhead) are informative, never gating: the
    # overhead of a *successful* simulation is a property of the scheme, not
    # of this build's performance.
    return STATUS_OK


def diff_runs(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    thresholds: Optional[RegressionThresholds] = None,
    view: Optional[str] = None,
) -> RunDiff:
    """Compare two loaded run documents cell by cell.

    Both documents must be of the same, diffable kind (``trial_set``,
    ``bench`` or ``report``).  Cells present in only one run are reported with status
    ``only-baseline`` / ``only-candidate`` and never count as regressions —
    a disjoint diff is useless but not a CI failure.  Wall clock gates only
    when *both* runs computed every trial fresh (``cached_trials`` of 0);
    a warm result cache on either side turns it informative.

    ``view="metrics"`` switches a trial-set diff from its aggregate outcome
    to its obs counters (both runs must have been recorded under ``--obs``):
    every deterministic counter gates against ``max_counter_increase``, so CI
    can catch "this change doubled the rounds exchanged" even when the wall
    clock is too noisy to notice.
    """
    thresholds = thresholds or RegressionThresholds()
    kind_a, kind_b = baseline.get("kind"), candidate.get("kind")
    if kind_a != kind_b:
        raise ValueError(f"cannot diff a {kind_a!r} run against a {kind_b!r} run")
    if view == "metrics":
        if kind_a != "trial_set":
            raise ValueError(
                f"the metrics view diffs trial_set runs, not {kind_a!r} runs"
            )
        extractor = _metrics_cells
    elif view is not None:
        raise ValueError(f"unknown diff view {view!r} (views: metrics)")
    else:
        extractor = _CELL_EXTRACTORS.get(str(kind_a))
        if extractor is None:
            raise ValueError(
                f"runs of kind {kind_a!r} are not diffable (diffable kinds: "
                f"{', '.join(sorted(_CELL_EXTRACTORS))})"
            )
    cells_a, wall_gated_a = extractor(baseline)
    cells_b, wall_gated_b = extractor(candidate)
    gate_wall_clock = wall_gated_a and wall_gated_b

    rows: List[CellDelta] = []
    for cell in sorted(set(cells_a) | set(cells_b)):
        in_a, in_b = cell in cells_a, cell in cells_b
        if not in_b:
            rows.append(CellDelta(cell, "-", None, None, STATUS_ONLY_BASELINE))
            continue
        if not in_a:
            rows.append(CellDelta(cell, "-", None, None, STATUS_ONLY_CANDIDATE))
            continue
        for metric in sorted(set(cells_a[cell]) | set(cells_b[cell])):
            value_a = cells_a[cell].get(metric)
            value_b = cells_b[cell].get(metric)
            if value_a is None or value_b is None:
                # e.g. wall clock recorded on only one side (older writer)
                rows.append(CellDelta(cell, metric, value_a, value_b, STATUS_OK))
                continue
            if view == "metrics":
                if metric.endswith(_INFORMATIVE_SUFFIXES):
                    status = STATUS_OK
                else:
                    status = _classify_counter(value_a, value_b, thresholds)
            else:
                status = _classify(metric, value_a, value_b, thresholds, gate_wall_clock)
            rows.append(CellDelta(cell, metric, value_a, value_b, status))
    return RunDiff(
        baseline_id=str(baseline.get("run_id", "?")),
        candidate_id=str(candidate.get("run_id", "?")),
        kind=str(kind_a),
        thresholds=thresholds,
        rows=rows,
    )


# -- merging ---------------------------------------------------------------


@dataclass(frozen=True)
class MergeResult:
    """Outcome of :func:`merge_runs`: new run ids plus the inputs that had no
    partner cell to merge with."""

    created: List[str]
    skipped: List[str]


def _union_trials(group: Sequence[StoredRun]) -> Tuple[list, list, bool]:
    """Union the trials of one cell, deduplicating by seed where the seed
    schedule was recorded (the same seed of the same cell is the same trial —
    counting it twice would inflate the sample without adding information).

    Returns ``(runs, seeds, all_aligned)``; ``all_aligned`` is False when any
    member lacks a seed schedule matching its trial list, in which case the
    returned seeds are partial and must not be recorded as the merged run's
    schedule.
    """
    merged_runs: list = []
    merged_seeds: list = []
    seen_seeds = set()
    all_aligned = True
    for stored in group:
        seeds = stored.parameters.get("seeds")
        aligned = isinstance(seeds, list) and len(seeds) == len(stored.runs)
        all_aligned = all_aligned and aligned
        for index, metrics in enumerate(stored.runs):
            if aligned:
                seed = seeds[index]
                if seed in seen_seeds:
                    continue
                seen_seeds.add(seed)
                merged_seeds.append(seed)
            merged_runs.append(metrics)
    return merged_runs, merged_seeds, all_aligned


def merge_runs(
    store: RunStore,
    run_ids: Sequence[str],
    label: Optional[str] = None,
) -> MergeResult:
    """Merge ``trial_set`` runs of identical cells into new, larger records.

    Runs are grouped by cell — ``(experiment, label)`` plus the recorded
    scheme and workload, so two runs that merely share a custom label can
    never be mixed — and every group with at least two members is unioned
    (:func:`_union_trials`), re-aggregated and written back as a new
    ``trial_set`` carrying ``merged_from`` provenance.  Non-trial-set runs
    and schema-mismatched documents are refused outright (``ValueError``)
    — merging across layouts could silently mix incompatible metrics.
    Duplicate run ids are collapsed before grouping.
    """
    run_ids = list(dict.fromkeys(run_ids))  # same id twice is one run, not two samples
    if len(run_ids) < 2:
        raise ValueError("merge needs at least two distinct run ids")
    loaded: List[StoredRun] = []
    for run_id in run_ids:
        payload = store.load(run_id)  # raises KeyError/ValueError on missing/schema mismatch
        if payload.get("kind") != "trial_set":
            raise ValueError(
                f"run {run_id!r} is a {payload.get('kind')!r}; only trial_set runs can be merged"
            )
        loaded.append(RunStore.trial_set_from_payload(payload))

    def cell_key(stored: StoredRun) -> Tuple[str, str, str, str]:
        return (
            stored.experiment,
            stored.label,
            str(stored.parameters.get("scheme", stored.aggregate.scheme)),
            str(stored.parameters.get("workload", "")),
        )

    groups: Dict[Tuple[str, str, str, str], List[StoredRun]] = {}
    for stored in loaded:
        groups.setdefault(cell_key(stored), []).append(stored)

    created: List[str] = []
    skipped: List[str] = []
    for (experiment, cell_label, _, _), group in groups.items():
        if len(group) < 2:
            skipped.extend(stored.run_id for stored in group)
            continue
        merged_runs, merged_seeds, all_aligned = _union_trials(group)
        aggregate = summarize_runs(merged_runs, scheme=group[0].aggregate.scheme)
        parameters = dict(group[0].parameters)
        if all_aligned and merged_seeds:
            parameters["seeds"] = merged_seeds
        else:
            # A partial schedule would misdescribe the merged trial list (and
            # silently disable seed-dedup in any later merge of this record).
            parameters.pop("seeds", None)
        parameters["merged_from"] = [stored.run_id for stored in group]
        created.append(
            store.record_trial_set(
                label=label if label is not None else cell_label,
                runs=merged_runs,
                aggregate=aggregate,
                experiment=experiment,
                parameters=parameters,
            )
        )
    return MergeResult(created=created, skipped=skipped)


# -- pruning ---------------------------------------------------------------


@dataclass(frozen=True)
class GCResult:
    """Outcome of :func:`gc_runs` (``deleted`` lists what *would* be deleted
    under ``dry_run``)."""

    deleted: List[str]
    kept: List[str]
    dry_run: bool = False


def _parse_timestamp(value: object) -> Optional[datetime]:
    try:
        parsed = datetime.fromisoformat(str(value))
    except (TypeError, ValueError):
        return None
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed


def gc_runs(
    store: RunStore,
    max_age_days: Optional[float] = None,
    keep_count: Optional[int] = None,
    now: Optional[datetime] = None,
    dry_run: bool = False,
) -> GCResult:
    """Prune old runs from a store.

    A run is deleted when it is older than ``max_age_days`` *or* outside the
    ``keep_count`` newest runs — except that the latest run of every
    experiment is always kept (the whole point of the store is that the most
    recent result of each experiment stays auditable, and ``runs diff
    latest~1 latest`` needs a baseline).  Runs whose timestamp cannot be
    parsed are never age-pruned.  ``dry_run`` reports without deleting.
    """
    if max_age_days is None and keep_count is None:
        raise ValueError("gc needs max_age_days and/or keep_count")
    if max_age_days is not None and max_age_days < 0:
        raise ValueError("max_age_days must be >= 0")
    if keep_count is not None and keep_count < 0:
        raise ValueError("keep_count must be >= 0")
    now = now or datetime.now(timezone.utc)

    rows = store.list_runs()  # ordered oldest → newest by run id
    protected = {
        max(
            (row for row in rows if row["experiment"] == experiment),
            key=lambda row: str(row["run_id"]),
        )["run_id"]
        for experiment in {row["experiment"] for row in rows}
    }

    deleted: List[str] = []
    kept: List[str] = []
    cutoff = now - timedelta(days=max_age_days) if max_age_days is not None else None
    for position, row in enumerate(rows):
        run_id = str(row["run_id"])
        newest_rank = len(rows) - position  # 1 = newest
        too_old = False
        if cutoff is not None:
            created_at = _parse_timestamp(row.get("created_at"))
            too_old = created_at is not None and created_at < cutoff
        beyond_count = keep_count is not None and newest_rank > keep_count
        if (too_old or beyond_count) and run_id not in protected:
            deleted.append(run_id)
        else:
            kept.append(run_id)

    if not dry_run:
        for run_id in deleted:
            store.delete(run_id)
    return GCResult(deleted=deleted, kept=kept, dry_run=dry_run)
