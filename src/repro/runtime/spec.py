"""Canonical trial specifications and content-addressed fingerprints.

A *trial* is the atomic unit of experimental work: one seeded simulation of
one (workload, scheme, adversary factory) cell.  :class:`TrialSpec` packages
the four ingredients; :func:`fingerprint_trial` derives a :class:`TrialKey`
— a stable content hash of the cell — so that results can be cached and
deduplicated across runs and across processes.

The fingerprint is computed from a *canonical payload*: a JSON-able structure
built recursively from the spec with deterministic ordering everywhere a
Python container could introduce nondeterminism (dict/set iteration order,
``PYTHONHASHSEED``).  Callables are described by their import path; lambdas
and closures have no stable import path, so any spec that contains one is
marked ``stable=False`` and simply bypasses the cache instead of poisoning it.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
import random
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Dict, List, Mapping, Tuple

from repro.adversary.base import Adversary
from repro.core.parameters import SchemeParameters

AdversaryFactory = Callable[[int], Adversary]

#: Bump when the canonical-payload rules change incompatibly, so stale
#: on-disk cache entries are never matched against new fingerprints.
TRIAL_KEY_SCHEMA = 1

#: Maximum recursion depth of the canonicalisation; deeper structures are
#: summarised by type name and mark the key unstable.
_MAX_DEPTH = 16


def derive_trial_seed(base_seed: int, trial: int) -> int:
    """The per-trial seed derivation used by the experiment harness.

    Kept as a single shared function so that serial and parallel backends —
    and any code that needs to predict the seed of trial ``i`` — agree by
    construction.
    """
    return base_seed + 1000 * trial + 17


@dataclass(frozen=True)
class TrialSpec:
    """One seeded simulation of a (workload, scheme, adversary) cell.

    ``workload`` is any object with ``name`` and ``protocol`` attributes
    (duck-typed to avoid importing :mod:`repro.experiments` from here).
    """

    workload: Any
    scheme: SchemeParameters
    adversary_factory: AdversaryFactory
    seed: int


@dataclass(frozen=True)
class TrialKey:
    """Content-addressed identity of a trial.

    ``stable`` is False when the spec contains something without a canonical
    description (a lambda, a closure, an exotic object); unstable keys are
    still unique within a process but must not be used for cross-run caching.
    """

    digest: str
    stable: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = "" if self.stable else " (unstable)"
        return f"{self.digest}{suffix}"


class _Canonicalizer:
    """Recursively convert an object into a deterministic JSON-able payload."""

    def __init__(self) -> None:
        self.stable = True

    def convert(self, obj: Any, depth: int = 0) -> Any:
        if depth > _MAX_DEPTH:
            self.stable = False
            return {"__truncated__": type(obj).__qualname__}
        if obj is None or isinstance(obj, (bool, int, float, str)):
            return obj
        if isinstance(obj, bytes):
            return {"__bytes__": obj.hex()}
        custom = getattr(obj, "fingerprint_payload", None)
        if callable(custom) and not isinstance(obj, type):
            # Explicit opt-out of the generic rules: an object that knows its
            # own identity state returns it here (overrides every branch below).
            return {
                "__fingerprint__": _qualified_name(type(obj)),
                "payload": self.convert(custom(), depth + 1),
            }
        if isinstance(obj, random.Random):
            # The generator state is a deterministic function of how the
            # object was seeded and used so far.
            version, internal, gauss = obj.getstate()
            return {"__random__": [version, list(internal), gauss]}
        if isinstance(obj, Mapping):
            items = [
                [self.convert(key, depth + 1), self.convert(value, depth + 1)]
                for key, value in obj.items()
            ]
            items.sort(key=lambda pair: _sort_token(pair[0]))
            return {"__map__": items}
        if isinstance(obj, (set, frozenset)):
            members = [self.convert(member, depth + 1) for member in obj]
            members.sort(key=_sort_token)
            return {"__set__": members}
        if isinstance(obj, (list, tuple)):
            return [self.convert(member, depth + 1) for member in obj]
        if is_dataclass(obj) and not isinstance(obj, type):
            return {
                "__dataclass__": _qualified_name(type(obj)),
                "fields": {
                    spec.name: self.convert(getattr(obj, spec.name), depth + 1)
                    for spec in fields(obj)
                },
            }
        if isinstance(obj, functools.partial):
            return {
                "__partial__": self.convert(obj.func, depth + 1),
                "args": [self.convert(arg, depth + 1) for arg in obj.args],
                "keywords": self.convert(dict(obj.keywords), depth + 1),
            }
        if inspect.ismethod(obj):
            return {
                "__method__": obj.__func__.__qualname__,
                "self": self.convert(obj.__self__, depth + 1),
            }
        if inspect.isfunction(obj) or inspect.isbuiltin(obj):
            name = _qualified_name(obj)
            if "<lambda>" in name or "<locals>" in name:
                # No import path: unique in this process, meaningless in the
                # next one.
                self.stable = False
                return {"__callable__": name, "unstable": True}
            return {"__callable__": name}
        if isinstance(obj, type):
            return {"__class__": _qualified_name(obj)}
        state = getattr(obj, "__dict__", None)
        if state is not None:
            # Underscored attributes are lazily-computed caches (for instance a
            # protocol's ``_schedule``): derived from the public state, so
            # including them would make the fingerprint depend on whether the
            # object has been *used*, not just on what it *is*.
            public = {key: value for key, value in state.items() if not key.startswith("_")}
            return {
                "__object__": _qualified_name(type(obj)),
                "state": self.convert(public, depth + 1),
            }
        self.stable = False
        return {"__opaque__": _qualified_name(type(obj))}


def _qualified_name(obj: Any) -> str:
    module = getattr(obj, "__module__", "") or ""
    qualname = getattr(obj, "__qualname__", None) or getattr(obj, "__name__", repr(obj))
    return f"{module}.{qualname}" if module else str(qualname)


def _sort_token(payload: Any) -> str:
    """A total order over canonical payloads (JSON text compares reliably)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def canonical_payload(obj: Any) -> Tuple[Any, bool]:
    """Canonicalise ``obj``; returns ``(payload, stable)``."""
    canonicalizer = _Canonicalizer()
    payload = canonicalizer.convert(obj)
    return payload, canonicalizer.stable


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports the runtime, so a module-level
    # import here would be circular.
    from repro import __version__

    return __version__


def fingerprint_trial(spec: TrialSpec) -> TrialKey:
    """Content-address a trial: equal fingerprints ⇒ interchangeable results.

    The package version is part of the payload, so a persistent cache is
    invalidated wholesale whenever the simulator's code (and hence possibly
    its behaviour) changes — stale results are never served across upgrades.
    """
    canonicalizer = _Canonicalizer()
    payload = {
        "schema": TRIAL_KEY_SCHEMA,
        "version": _package_version(),
        "workload": canonicalizer.convert(spec.workload),
        "scheme": canonicalizer.convert(spec.scheme),
        "adversary_factory": canonicalizer.convert(spec.adversary_factory),
        "seed": spec.seed,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return TrialKey(digest=digest, stable=canonicalizer.stable)


def build_trial_specs(
    workload: Any,
    scheme: SchemeParameters,
    adversary_factory: AdversaryFactory,
    seeds: List[int],
) -> List[TrialSpec]:
    """Expand one experimental cell into its per-seed trial specs."""
    return [
        TrialSpec(workload=workload, scheme=scheme, adversary_factory=adversary_factory, seed=seed)
        for seed in seeds
    ]
