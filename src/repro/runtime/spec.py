"""Canonical trial specifications and content-addressed fingerprints.

A *trial* is the atomic unit of experimental work: one seeded simulation of
one (workload, scheme, adversary factory) cell.  :class:`TrialSpec` packages
the four ingredients; :func:`fingerprint_trial` derives a :class:`TrialKey`
— a stable content hash of the cell — so that results can be cached and
deduplicated across runs and across processes.

The fingerprint is computed from a *canonical payload*: a JSON-able structure
built recursively from the spec with deterministic ordering everywhere a
Python container could introduce nondeterminism (dict/set iteration order,
``PYTHONHASHSEED``).  Callables are described by their import path; lambdas
and closures have no stable import path, so any spec that contains one is
marked ``stable=False`` and simply bypasses the cache instead of poisoning it.

Canonicalisation walks the whole workload (graph, protocol, inputs), which is
by far the most expensive part of fingerprinting.  A sweep grid shares the
same workload / scheme / adversary-factory *objects* across hundreds of
trials, so :func:`fingerprint_trial` memoises the canonical payload per
object (identity-keyed, weakly referenced — see :class:`_PayloadMemo`) and
interns the finished :class:`TrialKey` on the :class:`TrialSpec`.

**The memo adds a contract**: the identity state of a workload / scheme /
factory must not change between fingerprints of the same object (lazy
``_``-prefixed caches are excluded from the payload and may change freely).
Every in-tree path satisfies it — schemes and workload containers are frozen,
and the builders make fresh objects per experiment — but code that mutates,
say, a protocol's public inputs in place and reuses the object would be
served the pre-mutation fingerprint.  Mutating callers must rebuild the
object (builders are cheap) or call :func:`clear_payload_memo`.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
import random
import weakref
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.adversary.base import Adversary
from repro.core.config import EngineConfig
from repro.core.parameters import SchemeParameters

AdversaryFactory = Callable[[int], Adversary]

#: Bump when the canonical-payload rules change incompatibly, so stale
#: on-disk cache entries are never matched against new fingerprints.
#: 2 = the 2.0.0 CRS seed-derivation break (see ``repro.hashing.seeds``):
#: CRS-scheme trials compute different transcripts than under schema 1, so
#: every pre-break fingerprint must miss.
TRIAL_KEY_SCHEMA = 2

#: Maximum recursion depth of the canonicalisation; deeper structures are
#: summarised by type name and mark the key unstable.
_MAX_DEPTH = 16


def derive_trial_seed(base_seed: int, trial: int) -> int:
    """The per-trial seed derivation used by the experiment harness.

    Kept as a single shared function so that serial and parallel backends —
    and any code that needs to predict the seed of trial ``i`` — agree by
    construction.
    """
    return base_seed + 1000 * trial + 17


@dataclass(frozen=True)
class TrialSpec:
    """One seeded simulation of a (workload, scheme, adversary) cell.

    ``workload`` is any object with ``name`` and ``protocol`` attributes
    (duck-typed to avoid importing :mod:`repro.experiments` from here).
    """

    workload: Any
    scheme: SchemeParameters
    adversary_factory: AdversaryFactory
    seed: int
    #: Execution configuration (``None`` = ambient runtime default).  Engine
    #: configuration only selects among bit-identical execution paths, so it
    #: is deliberately **excluded** from :func:`fingerprint_trial`'s payload:
    #: a result computed under any configuration is interchangeable with the
    #: same trial under any other (asserted by ``tests/test_engine_config.py``).
    engine: Optional[EngineConfig] = None


@dataclass(frozen=True)
class TrialKey:
    """Content-addressed identity of a trial.

    ``stable`` is False when the spec contains something without a canonical
    description (a lambda, a closure, an exotic object); unstable keys are
    still unique within a process but must not be used for cross-run caching.
    """

    digest: str
    stable: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = "" if self.stable else " (unstable)"
        return f"{self.digest}{suffix}"


class _Canonicalizer:
    """Recursively convert an object into a deterministic JSON-able payload."""

    def __init__(self) -> None:
        self.stable = True

    def convert(self, obj: Any, depth: int = 0) -> Any:
        if depth > _MAX_DEPTH:
            self.stable = False
            return {"__truncated__": type(obj).__qualname__}
        if obj is None or isinstance(obj, (bool, int, float, str)):
            return obj
        if isinstance(obj, bytes):
            return {"__bytes__": obj.hex()}
        custom = getattr(obj, "fingerprint_payload", None)
        if callable(custom) and not isinstance(obj, type):
            # Explicit opt-out of the generic rules: an object that knows its
            # own identity state returns it here (overrides every branch below).
            return {
                "__fingerprint__": _qualified_name(type(obj)),
                "payload": self.convert(custom(), depth + 1),
            }
        if isinstance(obj, random.Random):
            # The generator state is a deterministic function of how the
            # object was seeded and used so far.
            version, internal, gauss = obj.getstate()
            return {"__random__": [version, list(internal), gauss]}
        if isinstance(obj, Mapping):
            items = [
                [self.convert(key, depth + 1), self.convert(value, depth + 1)]
                for key, value in obj.items()
            ]
            items.sort(key=lambda pair: _sort_token(pair[0]))
            return {"__map__": items}
        if isinstance(obj, (set, frozenset)):
            members = [self.convert(member, depth + 1) for member in obj]
            members.sort(key=_sort_token)
            return {"__set__": members}
        if isinstance(obj, (list, tuple)):
            return [self.convert(member, depth + 1) for member in obj]
        if is_dataclass(obj) and not isinstance(obj, type):
            return {
                "__dataclass__": _qualified_name(type(obj)),
                "fields": {
                    spec.name: self.convert(getattr(obj, spec.name), depth + 1)
                    for spec in fields(obj)
                },
            }
        if isinstance(obj, functools.partial):
            return {
                "__partial__": self.convert(obj.func, depth + 1),
                "args": [self.convert(arg, depth + 1) for arg in obj.args],
                "keywords": self.convert(dict(obj.keywords), depth + 1),
            }
        if inspect.ismethod(obj):
            return {
                "__method__": obj.__func__.__qualname__,
                "self": self.convert(obj.__self__, depth + 1),
            }
        if inspect.isfunction(obj) or inspect.isbuiltin(obj):
            name = _qualified_name(obj)
            if "<lambda>" in name or "<locals>" in name:
                # No import path: unique in this process, meaningless in the
                # next one.
                self.stable = False
                return {"__callable__": name, "unstable": True}
            return {"__callable__": name}
        if isinstance(obj, type):
            return {"__class__": _qualified_name(obj)}
        state = getattr(obj, "__dict__", None)
        if state is not None:
            # Underscored attributes are lazily-computed caches (for instance a
            # protocol's ``_schedule``): derived from the public state, so
            # including them would make the fingerprint depend on whether the
            # object has been *used*, not just on what it *is*.
            public = {key: value for key, value in state.items() if not key.startswith("_")}
            return {
                "__object__": _qualified_name(type(obj)),
                "state": self.convert(public, depth + 1),
            }
        self.stable = False
        return {"__opaque__": _qualified_name(type(obj))}


def _qualified_name(obj: Any) -> str:
    module = getattr(obj, "__module__", "") or ""
    qualname = getattr(obj, "__qualname__", None) or getattr(obj, "__name__", repr(obj))
    return f"{module}.{qualname}" if module else str(qualname)


def _sort_token(payload: Any) -> str:
    """A total order over canonical payloads (JSON text compares reliably)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def canonical_payload(obj: Any) -> Tuple[Any, bool]:
    """Canonicalise ``obj``; returns ``(payload, stable)``.  Unmemoised —
    every call re-walks the object (see :func:`memoized_payload`)."""
    canonicalizer = _Canonicalizer()
    payload = canonicalizer.convert(obj)
    return payload, canonicalizer.stable


class _PayloadMemo:
    """Identity-keyed memo of canonical payloads.

    Keys are ``id(obj)`` guarded by a weak reference (an id can be recycled
    after the object dies; the weakref both detects that and evicts the entry
    via its callback), so the memo never keeps a workload alive and never
    serves a payload for a different object that happens to reuse the
    address.  Objects that do not support weak references fall back to
    unmemoised canonicalisation — correctness is never traded for speed.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, Tuple[Any, Any, bool]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, obj: Any) -> Tuple[Any, bool]:
        key = id(obj)
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is obj:
            self.hits += 1
            return entry[1], entry[2]
        self.misses += 1
        payload, stable = canonical_payload(obj)
        try:
            ref = weakref.ref(obj, lambda _, key=key: self._entries.pop(key, None))
        except TypeError:
            return payload, stable  # not weak-referenceable: do not memoise
        self._entries[key] = (ref, payload, stable)
        return payload, stable

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_payload_memo = _PayloadMemo()


def memoized_payload(obj: Any) -> Tuple[Any, bool]:
    """Like :func:`canonical_payload`, but served from the identity memo when
    the same object was canonicalised before (one walk per unique workload /
    scheme / factory instead of one per trial)."""
    return _payload_memo.lookup(obj)


def payload_memo_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the payload memo (observable in tests and
    micro-benchmarks)."""
    return {
        "hits": _payload_memo.hits,
        "misses": _payload_memo.misses,
        "entries": len(_payload_memo._entries),
    }


def clear_payload_memo() -> None:
    """Drop every memoised payload and reset the counters."""
    _payload_memo.clear()


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports the runtime, so a module-level
    # import here would be circular.
    from repro import __version__

    return __version__


def fingerprint_trial(spec: TrialSpec) -> TrialKey:
    """Content-address a trial: equal fingerprints ⇒ interchangeable results.

    The package version is part of the payload, so a persistent cache is
    invalidated wholesale whenever the simulator's code (and hence possibly
    its behaviour) changes — stale results are never served across upgrades.

    The workload / scheme / factory payloads come from the identity memo
    (:func:`memoized_payload`) and the finished key is interned on the spec,
    so a sweep grid canonicalises each unique ingredient once, not once per
    trial.  The digest is byte-identical to unmemoised fingerprinting.
    """
    interned = spec.__dict__.get("_trial_key")
    if interned is not None:
        return interned
    workload_payload, workload_stable = memoized_payload(spec.workload)
    scheme_payload, scheme_stable = memoized_payload(spec.scheme)
    factory_payload, factory_stable = memoized_payload(spec.adversary_factory)
    payload = {
        "schema": TRIAL_KEY_SCHEMA,
        "version": _package_version(),
        "workload": workload_payload,
        "scheme": scheme_payload,
        "adversary_factory": factory_payload,
        "seed": spec.seed,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    key = TrialKey(digest=digest, stable=workload_stable and scheme_stable and factory_stable)
    # TrialSpec is frozen; the interned key is a pure function of the spec, so
    # stashing it is observationally immutable (and invisible to fields()).
    object.__setattr__(spec, "_trial_key", key)
    return key


def build_trial_specs(
    workload: Any,
    scheme: SchemeParameters,
    adversary_factory: AdversaryFactory,
    seeds: List[int],
    engine: Optional[EngineConfig] = None,
) -> List[TrialSpec]:
    """Expand one experimental cell into its per-seed trial specs."""
    return [
        TrialSpec(
            workload=workload,
            scheme=scheme,
            adversary_factory=adversary_factory,
            seed=seed,
            engine=engine,
        )
        for seed in seeds
    ]
