"""repro — a reproduction of "Efficient Multiparty Interactive Coding for
Insertions, Deletions and Substitutions" (Gelles, Kalai, Ramnarayan, PODC 2019).

The package provides:

* :mod:`repro.core` — the noise-resilient simulator (Algorithm 1) and the
  scheme presets for Algorithm A (no CRS, oblivious noise, ε/m), Algorithm B
  (no CRS, non-oblivious noise, ε/(m log m)) and Algorithm C (CRS,
  non-oblivious noise, ε/(m log log m));
* :mod:`repro.network` — the synchronous noisy-network substrate;
* :mod:`repro.adversary` — insertion/deletion/substitution noise models;
* :mod:`repro.protocols` — noiseless protocols Π with fixed speaking order;
* :mod:`repro.hashing`, :mod:`repro.coding` — inner-product hashes, δ-biased
  strings and the error-correcting code used by the randomness exchange;
* :mod:`repro.baselines`, :mod:`repro.experiments`, :mod:`repro.analysis` —
  baselines, the Table-1 harness and theorem-validation sweeps;
* :mod:`repro.runtime` — the trial execution engine: serial / process-pool
  backends (bit-identical results), content-addressed result caching, a
  persistent run store and cross-run analytics (``diff_runs`` /
  ``merge_runs`` / ``gc_runs``, surfaced as ``repro runs diff|merge|gc``).

Quick start — one protected simulation::

    from repro import simulate, algorithm_a
    from repro.network import line_topology
    from repro.protocols import ParityGossipProtocol
    from repro.adversary import RandomNoiseAdversary

    graph = line_topology(5)
    protocol = ParityGossipProtocol(graph, {i: i % 2 for i in range(5)}, phases=8)
    adversary = RandomNoiseAdversary(corruption_probability=0.002, seed=1)
    result = simulate(protocol, scheme=algorithm_a(), adversary=adversary, seed=7)
    assert result.success

Quick start — a repeated-trial experiment, parallel and cached::

    from repro import ProcessPoolBackend, ResultCache, run_trials, use_runtime
    from repro.experiments import gossip_workload
    from repro.experiments.factories import RandomNoiseFactory

    workload = gossip_workload(topology="line", num_nodes=5, phases=8)
    with use_runtime(backend=ProcessPoolBackend(max_workers=4),
                     cache=ResultCache(".repro-cache")):
        trial_set = run_trials(workload, algorithm_a(),
                               adversary_factory=RandomNoiseFactory(0.002), trials=32)
    assert trial_set.aggregate.success_rate == 1.0
"""

from repro.core import (
    InteractiveCodingSimulator,
    SchemeParameters,
    SimulationResult,
    algorithm_a,
    algorithm_b,
    algorithm_c,
    crs_oblivious_scheme,
    scheme_by_name,
    simulate,
)
from repro.experiments.harness import TrialSet, run_trials, sweep
from repro.runtime import (
    ExecutionBackend,
    ProcessPoolBackend,
    RegressionThresholds,
    ResultCache,
    RunStore,
    SerialBackend,
    TrialKey,
    TrialSpec,
    diff_runs,
    execute_trials,
    fingerprint_trial,
    gc_runs,
    get_runtime,
    merge_runs,
    set_default_runtime,
    use_runtime,
)

# 2.0.0 is the CRS break: CrsSeedSource now derives per-link seeds through
# SmallBiasGenerator.packed_slots (same expansion contract as
# ExchangedSeedSource) with hasher-derived slot capacities, so CRS-scheme
# transcripts and golden fingerprints differ from 1.x.  The version string is
# part of every trial fingerprint (repro.runtime.spec), so 1.x cached results
# can never be served for 2.x trials.
__version__ = "2.0.0"

__all__ = [
    "InteractiveCodingSimulator",
    "SchemeParameters",
    "SimulationResult",
    "algorithm_a",
    "algorithm_b",
    "algorithm_c",
    "crs_oblivious_scheme",
    "scheme_by_name",
    "simulate",
    # experiment harness
    "TrialSet",
    "run_trials",
    "sweep",
    # runtime
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ResultCache",
    "RunStore",
    "TrialSpec",
    "TrialKey",
    "execute_trials",
    "fingerprint_trial",
    "get_runtime",
    "set_default_runtime",
    "use_runtime",
    # run analytics
    "diff_runs",
    "merge_runs",
    "gc_runs",
    "RegressionThresholds",
    "__version__",
]
