"""The noiseless multiparty protocol model Π.

The paper (§2.1) assumes an underlying protocol with a *fixed speaking
order*: which directed link carries a transmission in which round is known in
advance and independent of inputs; only the transmitted contents depend on
inputs and on previously received bits.  The coding scheme needs exactly two
capabilities from Π:

* the fixed schedule (to partition Π into chunks and to know, while
  simulating chunk ``c``, which link speaks at which round), and
* the ability to recompute "the bit party ``u`` sends on link ``(u, v)`` in
  round ``r``" from the bits ``u`` has received so far — because after a
  rewind the scheme re-simulates chunks from whatever (possibly corrupted)
  partial transcripts the party holds.

``PartyLogic.send_bit`` is therefore written as a *pure function of the
received map*, which makes replay after rewinds trivial and keeps party
implementations honest about using only causally available information
(the engine only ever passes receptions from earlier rounds).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.graph import DirectedEdge, Graph

#: (round_index, sender) -> received bit.
ReceivedMap = Dict[Tuple[int, int], int]


class PartyLogic(abc.ABC):
    """The local program of one party in the noiseless protocol."""

    def __init__(self, party: int) -> None:
        self.party = party

    @abc.abstractmethod
    def send_bit(self, round_index: int, receiver: int, received: ReceivedMap) -> int:
        """The bit this party sends to ``receiver`` in ``round_index``.

        ``received`` only contains receptions from rounds strictly before
        ``round_index``.  Must be deterministic.
        """

    @abc.abstractmethod
    def compute_output(self, received: ReceivedMap) -> object:
        """The party's protocol output, computed from everything it received."""


class Protocol(abc.ABC):
    """A noiseless protocol with a fixed speaking order over a graph."""

    def __init__(self, graph: Graph) -> None:
        graph.validate_connected_simple()
        self.graph = graph
        self._schedule: List[List[DirectedEdge]] | None = None

    # -- schedule -----------------------------------------------------------------

    @abc.abstractmethod
    def build_schedule(self) -> List[List[DirectedEdge]]:
        """The fixed speaking order: one list of directed links per round."""

    def schedule(self) -> List[List[DirectedEdge]]:
        """Cached, validated speaking order."""
        if self._schedule is None:
            schedule = self.build_schedule()
            for round_index, transmissions in enumerate(schedule):
                seen = set()
                for sender, receiver in transmissions:
                    if not self.graph.has_edge(sender, receiver):
                        raise ValueError(
                            f"round {round_index} schedules ({sender}, {receiver}) "
                            "which is not a link of the graph"
                        )
                    if (sender, receiver) in seen:
                        raise ValueError(
                            f"round {round_index} schedules ({sender}, {receiver}) twice; "
                            "a link carries at most one symbol per direction per round"
                        )
                    seen.add((sender, receiver))
            self._schedule = schedule
        return self._schedule

    @abc.abstractmethod
    def create_party(self, party: int) -> PartyLogic:
        """Instantiate the local program of ``party`` (bound to its input)."""

    # -- derived quantities ----------------------------------------------------------

    @property
    def num_rounds(self) -> int:
        return len(self.schedule())

    def communication_complexity(self) -> int:
        """CC(Π): the total number of transmissions (= bits, since Σ = {0,1})."""
        return sum(len(transmissions) for transmissions in self.schedule())

    def transmissions_on_link(self, u: int, v: int) -> int:
        """Number of transmissions scheduled on the undirected link {u, v}."""
        count = 0
        for transmissions in self.schedule():
            for sender, receiver in transmissions:
                if {sender, receiver} == {u, v}:
                    count += 1
        return count

    # -- reference execution ------------------------------------------------------------

    def run_noiseless(self) -> "NoiselessExecution":
        """Execute Π over a perfect network; the ground truth for experiments."""
        parties = {party: self.create_party(party) for party in self.graph.nodes}
        received: Dict[int, ReceivedMap] = {party: {} for party in self.graph.nodes}
        sent: Dict[int, ReceivedMap] = {party: {} for party in self.graph.nodes}
        for round_index, transmissions in enumerate(self.schedule()):
            outgoing: List[Tuple[int, int, int]] = []
            for sender, receiver in transmissions:
                bit = parties[sender].send_bit(round_index, receiver, received[sender])
                if bit not in (0, 1):
                    raise ValueError(
                        f"party {sender} produced a non-binary bit {bit!r} in round {round_index}"
                    )
                outgoing.append((sender, receiver, bit))
            for sender, receiver, bit in outgoing:
                received[receiver][(round_index, sender)] = bit
                sent[sender][(round_index, receiver)] = bit
        outputs = {
            party: parties[party].compute_output(received[party]) for party in self.graph.nodes
        }
        return NoiselessExecution(outputs=outputs, received=received, sent=sent)


@dataclass
class NoiselessExecution:
    """The result of running Π over a noiseless network."""

    outputs: Dict[int, object]
    received: Dict[int, ReceivedMap]
    sent: Dict[int, ReceivedMap]
