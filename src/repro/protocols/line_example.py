"""The line-network workload from the paper's §1.2 motivating example.

The underlying protocol proceeds in blocks.  In each block:

1. a bit is relayed along the line from party 0 to party ``n-2`` (each relay
   XORs its own input into the bit before passing it on), and then
2. the last two parties (``n-2`` and ``n-1``) exchange ``pingpong_rounds``
   messages back and forth, each message folding in the previously received
   one.

This is exactly the structure used in the paper to argue that, without the
flag-passing phase, an early error between parties 0 and 1 invalidates Θ(n²)
bits of end-of-line chatter before it is even noticed.  It is therefore the
workload of choice for the flag-passing / rewind ablation experiments.

Outputs: every party outputs the tuple of all bits it received across the
protocol (so any corrupted simulation is detected).
"""

from __future__ import annotations

from typing import Dict, List

from repro.network.graph import DirectedEdge, Graph
from repro.protocols.base import PartyLogic, Protocol, ReceivedMap


class _LineExampleParty(PartyLogic):
    def __init__(self, party: int, input_bit: int, num_parties: int) -> None:
        super().__init__(party)
        self.input_bit = input_bit
        self.num_parties = num_parties

    def send_bit(self, round_index: int, receiver: int, received: ReceivedMap) -> int:
        # Fold the input bit into the XOR of everything received so far.  The
        # exact function is unimportant; it only needs to be deterministic and
        # to depend on previously received bits so that corrupted simulations
        # propagate into wrong outputs.
        bit = self.input_bit
        for (_round, _sender), value in received.items():
            bit ^= value
        # Distinguish relay traffic from ping-pong traffic so consecutive
        # ping-pong messages are not all identical.
        bit ^= round_index & 1
        return bit

    def compute_output(self, received: ReceivedMap) -> object:
        return tuple(sorted(received.items()))


class LineExampleProtocol(Protocol):
    """Blocks of line relay followed by end-of-line ping-pong (paper §1.2)."""

    def __init__(
        self,
        graph: Graph,
        inputs: Dict[int, int],
        blocks: int = 2,
        pingpong_rounds: int = 0,
    ) -> None:
        super().__init__(graph)
        num_parties = graph.num_nodes
        if num_parties < 3:
            raise ValueError("the line example needs at least three parties")
        for i in range(num_parties - 1):
            if not graph.has_edge(i, i + 1):
                raise ValueError("LineExampleProtocol expects a line topology 0-1-...-(n-1)")
        missing = [party for party in graph.nodes if party not in inputs]
        if missing:
            raise ValueError(f"missing inputs for parties {missing}")
        self.inputs = dict(inputs)
        self.blocks = max(1, blocks)
        # Default ping-pong length n, as in the paper's example.
        self.pingpong_rounds = pingpong_rounds if pingpong_rounds > 0 else num_parties

    def build_schedule(self) -> List[List[DirectedEdge]]:
        n = self.graph.num_nodes
        schedule: List[List[DirectedEdge]] = []
        for _ in range(self.blocks):
            # Relay from party 0 down the line to party n-2.
            for i in range(n - 2):
                schedule.append([(i, i + 1)])
            # Ping-pong between the last two parties.
            for j in range(self.pingpong_rounds):
                if j % 2 == 0:
                    schedule.append([(n - 2, n - 1)])
                else:
                    schedule.append([(n - 1, n - 2)])
        return schedule

    def create_party(self, party: int) -> PartyLogic:
        return _LineExampleParty(party, self.inputs[party], self.graph.num_nodes)
