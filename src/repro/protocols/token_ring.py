"""A token-ring workload: a multi-bit token circulates around a cycle.

Each party holds a ``value_bits``-bit input.  A token starts at party 0 with
value 0 and travels around the ring ``laps`` times; every party adds its
input into the token (mod ``2^value_bits``) each time it forwards it.  Every
party outputs the last token value it observed, so after ``laps`` full laps
party 0 outputs ``laps * sum(inputs) mod 2^value_bits``.

The protocol is maximally sparse — exactly one link speaks per round — which
makes it a good stress test for the "non-fully-utilised network" aspects of
the model (the round complexity is much larger than ``CC/m``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.network.graph import DirectedEdge, Graph
from repro.protocols.base import PartyLogic, Protocol, ReceivedMap


class _TokenRingParty(PartyLogic):
    def __init__(self, party: int, value: int, value_bits: int, num_parties: int) -> None:
        super().__init__(party)
        self.value = value
        self.value_bits = value_bits
        self.num_parties = num_parties
        self.modulus = 1 << value_bits

    def _hop_rounds(self, hop: int) -> List[int]:
        """The protocol rounds making up the ``hop``-th token transfer."""
        start = hop * self.value_bits
        return list(range(start, start + self.value_bits))

    def _token_after_receiving(self, received: ReceivedMap, hop: int) -> int:
        """Token value this party received on transfer ``hop`` (it is the target)."""
        sender = (self.party - 1) % self.num_parties
        value = 0
        for position, round_index in enumerate(self._hop_rounds(hop)):
            if received.get((round_index, sender), 0):
                value |= 1 << position
        return value

    def send_bit(self, round_index: int, receiver: int, received: ReceivedMap) -> int:
        hop = round_index // self.value_bits
        position = round_index % self.value_bits
        if hop == 0 and self.party == 0:
            incoming = 0
        else:
            incoming = self._token_after_receiving(received, hop - 1)
        outgoing = (incoming + self.value) % self.modulus
        return (outgoing >> position) & 1

    def compute_output(self, received: ReceivedMap) -> object:
        sender = (self.party - 1) % self.num_parties
        # This party is the receiver of hops congruent to (party - 1) mod n.
        first_receiving_hop = (self.party - 1) % self.num_parties
        last_value = None
        hop = first_receiving_hop
        while True:
            rounds = self._hop_rounds(hop)
            if not any((round_index, sender) in received for round_index in rounds):
                break
            last_value = self._token_after_receiving(received, hop)
            hop += self.num_parties
        return last_value


class TokenRingProtocol(Protocol):
    """``laps`` circulations of an additive token around a ring."""

    def __init__(self, graph: Graph, inputs: Dict[int, int], value_bits: int = 4, laps: int = 1) -> None:
        super().__init__(graph)
        n = graph.num_nodes
        if n < 3:
            raise ValueError("a ring needs at least three parties")
        for i in range(n):
            if not graph.has_edge(i, (i + 1) % n):
                raise ValueError("TokenRingProtocol expects a ring topology")
        missing = [party for party in graph.nodes if party not in inputs]
        if missing:
            raise ValueError(f"missing inputs for parties {missing}")
        for party, value in inputs.items():
            if not 0 <= value < (1 << value_bits):
                raise ValueError(f"input of party {party} does not fit in {value_bits} bits")
        self.inputs = dict(inputs)
        self.value_bits = value_bits
        self.laps = max(1, laps)

    def build_schedule(self) -> List[List[DirectedEdge]]:
        n = self.graph.num_nodes
        schedule: List[List[DirectedEdge]] = []
        total_hops = self.laps * n
        for hop in range(total_hops):
            sender = hop % n
            receiver = (sender + 1) % n
            for _ in range(self.value_bits):
                schedule.append([(sender, receiver)])
        return schedule

    def create_party(self, party: int) -> PartyLogic:
        return _TokenRingParty(party, self.inputs[party], self.value_bits, self.graph.num_nodes)
