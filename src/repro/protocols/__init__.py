"""Noiseless protocols Π with fixed speaking order, plus concrete workloads."""

from repro.protocols.aggregation import AggregationProtocol
from repro.protocols.base import NoiselessExecution, PartyLogic, Protocol, ReceivedMap
from repro.protocols.gossip import PairwiseExchangeProtocol, ParityGossipProtocol
from repro.protocols.line_example import LineExampleProtocol
from repro.protocols.random_protocol import RandomProtocol
from repro.protocols.token_ring import TokenRingProtocol

__all__ = [
    "AggregationProtocol",
    "NoiselessExecution",
    "PartyLogic",
    "Protocol",
    "ReceivedMap",
    "PairwiseExchangeProtocol",
    "ParityGossipProtocol",
    "LineExampleProtocol",
    "RandomProtocol",
    "TokenRingProtocol",
]
