"""Dense, fully-utilised workloads: parity gossip and pairwise exchange.

``ParityGossipProtocol`` is the canonical fully-utilised workload: in every
phase every party sends, to every neighbour, the XOR of its input bit with
everything it heard in the previous phase.  After enough phases the parity
information of the whole network has mixed; each party outputs the vector of
bits it received in the final phase together with its running parity.  The
protocol exercises the regime the paper contrasts with sparse protocols —
``CC(Π) = 2m · phases`` and ``RC(Π) = phases``.

``PairwiseExchangeProtocol`` is the smallest non-trivial protocol (one round,
every party tells every neighbour its input bit); it is used by quickstart
examples and as a fast smoke-test workload.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.network.graph import DirectedEdge, Graph
from repro.protocols.base import PartyLogic, Protocol, ReceivedMap


class _ParityGossipParty(PartyLogic):
    def __init__(self, party: int, input_bit: int, neighbors: Sequence[int], phases: int) -> None:
        super().__init__(party)
        if input_bit not in (0, 1):
            raise ValueError("input bits must be 0 or 1")
        self.input_bit = input_bit
        self.neighbors = list(neighbors)
        self.phases = phases

    def _bit_for_phase(self, phase: int, received: ReceivedMap) -> int:
        """The bit broadcast in ``phase``: input XOR everything heard in phase-1."""
        bit = self.input_bit
        if phase > 0:
            for neighbor in self.neighbors:
                bit ^= received.get((phase - 1, neighbor), 0)
        return bit

    def send_bit(self, round_index: int, receiver: int, received: ReceivedMap) -> int:
        return self._bit_for_phase(round_index, received)

    def compute_output(self, received: ReceivedMap) -> object:
        last_phase = self.phases - 1
        final_view = tuple(received.get((last_phase, neighbor), 0) for neighbor in self.neighbors)
        running_parity = self.input_bit
        for bit in received.values():
            running_parity ^= bit
        return (final_view, running_parity)


class ParityGossipProtocol(Protocol):
    """``phases`` rounds of all-neighbour parity gossip."""

    def __init__(self, graph: Graph, inputs: Dict[int, int], phases: int = 4) -> None:
        super().__init__(graph)
        if phases < 1:
            raise ValueError("phases must be positive")
        missing = [party for party in graph.nodes if party not in inputs]
        if missing:
            raise ValueError(f"missing inputs for parties {missing}")
        self.inputs = dict(inputs)
        self.phases = phases

    def build_schedule(self) -> List[List[DirectedEdge]]:
        every_direction = self.graph.directed_edges()
        return [list(every_direction) for _ in range(self.phases)]

    def create_party(self, party: int) -> PartyLogic:
        return _ParityGossipParty(
            party,
            self.inputs[party],
            self.graph.neighbors(party),
            self.phases,
        )


class _PairwiseExchangeParty(PartyLogic):
    def __init__(self, party: int, input_bit: int, neighbors: Sequence[int]) -> None:
        super().__init__(party)
        self.input_bit = input_bit
        self.neighbors = list(neighbors)

    def send_bit(self, round_index: int, receiver: int, received: ReceivedMap) -> int:
        return self.input_bit

    def compute_output(self, received: ReceivedMap) -> object:
        return tuple(received.get((0, neighbor), 0) for neighbor in self.neighbors)


class PairwiseExchangeProtocol(Protocol):
    """One round: every party announces its input bit to all neighbours."""

    def __init__(self, graph: Graph, inputs: Dict[int, int]) -> None:
        super().__init__(graph)
        missing = [party for party in graph.nodes if party not in inputs]
        if missing:
            raise ValueError(f"missing inputs for parties {missing}")
        self.inputs = dict(inputs)

    def build_schedule(self) -> List[List[DirectedEdge]]:
        return [list(self.graph.directed_edges())]

    def create_party(self, party: int) -> PartyLogic:
        return _PairwiseExchangeParty(party, self.inputs[party], self.graph.neighbors(party))
