"""Randomly generated protocols with a fixed speaking order.

Property-based tests and sweeps need protocols with no exploitable structure:
every transmitted bit depends on the sender's input and on everything it has
received, and every party's output is its entire received transcript — so any
uncorrected corruption of the simulation shows up as a wrong output.

The *schedule* is drawn once from a seed (and is therefore fixed and
input-independent, as the paper requires); the *contents* are a deterministic
pseudo-random function of the sender's input and received history, evaluated
with a keyed BLAKE2 digest so noiseless re-execution is reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.network.graph import DirectedEdge, Graph
from repro.protocols.base import PartyLogic, Protocol, ReceivedMap
from repro.utils.rng import make_rng


def _prf_bit(key: str) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=1).digest()
    return digest[0] & 1


class _RandomProtocolParty(PartyLogic):
    def __init__(self, party: int, input_value: int) -> None:
        super().__init__(party)
        self.input_value = input_value

    def send_bit(self, round_index: int, receiver: int, received: ReceivedMap) -> int:
        history_parity = 0
        for bit in received.values():
            history_parity ^= bit
        key = f"{self.party}|{self.input_value}|{round_index}|{receiver}|{history_parity}"
        return _prf_bit(key)

    def compute_output(self, received: ReceivedMap) -> object:
        return tuple(sorted(received.items()))


class RandomProtocol(Protocol):
    """A random sparse-or-dense protocol with full-transcript outputs.

    Parameters
    ----------
    graph:
        The network.
    inputs:
        Integer input per party (any range).
    num_rounds:
        Number of rounds of the noiseless protocol.
    density:
        Probability that a given directed link speaks in a given round.
    seed:
        Seed for the schedule (contents are derived from inputs, not this seed).
    """

    def __init__(
        self,
        graph: Graph,
        inputs: Dict[int, int],
        num_rounds: int = 16,
        density: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(graph)
        if num_rounds < 1:
            raise ValueError("num_rounds must be positive")
        if not 0.0 < density <= 1.0:
            raise ValueError("density must lie in (0, 1]")
        missing = [party for party in graph.nodes if party not in inputs]
        if missing:
            raise ValueError(f"missing inputs for parties {missing}")
        self.inputs = dict(inputs)
        self.num_schedule_rounds = num_rounds
        self.density = density
        self.seed = seed

    def build_schedule(self) -> List[List[DirectedEdge]]:
        rng = make_rng(self.seed)
        directed = self.graph.directed_edges()
        schedule: List[List[DirectedEdge]] = []
        for _ in range(self.num_schedule_rounds):
            round_links = [link for link in directed if rng.random() < self.density]
            schedule.append(round_links)
        # Make sure the protocol is not completely silent.
        if all(not round_links for round_links in schedule):
            schedule[0] = [directed[0]]
        return schedule

    def create_party(self, party: int) -> PartyLogic:
        return _RandomProtocolParty(party, self.inputs[party])
