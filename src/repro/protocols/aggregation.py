"""Convergecast / broadcast aggregation over a spanning tree.

This is the "distributed computation" workload the introduction motivates:
every party holds a private integer, the network computes the sum, and every
party learns the result.  The protocol is sparse (only tree links speak, one
at a time), which is precisely the regime where the paper's non-fully-utilised
model matters: converting it to a fully-utilised protocol would multiply the
communication by up to ``m``.

Structure (all rounds fixed in advance):

1. *Convergecast*: in bottom-up order, every non-root node sends its
   ``value_bits``-bit partial sum (own input plus the partial sums received
   from its children, mod ``2^value_bits``) to its parent, one bit per round.
2. *Broadcast*: in top-down order, every non-leaf node forwards the total sum
   to each of its children, one bit per round.

Every party outputs the total; the root computes it locally and the others
read it off the broadcast.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.network.graph import DirectedEdge, Graph
from repro.network.spanning_tree import SpanningTree
from repro.protocols.base import PartyLogic, Protocol, ReceivedMap


class _AggregationParty(PartyLogic):
    def __init__(
        self,
        party: int,
        value: int,
        value_bits: int,
        tree: SpanningTree,
        upward_rounds: Dict[Tuple[int, int], List[int]],
        downward_rounds: Dict[Tuple[int, int], List[int]],
    ) -> None:
        super().__init__(party)
        self.value = value
        self.value_bits = value_bits
        self.tree = tree
        self._upward_rounds = upward_rounds
        self._downward_rounds = downward_rounds
        self.modulus = 1 << value_bits

    # -- helpers -------------------------------------------------------------

    def _decode_word(self, received: ReceivedMap, sender: int, rounds: List[int]) -> int:
        value = 0
        for position, round_index in enumerate(rounds):
            if received.get((round_index, sender), 0):
                value |= 1 << position
        return value

    def _partial_sum(self, received: ReceivedMap) -> int:
        total = self.value
        for child in self.tree.children[self.party]:
            rounds = self._upward_rounds[(child, self.party)]
            total = (total + self._decode_word(received, child, rounds)) % self.modulus
        return total

    def _total_sum(self, received: ReceivedMap) -> int:
        if self.party == self.tree.root:
            return self._partial_sum(received)
        parent = self.tree.parent[self.party]
        rounds = self._downward_rounds[(parent, self.party)]
        return self._decode_word(received, parent, rounds)

    # -- PartyLogic interface ----------------------------------------------------

    def send_bit(self, round_index: int, receiver: int, received: ReceivedMap) -> int:
        parent = self.tree.parent[self.party]
        if receiver == parent:
            word = self._partial_sum(received)
            rounds = self._upward_rounds[(self.party, parent)]
        else:
            word = self._total_sum(received)
            rounds = self._downward_rounds[(self.party, receiver)]
        position = rounds.index(round_index)
        return (word >> position) & 1

    def compute_output(self, received: ReceivedMap) -> object:
        return self._total_sum(received)


class AggregationProtocol(Protocol):
    """Tree-based sum aggregation with per-party integer inputs."""

    def __init__(self, graph: Graph, inputs: Dict[int, int], value_bits: int = 8, root: int = 0) -> None:
        super().__init__(graph)
        if value_bits < 1:
            raise ValueError("value_bits must be positive")
        missing = [party for party in graph.nodes if party not in inputs]
        if missing:
            raise ValueError(f"missing inputs for parties {missing}")
        for party, value in inputs.items():
            if not 0 <= value < (1 << value_bits):
                raise ValueError(f"input of party {party} does not fit in {value_bits} bits")
        self.inputs = dict(inputs)
        self.value_bits = value_bits
        self.tree = SpanningTree(graph, root=root)
        self._upward_rounds: Dict[Tuple[int, int], List[int]] = {}
        self._downward_rounds: Dict[Tuple[int, int], List[int]] = {}

    def build_schedule(self) -> List[List[DirectedEdge]]:
        schedule: List[List[DirectedEdge]] = []
        self._upward_rounds = {}
        self._downward_rounds = {}

        # Convergecast: children before parents (deepest levels first).
        for node in self.tree.nodes_bottom_up():
            parent = self.tree.parent[node]
            if parent is None:
                continue
            rounds = []
            for _ in range(self.value_bits):
                rounds.append(len(schedule))
                schedule.append([(node, parent)])
            self._upward_rounds[(node, parent)] = rounds

        # Broadcast: parents before children (root first).
        for node in self.tree.nodes_top_down():
            for child in self.tree.children[node]:
                rounds = []
                for _ in range(self.value_bits):
                    rounds.append(len(schedule))
                    schedule.append([(node, child)])
                self._downward_rounds[(node, child)] = rounds
        return schedule

    def create_party(self, party: int) -> PartyLogic:
        self.schedule()  # make sure the round layout tables exist
        return _AggregationParty(
            party,
            self.inputs[party],
            self.value_bits,
            self.tree,
            self._upward_rounds,
            self._downward_rounds,
        )

    def expected_total(self) -> int:
        """The ground-truth sum mod 2^value_bits (for tests and examples)."""
        return sum(self.inputs.values()) % (1 << self.value_bits)
