"""Analysis helpers: potential-function instrumentation, run metrics and
failure forensics."""

from repro.analysis.forensics import (
    TAXONOMY,
    anatomy_rows,
    classify_failure,
    corruption_heatmap,
    explain_dump,
    failed_dumps,
    phi_trajectory,
    render_event,
    render_heatmap,
    render_trajectory,
    rewind_depth_trajectory,
)
from repro.analysis.metrics import AggregateMetrics, RunMetrics, summarize_runs
from repro.analysis.potential import (
    PotentialSnapshot,
    PotentialTrace,
    compute_snapshot,
    link_agreement,
    link_divergence,
)

__all__ = [
    "AggregateMetrics",
    "RunMetrics",
    "summarize_runs",
    "PotentialSnapshot",
    "PotentialTrace",
    "compute_snapshot",
    "link_agreement",
    "link_divergence",
    "TAXONOMY",
    "classify_failure",
    "failed_dumps",
    "corruption_heatmap",
    "phi_trajectory",
    "rewind_depth_trajectory",
    "anatomy_rows",
    "render_heatmap",
    "render_trajectory",
    "render_event",
    "explain_dump",
]
