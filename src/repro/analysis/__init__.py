"""Analysis helpers: potential-function instrumentation and run metrics."""

from repro.analysis.metrics import AggregateMetrics, RunMetrics, summarize_runs
from repro.analysis.potential import (
    PotentialSnapshot,
    PotentialTrace,
    compute_snapshot,
    link_agreement,
    link_divergence,
)

__all__ = [
    "AggregateMetrics",
    "RunMetrics",
    "summarize_runs",
    "PotentialSnapshot",
    "PotentialTrace",
    "compute_snapshot",
    "link_agreement",
    "link_divergence",
]
