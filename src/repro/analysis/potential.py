"""The progress measures of the analysis (paper §4.1, Figure 1).

The correctness proof tracks, per link, the length ``G_{u,v}`` of the longest
agreeing transcript prefix and the divergence ``B_{u,v}``, and globally the
fully-agreed prefix ``G*``, the most optimistic simulated length ``H*`` and
their gap ``B* = H* - G*``.  The full potential φ additionally contains the
meeting-points potential ``ϕ_{u,v}`` and the error/hash-collision count, with
proof constants C₁…C₇ that the paper never instantiates.

This module computes the *measurable* part of that potential from the ground
truth the simulator has (it can see both endpoints' transcripts), which is
what the theorem-validation experiments plot:

* per-link ``G_{u,v}`` and ``B_{u,v}``,
* global ``G*``, ``H*``, ``B*``,
* a simplified potential ``φ̂ = (K/m)·Σ G_{u,v} − C₁·K·B*`` that must grow
  roughly linearly with the iteration count in successful runs.

These quantities are diagnostics; the coding scheme itself never looks at
them (parties cannot see each other's transcripts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.core.transcript import LinkTranscript
from repro.network.graph import Graph

#: Default value of the proof constant C1 used by the simplified potential.
DEFAULT_C1 = 2.0


@dataclass(frozen=True)
class PotentialSnapshot:
    """The progress measures of one instant of the simulation."""

    iteration: int
    link_agreement: Dict[Tuple[int, int], int]
    link_divergence: Dict[Tuple[int, int], int]
    global_agreement: int
    global_longest: int
    global_divergence: int
    simplified_potential: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "iteration": self.iteration,
            "G_star": self.global_agreement,
            "H_star": self.global_longest,
            "B_star": self.global_divergence,
            "phi": self.simplified_potential,
        }


def link_agreement(transcripts: Mapping[Tuple[int, int], LinkTranscript], u: int, v: int) -> int:
    """G_{u,v}: chunks of agreeing prefix between T_{u,v} and T_{v,u}."""
    mine = transcripts[(u, v)]
    theirs = transcripts[(v, u)]
    return mine.common_prefix_chunks(theirs)


def link_divergence(transcripts: Mapping[Tuple[int, int], LinkTranscript], u: int, v: int) -> int:
    """B_{u,v} = max(|T_{u,v}|, |T_{v,u}|) - G_{u,v}."""
    mine = transcripts[(u, v)]
    theirs = transcripts[(v, u)]
    return max(mine.num_chunks, theirs.num_chunks) - link_agreement(transcripts, u, v)


def compute_snapshot(
    graph: Graph,
    transcripts: Mapping[Tuple[int, int], LinkTranscript],
    iteration: int,
    scale_k: int,
    c1: float = DEFAULT_C1,
) -> PotentialSnapshot:
    """Compute all progress measures for the current state of the network."""
    agreement: Dict[Tuple[int, int], int] = {}
    divergence: Dict[Tuple[int, int], int] = {}
    longest = 0
    for u, v in graph.edges:
        agreement[(u, v)] = link_agreement(transcripts, u, v)
        divergence[(u, v)] = link_divergence(transcripts, u, v)
        longest = max(longest, transcripts[(u, v)].num_chunks, transcripts[(v, u)].num_chunks)
    g_star = min(agreement.values()) if agreement else 0
    b_star = longest - g_star
    m = max(1, graph.num_edges)
    phi = (scale_k / m) * sum(agreement.values()) - c1 * scale_k * b_star
    return PotentialSnapshot(
        iteration=iteration,
        link_agreement=agreement,
        link_divergence=divergence,
        global_agreement=g_star,
        global_longest=longest,
        global_divergence=b_star,
        simplified_potential=phi,
    )


@dataclass
class PotentialTrace:
    """A per-iteration series of potential snapshots."""

    snapshots: List[PotentialSnapshot] = field(default_factory=list)

    def record(self, snapshot: PotentialSnapshot) -> None:
        self.snapshots.append(snapshot)

    def series(self, key: str) -> List[float]:
        """Extract one column ("G_star", "H_star", "B_star", "phi") as a list."""
        return [snapshot.as_dict()[key] for snapshot in self.snapshots]

    def is_monotone_nondecreasing(self, key: str) -> bool:
        values = self.series(key)
        return all(b >= a for a, b in zip(values, values[1:]))

    def __len__(self) -> int:
        return len(self.snapshots)
