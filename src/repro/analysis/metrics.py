"""Derived metrics of a simulation run.

The theorems are stated in terms of a handful of quantities:

* the **rate** — communication of the noiseless protocol divided by the
  communication of the simulation (Θ(1) is the headline claim),
* the **noise fraction** actually inflicted by the adversary,
* the **success** of the simulation (all parties output what they would have
  output over a noiseless network), and
* the failure probability over repeated randomised runs.

``RunMetrics`` packages those for a single run; ``summarize_runs`` aggregates
repeated trials into the success-rate / mean-overhead rows that the Table 1
harness and the noise sweeps report.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from statistics import mean
from typing import Dict, Iterable, Optional


@dataclass(frozen=True)
class RunMetrics:
    """Quantitative summary of one simulation run."""

    scheme: str
    success: bool
    protocol_communication: int
    simulation_communication: int
    corruptions: int
    noise_fraction: float
    iterations_run: int
    iterations_budget: int
    communication_by_phase: Dict[str, int] = field(default_factory=dict)
    corruptions_by_phase: Dict[str, int] = field(default_factory=dict)
    meeting_point_truncations: int = 0
    rewinds_sent: int = 0
    hash_mismatches_detected: int = 0
    hash_collisions_observed: int = 0
    randomness_exchange_failures: int = 0

    @property
    def overhead(self) -> float:
        """CC(simulation) / CC(Π) — the inverse of the rate."""
        if self.protocol_communication == 0:
            return float("inf")
        return self.simulation_communication / self.protocol_communication

    @property
    def rate(self) -> float:
        """CC(Π) / CC(simulation) ∈ (0, 1] — the paper's notion of rate."""
        if self.simulation_communication == 0:
            return 0.0
        return self.protocol_communication / self.simulation_communication

    def as_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "success": self.success,
            "cc_protocol": self.protocol_communication,
            "cc_simulation": self.simulation_communication,
            "overhead": self.overhead,
            "rate": self.rate,
            "corruptions": self.corruptions,
            "noise_fraction": self.noise_fraction,
            "iterations_run": self.iterations_run,
            "hash_collisions": self.hash_collisions_observed,
            "truncations": self.meeting_point_truncations,
            "rewinds": self.rewinds_sent,
        }

    def to_payload(self) -> Dict[str, object]:
        """Lossless JSON-able representation (unlike :meth:`as_dict`, which
        is a human-facing summary)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, data: Dict[str, object]) -> "RunMetrics":
        """Inverse of :meth:`to_payload`; ignores unknown keys so newer
        writers stay readable by older code."""
        known = {spec.name for spec in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass(frozen=True)
class AggregateMetrics:
    """Success rate and mean overhead over repeated randomised runs."""

    scheme: str
    trials: int
    successes: int
    mean_overhead: float
    mean_noise_fraction: float
    mean_corruptions: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "trials": self.trials,
            "success_rate": self.success_rate,
            "mean_overhead": self.mean_overhead,
            "mean_noise_fraction": self.mean_noise_fraction,
            "mean_corruptions": self.mean_corruptions,
        }

    def to_payload(self) -> Dict[str, object]:
        """Lossless JSON-able representation."""
        return asdict(self)

    @classmethod
    def from_payload(cls, data: Dict[str, object]) -> "AggregateMetrics":
        """Inverse of :meth:`to_payload`; ignores unknown keys."""
        known = {spec.name for spec in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


def summarize_runs(runs: Iterable[RunMetrics], scheme: Optional[str] = None) -> AggregateMetrics:
    """Aggregate repeated trials of the same configuration."""
    runs = list(runs)
    if not runs:
        raise ValueError("cannot summarise an empty collection of runs")
    name = scheme if scheme is not None else runs[0].scheme
    return AggregateMetrics(
        scheme=name,
        trials=len(runs),
        successes=sum(1 for run in runs if run.success),
        mean_overhead=mean(run.overhead for run in runs),
        mean_noise_fraction=mean(run.noise_fraction for run in runs),
        mean_corruptions=mean(run.corruptions for run in runs),
    )
