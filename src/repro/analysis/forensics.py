"""Failure forensics: explain failed trials in the paper's own vocabulary.

The flight recorder (:mod:`repro.obs.recorder`) captures *what happened*
during a trial — corruptions per (round, link), hash-collision detections,
meeting-point transitions, rewinds, the Φ trajectory.  This module turns
those dumps into *why it failed*: every failed trial is classified into one
of four taxonomy causes, each naming a mechanism of the GHKRW analysis:

* ``hash-collision`` — the meeting-points digest matched while the
  transcripts diverged; the parties believed a lie.  The paper accepts this
  with probability bounded by the hash output length; when it happens, the
  simulation can silently commit to a wrong transcript.
* ``noise-budget-exhaustion`` — the adversary spent more than the scheme's
  nominal tolerance; the iteration budget ran out with the measured noise
  fraction at or above tolerance.  Failing here is *expected*: the theorem's
  premise was violated.
* ``rewind-exhaustion`` — noise stayed within tolerance, yet the iteration
  budget still ran out: corruptions were placed to maximise wasted progress
  (rewinds, meeting-point resets) rather than raw volume.
* ``decode-failure`` — the simulation *finished* its budget... and still
  produced the wrong output (no collision on record): the failure lives in
  the output-decision layer, not the interactive phase.

The taxonomy is **total** over failing trials: classification falls through
concrete evidence (events, then budget arithmetic) and ends in a definite
bucket, never "unknown".

Everything here consumes the JSON-pure dump layout produced by
:meth:`~repro.obs.recorder.FlightRecorder.finish_trial` — loaded straight
from a stored run's ``forensics`` payload or from a live recorder drain.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Taxonomy causes, in classification priority order.
TAXONOMY = (
    "hash-collision",
    "noise-budget-exhaustion",
    "rewind-exhaustion",
    "decode-failure",
)


def classify_failure(dump: Dict[str, Any]) -> str:
    """Assign one taxonomy cause to a failed trial's dump.

    Priority: recorded hash-collision events are conclusive (the protocol was
    actively deceived); otherwise budget arithmetic splits exhausted trials
    into over-tolerance (``noise-budget-exhaustion``) and within-tolerance
    (``rewind-exhaustion``); a trial that failed *without* exhausting its
    budget decoded wrongly after a clean-looking run (``decode-failure``).
    """
    counts = dump.get("event_counts") or {}
    if counts.get("hash_collision", 0) > 0:
        return "hash-collision"
    trial = dump.get("trial") or {}
    iterations_run = trial.get("iterations_run")
    iterations_budget = trial.get("iterations_budget")
    exhausted = (
        iterations_run is not None
        and iterations_budget is not None
        and iterations_run >= iterations_budget
    )
    if exhausted:
        noise = trial.get("noise_fraction")
        tolerance = trial.get("tolerance")
        if noise is not None and tolerance is not None and noise >= tolerance:
            return "noise-budget-exhaustion"
        return "rewind-exhaustion"
    return "decode-failure"


def failed_dumps(dumps: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The failing trials of a dump list, in stored order."""
    return [dump for dump in dumps if not (dump.get("trial") or {}).get("success", True)]


def corruption_heatmap(
    dumps: Iterable[Dict[str, Any]],
    round_bucket: int = 1,
) -> Dict[str, Dict[int, int]]:
    """Corruption counts per link × round(-bucket) across the given dumps.

    Returns ``{link: {bucket_start_round: count}}``.  ``round_bucket`` groups
    adjacent rounds (e.g. 64) so long trials stay readable; 1 keeps exact
    rounds.  Only failing trials carry events, so pass the dumps you mean.
    """
    if round_bucket < 1:
        raise ValueError("round_bucket must be >= 1")
    heatmap: Dict[str, Dict[int, int]] = {}
    for dump in dumps:
        for event in dump.get("events") or ():
            if event.get("kind") != "corruption":
                continue
            link = str(event.get("link"))
            bucket = (int(event.get("round", 0)) // round_bucket) * round_bucket
            row = heatmap.setdefault(link, {})
            row[bucket] = row.get(bucket, 0) + 1
    return heatmap


def phi_trajectory(dump: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The per-iteration Φ snapshots of one trial's dump, in iteration order."""
    events = [event for event in dump.get("events") or () if event.get("kind") == "potential"]
    return sorted(events, key=lambda event: event.get("iteration", 0))


def rewind_depth_trajectory(dump: Dict[str, Any]) -> List[Tuple[int, int]]:
    """``(iteration, rewinds_that_iteration)`` pairs for one trial's dump."""
    per_iteration: Counter = Counter()
    for event in dump.get("events") or ():
        if event.get("kind") == "rewind":
            per_iteration[int(event.get("iteration", 0))] += 1
    return sorted(per_iteration.items())


def anatomy_rows(dumps: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The failure-anatomy table: one row per taxonomy cause.

    Joins the Table-1-style reporting shape (plain dicts, renderable with
    :func:`repro.experiments.harness.format_table`).
    """
    failures = failed_dumps(dumps)
    by_cause: Dict[str, List[Dict[str, Any]]] = {cause: [] for cause in TAXONOMY}
    for dump in failures:
        by_cause[classify_failure(dump)].append(dump)
    rows: List[Dict[str, Any]] = []
    total_failed = len(failures)
    for cause in TAXONOMY:
        members = by_cause[cause]
        if not members:
            continue
        trials = [dump.get("trial") or {} for dump in members]
        counts = [dump.get("event_counts") or {} for dump in members]
        rows.append(
            {
                "cause": cause,
                "trials": len(members),
                "share": len(members) / total_failed if total_failed else 0.0,
                "mean_corruptions": _mean([trial.get("corruptions", 0) for trial in trials]),
                "mean_noise_fraction": _mean(
                    [trial.get("noise_fraction", 0.0) for trial in trials]
                ),
                "mean_rewinds": _mean([count.get("rewind", 0) for count in counts]),
                "mean_iterations": _mean([trial.get("iterations_run", 0) for trial in trials]),
                "seeds": ",".join(str(trial.get("seed")) for trial in trials[:8])
                + ("…" if len(trials) > 8 else ""),
            }
        )
    return rows


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# -- rendering ---------------------------------------------------------------


def render_heatmap(
    heatmap: Dict[str, Dict[int, int]],
    max_columns: int = 16,
) -> str:
    """Render a link × round-bucket corruption heatmap as fixed-width text.

    Buckets beyond ``max_columns`` are re-bucketed coarser until they fit, so
    a long trial still renders on one screen.
    """
    if not heatmap:
        return "(no corruption events recorded)"
    rounds = sorted({bucket for row in heatmap.values() for bucket in row})
    width = 1
    if len(rounds) > max_columns:
        span = rounds[-1] - rounds[0] + 1
        width = -(-span // max_columns)  # ceil
        coarse: Dict[str, Dict[int, int]] = {}
        for link, row in heatmap.items():
            out = coarse.setdefault(link, {})
            for bucket, count in row.items():
                start = rounds[0] + ((bucket - rounds[0]) // width) * width
                out[start] = out.get(start, 0) + count
        heatmap = coarse
        rounds = sorted({bucket for row in heatmap.values() for bucket in row})
    header_cells = [
        (f"r{start}" if width == 1 else f"r{start}-{start + width - 1}") for start in rounds
    ]
    link_width = max(len("link"), *(len(link) for link in heatmap))
    cell_widths = [max(len(cell), 3) for cell in header_cells]
    lines = [
        "link".ljust(link_width)
        + "  "
        + "  ".join(cell.rjust(w) for cell, w in zip(header_cells, cell_widths))
    ]
    for link in sorted(heatmap):
        row = heatmap[link]
        cells = [
            (str(row[start]) if start in row else "·").rjust(w)
            for start, w in zip(rounds, cell_widths)
        ]
        lines.append(link.ljust(link_width) + "  " + "  ".join(cells))
    return "\n".join(lines)


def render_trajectory(
    points: Sequence[Tuple[int, float]],
    label: str,
    width: int = 40,
) -> str:
    """One-line-per-point bar rendering of an (iteration, value) trajectory."""
    if not points:
        return f"(no {label} data)"
    peak = max(abs(value) for _, value in points) or 1.0
    lines = []
    for iteration, value in points:
        bar = "#" * max(0, round(abs(value) / peak * width))
        lines.append(f"  iter {iteration:>3}  {value:>12.4f}  {bar}")
    return "\n".join(lines)


def render_event(event: Dict[str, Any]) -> str:
    """One timeline line for a recorded event (``repro runs flight``)."""
    kind = event.get("kind", "?")
    fields = {key: value for key, value in event.items() if key != "kind"}
    parts = []
    for key in ("iteration", "round", "link", "phase"):  # anchor fields first
        if key in fields:
            parts.append(f"{key}={fields.pop(key)}")
    parts.extend(f"{key}={fields[key]}" for key in sorted(fields))
    return f"[{kind}] " + " ".join(parts)


def explain_dump(dump: Dict[str, Any]) -> Dict[str, Any]:
    """Everything ``repro runs flight`` needs about one trial: the verdict
    plus the trajectories, as one JSON-pure dict."""
    trial = dump.get("trial") or {}
    verdict: Optional[str] = None
    if not trial.get("success", True):
        verdict = classify_failure(dump)
    return {
        "trial": dict(trial),
        "cause": verdict,
        "event_counts": dict(dump.get("event_counts") or {}),
        "events_recorded": dump.get("events_recorded", 0),
        "events_kept": dump.get("events_kept", 0),
        "phi": [
            {"iteration": event.get("iteration"), "phi": event.get("phi")}
            for event in phi_trajectory(dump)
        ],
        "rewind_depth": [
            {"iteration": iteration, "rewinds": count}
            for iteration, count in rewind_depth_trajectory(dump)
        ],
    }
