"""Noise sweeps: success probability as a function of the noise fraction.

Theorem 1.1 / 1.2 say that each scheme succeeds with overwhelming probability
as long as the adversary stays below its nominal noise level (ε/m for
Algorithm A, ε/(m log m) for Algorithm B).  The corresponding figure-style
experiment sweeps the injected noise fraction across a multiplicative grid
around the nominal level and records the empirical success rate, producing
the characteristic "flat near 1, then falls off" series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.core.parameters import SchemeParameters
from repro.experiments.factories import RandomNoiseFactory
from repro.experiments.harness import run_trials
from repro.experiments.workloads import Workload


@dataclass(frozen=True)
class NoiseSweepPoint:
    """One point of the success-vs-noise curve."""

    noise_fraction_target: float
    multiplier: float
    success_rate: float
    mean_noise_fraction: float
    mean_overhead: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "target_fraction": self.noise_fraction_target,
            "multiplier": self.multiplier,
            "success_rate": self.success_rate,
            "measured_fraction": self.mean_noise_fraction,
            "mean_overhead": self.mean_overhead,
        }


def default_adversary_factory(fraction: float) -> Callable[[int], Adversary]:
    """Random insertion/deletion/substitution noise at a target per-slot probability.

    Returns a :class:`~repro.experiments.factories.RandomNoiseFactory` — a
    picklable dataclass rather than a closure, so sweeps parallelise and cache.
    """
    return RandomNoiseFactory(fraction=fraction)


def noise_sweep(
    workload: Workload,
    scheme: SchemeParameters,
    multipliers: Sequence[float] = (0.25, 1.0, 4.0, 16.0),
    epsilon: float = 0.01,
    trials: int = 3,
    base_seed: int = 0,
    adversary_for_fraction: Optional[Callable[[float], Callable[[int], Adversary]]] = None,
) -> List[NoiseSweepPoint]:
    """Sweep the injected noise around the scheme's nominal tolerance."""
    nominal = scheme.nominal_noise_fraction(workload.graph, epsilon=epsilon)
    make_factory = adversary_for_fraction or default_adversary_factory
    points: List[NoiseSweepPoint] = []
    for multiplier in multipliers:
        fraction = nominal * multiplier
        trial_set = run_trials(
            workload,
            scheme,
            adversary_factory=make_factory(fraction),
            trials=trials,
            base_seed=base_seed,
            label=f"{workload.name}/{scheme.name}/x{multiplier}",
        )
        aggregate = trial_set.aggregate
        points.append(
            NoiseSweepPoint(
                noise_fraction_target=fraction,
                multiplier=multiplier,
                success_rate=aggregate.success_rate,
                mean_noise_fraction=aggregate.mean_noise_fraction,
                mean_overhead=aggregate.mean_overhead,
            )
        )
    return points


def crossover_multiplier(points: Sequence[NoiseSweepPoint], threshold: float = 0.5) -> Optional[float]:
    """The first sweep multiplier at which the success rate drops below ``threshold``.

    Returns ``None`` if the success rate never drops below the threshold,
    which (for well-chosen grids) means the scheme tolerated every tested
    level.
    """
    for point in points:
        if point.success_rate < threshold:
            return point.multiplier
    return None
