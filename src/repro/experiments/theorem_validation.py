"""Experiments that validate the shapes claimed by Theorems 1.1 / 1.2.

Three figure-style series:

* ``rate_vs_protocol_size`` — Theorem 1.1 claims CC(simulation) = O(CC(Π)):
  the measured overhead must stay (roughly) flat as CC(Π) grows.
* ``rate_vs_network_size`` — the rate is Θ(1) *independently of the network*:
  the measured overhead must not blow up with m (it may move by a constant).
* ``scheme_comparison`` — at its own nominal noise level each of Algorithms
  A, B, C should succeed with high probability, while the uncoded baseline
  collapses; this is the behavioural content of Table 1's last three rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.adversary.oblivious import AdditiveObliviousAdversary
from repro.adversary.strategies import CompositeAdversary, RandomNoiseAdversary
from repro.baselines.uncoded import run_uncoded
from repro.core.parameters import SchemeParameters, algorithm_a, algorithm_b, algorithm_c
from repro.experiments.factories import (
    NoiseOrNoiselessFactory,
    PhaseTargetedFactory,
    RandomNoiseFactory,
)
from repro.experiments.harness import run_trials
from repro.experiments.workloads import gossip_workload


@dataclass(frozen=True)
class SeriesPoint:
    """A single (x, y...) sample of a figure-style series."""

    x: float
    overhead: float
    rate: float
    success_rate: float
    extra: Dict[str, float]

    def as_dict(self) -> Dict[str, float]:
        data = {"x": self.x, "overhead": self.overhead, "rate": self.rate, "success_rate": self.success_rate}
        data.update(self.extra)
        return data


def rate_vs_protocol_size(
    scheme: SchemeParameters,
    phases_grid: Sequence[int] = (8, 24, 48),
    topology: str = "clique",
    num_nodes: int = 5,
    trials: int = 2,
    base_seed: int = 0,
    noisy: bool = False,
    epsilon: float = 0.01,
) -> List[SeriesPoint]:
    """Overhead as a function of CC(Π); must stay bounded (constant rate)."""
    points: List[SeriesPoint] = []
    for phases in phases_grid:
        workload = gossip_workload(topology=topology, num_nodes=num_nodes, phases=phases, seed=base_seed)
        fraction = scheme.nominal_noise_fraction(workload.graph, epsilon=epsilon) if noisy else 0.0

        factory = NoiseOrNoiselessFactory(fraction=fraction)
        trial_set = run_trials(workload, scheme, adversary_factory=factory, trials=trials, base_seed=base_seed)
        aggregate = trial_set.aggregate
        points.append(
            SeriesPoint(
                x=workload.communication,
                overhead=aggregate.mean_overhead,
                rate=1.0 / aggregate.mean_overhead if aggregate.mean_overhead else 0.0,
                success_rate=aggregate.success_rate,
                extra={"phases": phases},
            )
        )
    return points


def rate_vs_network_size(
    scheme: SchemeParameters,
    node_grid: Sequence[int] = (4, 6, 8),
    topology: str = "line",
    phases: int = 16,
    trials: int = 2,
    base_seed: int = 0,
) -> List[SeriesPoint]:
    """Overhead as the network grows; the rate stays Θ(1) (noise tolerance shrinks instead)."""
    points: List[SeriesPoint] = []
    for num_nodes in node_grid:
        workload = gossip_workload(topology=topology, num_nodes=num_nodes, phases=phases, seed=base_seed)
        trial_set = run_trials(workload, scheme, trials=trials, base_seed=base_seed)
        aggregate = trial_set.aggregate
        points.append(
            SeriesPoint(
                x=workload.graph.num_edges,
                overhead=aggregate.mean_overhead,
                rate=1.0 / aggregate.mean_overhead if aggregate.mean_overhead else 0.0,
                success_rate=aggregate.success_rate,
                extra={"num_nodes": num_nodes},
            )
        )
    return points


def scheme_comparison(
    topology: str = "line",
    num_nodes: int = 5,
    phases: int = 12,
    epsilon: float = 0.01,
    trials: int = 3,
    base_seed: int = 0,
) -> List[Dict[str, object]]:
    """Success of A, B, C (each at its nominal noise) vs the uncoded baseline."""
    workload = gossip_workload(topology=topology, num_nodes=num_nodes, phases=phases, seed=base_seed)
    rows: List[Dict[str, object]] = []

    configurations = [
        ("algorithm_a", algorithm_a(), "oblivious"),
        ("algorithm_b", algorithm_b(), "adaptive"),
        ("algorithm_c", algorithm_c(), "adaptive"),
    ]
    for label, scheme, noise_kind in configurations:
        fraction = scheme.nominal_noise_fraction(workload.graph, epsilon=epsilon)

        if noise_kind == "adaptive":
            factory = PhaseTargetedFactory(fraction=fraction)
        else:
            factory = RandomNoiseFactory(fraction=fraction)
        trial_set = run_trials(workload, scheme, adversary_factory=factory, trials=trials, base_seed=base_seed)
        aggregate = trial_set.aggregate
        rows.append(
            {
                "scheme": label,
                "noise": noise_kind,
                "nominal_fraction": fraction,
                "success_rate": aggregate.success_rate,
                "mean_overhead": aggregate.mean_overhead,
            }
        )

    # Uncoded baseline at Algorithm A's noise level.  On small workloads the
    # random noise floor can round to zero corruptions, so the baseline also
    # receives one guaranteed additive error on the very first transmission of
    # link (1, 0) — an additive offset always changes the delivered symbol.
    fraction = algorithm_a().nominal_noise_fraction(workload.graph, epsilon=epsilon)
    successes = 0
    for trial in range(trials):
        seed = base_seed + trial * 997 + 5
        adversary = CompositeAdversary(
            components=(
                RandomNoiseAdversary(
                    corruption_probability=fraction, insertion_probability=fraction / 4, seed=seed
                ),
                AdditiveObliviousAdversary(pattern={(0, 1, 0): 1}),
            )
        )
        successes += int(run_uncoded(workload.protocol, adversary=adversary).success)
    rows.append(
        {
            "scheme": "uncoded",
            "noise": "oblivious",
            "nominal_fraction": fraction,
            "success_rate": successes / trials,
            "mean_overhead": 1.0,
        }
    )
    return rows
