"""Serialising experiment results to JSON and Markdown.

The command-line interface (:mod:`repro.cli`) and downstream users need a
stable way to persist the result of an experiment run: a plain-JSON document
with enough metadata to know what produced it, plus a Markdown rendering for
reports.  Only built-in types end up in the JSON so the files are stable and
diff-able across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.harness import format_table

Row = Dict[str, object]


@dataclass
class ExperimentReport:
    """A named collection of result rows with provenance metadata."""

    experiment: str
    rows: List[Row]
    parameters: Dict[str, object] = field(default_factory=dict)
    generated_at: Optional[str] = None

    def __post_init__(self) -> None:
        if self.generated_at is None:
            self.generated_at = datetime.now(timezone.utc).isoformat()

    # -- conversions -----------------------------------------------------------

    def columns(self) -> List[str]:
        """Union of the row keys, keeping first-seen order."""
        columns: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "generated_at": self.generated_at,
            "parameters": self.parameters,
            "rows": self.rows,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_markdown(self) -> str:
        """Render as a Markdown section with a fixed-width table."""
        header = f"## {self.experiment}\n\ngenerated: {self.generated_at}\n"
        if self.parameters:
            params = ", ".join(f"{key}={value}" for key, value in sorted(self.parameters.items()))
            header += f"parameters: {params}\n"
        table = format_table(self.rows, self.columns()) if self.rows else "(no rows)"
        return f"{header}\n```\n{table}\n```\n"

    # -- persistence ------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write the report to ``path`` (format chosen by extension: .json or .md)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix == ".md":
            path.write_text(self.to_markdown(), encoding="utf-8")
        else:
            path.write_text(self.to_json(), encoding="utf-8")
        return path

    def save_to_store(self, store) -> str:
        """Persist into a :class:`repro.runtime.store.RunStore`; returns the
        run id (browse later with ``repro runs list`` / ``repro runs show``)."""
        return store.record_report(self)


def load_report(path: Union[str, Path]) -> ExperimentReport:
    """Read a JSON report written by :meth:`ExperimentReport.save`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return ExperimentReport(
        experiment=data["experiment"],
        rows=list(data["rows"]),
        parameters=dict(data.get("parameters", {})),
        generated_at=data.get("generated_at"),
    )
