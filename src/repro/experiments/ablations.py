"""Ablations of the design choices called out in DESIGN.md §6.

The paper motivates each ingredient of the scheme with a failure mode that
would appear without it; these ablations make those failure modes measurable:

* **Flag passing** (§1.2): without the global continue/idle flags, a single
  early error on a line network lets the far end keep simulating garbage, so
  recovery takes many more iterations (and, in the worst case described in
  the paper, Θ(m·n) wasted communication per error).
* **Rewind phase** (§3.1(iv)): without the explicit rewind requests, length
  discrepancies between neighbouring links can only be fixed through the
  much slower meeting-points detection on those links.
* **Hash length** (§1.2 "our techniques"): constant-size hashes suffice
  against oblivious noise (Algorithm A) but longer, Θ(log m)-bit hashes cut
  the number of undetected errors (hash collisions), at a rate cost.
* **Chunk size** (implicit in the A/B/C presets): larger chunks amortise the
  per-iteration control traffic and improve the rate, at the cost of a
  proportionally lower tolerated noise fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.adversary.strategies import LinkTargetedAdversary
from repro.core.engine import simulate
from repro.core.parameters import SchemeParameters, crs_oblivious_scheme
from repro.experiments.factories import LinkTargetedFactory, RandomNoiseFactory
from repro.experiments.harness import run_trials
from repro.experiments.workloads import Workload, gossip_workload, line_example_workload


@dataclass(frozen=True)
class AblationRow:
    """One configuration of an ablation experiment."""

    label: str
    success_rate: float
    mean_overhead: float
    mean_iterations: float
    extra: Dict[str, float]

    def as_dict(self) -> Dict[str, object]:
        data = {
            "label": self.label,
            "success_rate": self.success_rate,
            "mean_overhead": self.mean_overhead,
            "mean_iterations": self.mean_iterations,
        }
        data.update(self.extra)
        return data


def _measure(
    workload: Workload,
    scheme: SchemeParameters,
    adversary_factory: Callable[[int], Adversary],
    trials: int,
    base_seed: int,
    label: str,
    extra: Optional[Dict[str, float]] = None,
) -> AblationRow:
    # Routed through the runtime (ablations parallelise and cache like every
    # other experiment); the ablation-specific seed schedule is kept verbatim.
    seeds = [base_seed + trial * 131 + 7 for trial in range(trials)]
    trial_set = run_trials(workload, scheme, adversary_factory=adversary_factory, seeds=seeds, label=label)
    runs = trial_set.runs
    return AblationRow(
        label=label,
        success_rate=sum(1 for run in runs if run.success) / len(runs),
        mean_overhead=sum(run.overhead for run in runs) / len(runs),
        mean_iterations=sum(run.iterations_run for run in runs) / len(runs),
        extra=extra or {},
    )


def flag_passing_ablation(
    num_nodes: int = 6,
    blocks: int = 3,
    errors: int = 2,
    trials: int = 3,
    base_seed: int = 0,
) -> List[AblationRow]:
    """Compare the scheme with and without the flag-passing phase on the line example."""
    workload = line_example_workload(num_nodes=num_nodes, blocks=blocks, seed=base_seed)

    # A few errors concentrated near the head of the line, as in the paper's
    # §1.2 story about wasted end-of-line communication.
    factory = LinkTargetedFactory(errors=errors)

    rows = []
    for enabled in (True, False):
        scheme = crs_oblivious_scheme(enable_flag_passing=enabled, iteration_factor=6.0)
        rows.append(
            _measure(
                workload,
                scheme,
                factory,
                trials,
                base_seed,
                label=f"flag_passing={'on' if enabled else 'off'}",
                extra={"flag_passing": float(enabled)},
            )
        )
    return rows


def rewind_ablation(
    num_nodes: int = 6,
    blocks: int = 3,
    errors: int = 2,
    trials: int = 3,
    base_seed: int = 0,
) -> List[AblationRow]:
    """Compare the scheme with and without the rewind phase.

    The attack corrupts the head link of the line early on: once that link is
    rolled back by the meeting-points mechanism, the chunks already simulated
    further down the line were computed from stale data, and *only* the rewind
    phase can truncate them (they agree pairwise, so the meeting points never
    fire there).  Without the rewind phase the simulation either fails or needs
    far more iterations.
    """
    workload = line_example_workload(num_nodes=num_nodes, blocks=blocks, seed=base_seed)

    factory = LinkTargetedFactory(errors=errors)

    rows = []
    for enabled in (True, False):
        scheme = crs_oblivious_scheme(enable_rewind_phase=enabled, iteration_factor=6.0)
        rows.append(
            _measure(
                workload,
                scheme,
                factory,
                trials,
                base_seed,
                label=f"rewind={'on' if enabled else 'off'}",
                extra={"rewind": float(enabled)},
            )
        )
    return rows


def hash_length_ablation(
    hash_bits_grid: Sequence[int] = (2, 4, 8, 16),
    topology: str = "line",
    num_nodes: int = 5,
    phases: int = 12,
    noise_fraction: float = 0.004,
    trials: int = 3,
    base_seed: int = 0,
) -> List[AblationRow]:
    """Success and overhead as a function of the hash output length τ."""
    workload = gossip_workload(topology=topology, num_nodes=num_nodes, phases=phases, seed=base_seed)

    factory = RandomNoiseFactory(fraction=noise_fraction, insertion_fraction=0.0)

    rows = []
    for bits in hash_bits_grid:
        scheme = crs_oblivious_scheme(hash_constant_bits=bits)
        rows.append(
            _measure(
                workload,
                scheme,
                factory,
                trials,
                base_seed,
                label=f"hash_bits={bits}",
                extra={"hash_bits": float(bits)},
            )
        )
    return rows


def chunk_size_ablation(
    multiplier_grid: Sequence[int] = (2, 5, 10, 20),
    topology: str = "clique",
    num_nodes: int = 5,
    phases: int = 24,
    trials: int = 2,
    base_seed: int = 0,
) -> List[AblationRow]:
    """Rate as a function of the chunk size (bigger chunks amortise control traffic)."""
    workload = gossip_workload(topology=topology, num_nodes=num_nodes, phases=phases, seed=base_seed)

    factory = RandomNoiseFactory(fraction=0.0, insertion_fraction=0.0)

    rows = []
    for multiplier in multiplier_grid:
        scheme = crs_oblivious_scheme(chunk_multiplier=multiplier)
        rows.append(
            _measure(
                workload,
                scheme,
                factory,
                trials,
                base_seed,
                label=f"chunk_multiplier={multiplier}",
                extra={"chunk_multiplier": float(multiplier)},
            )
        )
    return rows


def single_error_cost(
    num_nodes: int = 6,
    blocks: int = 3,
    base_seed: int = 0,
    enable_flag_passing: bool = True,
) -> Dict[str, float]:
    """Measure the extra communication caused by exactly one corrupted transmission.

    The adversary flips one bit early in the very first simulation phase of the
    link (0, 1); the reported ``extra_overhead`` is the difference between the
    noisy and the noiseless overhead of the same configuration — the measurable
    analogue of the paper's "one error costs O(K) extra communication" claim
    (and of its Θ(m·n) counter-example when flag passing is removed).
    """
    workload = line_example_workload(num_nodes=num_nodes, blocks=blocks, seed=base_seed)
    scheme = crs_oblivious_scheme(enable_flag_passing=enable_flag_passing, iteration_factor=8.0)

    clean = simulate(workload.protocol, scheme=scheme, seed=base_seed)

    adversary = LinkTargetedAdversary(
        target=(0, 1),
        phases=("simulation",),
        corruption_probability=1.0,
        max_corruptions=1,
        seed=base_seed,
    )
    noisy = simulate(workload.protocol, scheme=scheme, adversary=adversary, seed=base_seed)

    return {
        "flag_passing": float(enable_flag_passing),
        "clean_overhead": clean.overhead,
        "noisy_overhead": noisy.overhead,
        "extra_overhead": noisy.overhead - clean.overhead,
        "clean_success": float(clean.success),
        "noisy_success": float(noisy.success),
    }
