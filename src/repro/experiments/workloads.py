"""Workload generators for experiments and benchmarks.

Every experiment needs (topology, protocol, inputs) triples that are cheap to
build, deterministic under a seed, and representative of the regimes the
paper discusses: dense fully-utilised traffic (parity gossip), sparse
tree-structured computation (aggregation), the paper's own line example, and
structure-free random protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.network.graph import Graph
from repro.network.topologies import build_topology
from repro.protocols.aggregation import AggregationProtocol
from repro.protocols.base import Protocol
from repro.protocols.gossip import PairwiseExchangeProtocol, ParityGossipProtocol
from repro.protocols.line_example import LineExampleProtocol
from repro.protocols.random_protocol import RandomProtocol
from repro.protocols.token_ring import TokenRingProtocol
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class Workload:
    """A named (graph, protocol) pair ready to be simulated."""

    name: str
    graph: Graph
    protocol: Protocol

    @property
    def communication(self) -> int:
        return self.protocol.communication_complexity()


def _bit_inputs(graph: Graph, seed: int) -> Dict[int, int]:
    rng = make_rng(seed)
    return {party: rng.getrandbits(1) for party in graph.nodes}


def _value_inputs(graph: Graph, seed: int, value_bits: int) -> Dict[int, int]:
    rng = make_rng(seed)
    return {party: rng.randrange(1 << value_bits) for party in graph.nodes}


def gossip_workload(topology: str = "line", num_nodes: int = 5, phases: int = 8, seed: int = 0) -> Workload:
    """Parity gossip over a named topology."""
    graph = build_topology(topology, num_nodes, seed=seed)
    protocol = ParityGossipProtocol(graph, _bit_inputs(graph, seed), phases=phases)
    return Workload(name=f"gossip-{topology}-n{num_nodes}-p{phases}", graph=graph, protocol=protocol)


def aggregation_workload(topology: str = "binary_tree", num_nodes: int = 7, value_bits: int = 6, seed: int = 0) -> Workload:
    """Convergecast/broadcast sum over a named topology."""
    graph = build_topology(topology, num_nodes, seed=seed)
    protocol = AggregationProtocol(graph, _value_inputs(graph, seed, value_bits), value_bits=value_bits)
    return Workload(name=f"aggregation-{topology}-n{num_nodes}", graph=graph, protocol=protocol)


def line_example_workload(num_nodes: int = 5, blocks: int = 3, seed: int = 0) -> Workload:
    """The paper's §1.2 line example (relay plus end-of-line ping-pong)."""
    graph = build_topology("line", num_nodes)
    protocol = LineExampleProtocol(graph, _bit_inputs(graph, seed), blocks=blocks)
    return Workload(name=f"line-example-n{num_nodes}-b{blocks}", graph=graph, protocol=protocol)


def token_ring_workload(num_nodes: int = 5, value_bits: int = 4, laps: int = 2, seed: int = 0) -> Workload:
    """Sparse token circulation around a ring."""
    graph = build_topology("ring", num_nodes)
    protocol = TokenRingProtocol(graph, _value_inputs(graph, seed, value_bits), value_bits=value_bits, laps=laps)
    return Workload(name=f"token-ring-n{num_nodes}-l{laps}", graph=graph, protocol=protocol)


def random_workload(
    topology: str = "random",
    num_nodes: int = 6,
    num_rounds: int = 20,
    density: float = 0.4,
    seed: int = 0,
) -> Workload:
    """A structure-free random protocol over a (possibly random) topology."""
    graph = build_topology(topology, num_nodes, seed=seed)
    rng = make_rng(seed + 1)
    inputs = {party: rng.randrange(1 << 16) for party in graph.nodes}
    protocol = RandomProtocol(graph, inputs, num_rounds=num_rounds, density=density, seed=seed + 2)
    return Workload(name=f"random-{topology}-n{num_nodes}-r{num_rounds}", graph=graph, protocol=protocol)


def pairwise_workload(topology: str = "line", num_nodes: int = 4, seed: int = 0) -> Workload:
    """The smallest workload (one round of neighbour exchange) for smoke tests."""
    graph = build_topology(topology, num_nodes, seed=seed)
    protocol = PairwiseExchangeProtocol(graph, _bit_inputs(graph, seed))
    return Workload(name=f"pairwise-{topology}-n{num_nodes}", graph=graph, protocol=protocol)


WORKLOAD_BUILDERS: Dict[str, Callable[..., Workload]] = {
    "gossip": gossip_workload,
    "aggregation": aggregation_workload,
    "line_example": line_example_workload,
    "token_ring": token_ring_workload,
    "random": random_workload,
    "pairwise": pairwise_workload,
}
