"""Generic experiment harness: repeated randomised trials and sweeps.

Every experiment in this package reduces to: pick a workload, a scheme and an
adversary *factory* (a callable that builds a fresh adversary per trial, so
each trial sees fresh noise randomness), run several seeds, and aggregate the
outcomes.  ``run_trials`` does exactly that and returns both the individual
:class:`RunMetrics` and the :class:`AggregateMetrics` summary; ``sweep`` maps
the same procedure over a parameter grid.

Execution is delegated to :mod:`repro.runtime`: trials run on the backend of
the active runtime context (serial by default, a process pool under
``--jobs N``), already-computed trials are served from the
:class:`~repro.runtime.cache.ResultCache`, and — when a
:class:`~repro.runtime.store.RunStore` is active — every trial set is
persisted for later ``repro runs`` inspection.  Passing ``backend=`` /
``cache=`` / ``store=`` explicitly overrides the ambient context per call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.analysis.metrics import AggregateMetrics, RunMetrics, summarize_runs
from repro.core.config import EngineConfig
from repro.core.parameters import SchemeParameters
from repro.experiments.factories import NoiselessFactory
from repro.experiments.workloads import Workload
from repro.obs import counters_delta, get_obs
from repro.runtime import (
    ExecutionBackend,
    RunStore,
    build_trial_specs,
    derive_trial_seed,
    execute_trials,
    get_runtime,
)
from repro.runtime.context import UNSET as _UNSET

AdversaryFactory = Callable[[int], Adversary]


#: The default adversary factory: no noise.  A :class:`NoiselessFactory`
#: instance rather than a plain function, so default (noiseless) trials share
#: their cache fingerprint with explicitly constructed ``NoiselessFactory()``
#: cells instead of splitting the cache over two spellings of "no noise".
noiseless_factory: AdversaryFactory = NoiselessFactory()


@dataclass
class TrialSet:
    """All results of one experimental cell (fixed workload/scheme/adversary)."""

    label: str
    runs: List[RunMetrics]
    aggregate: AggregateMetrics
    #: Flight-recorder dumps (one per executed trial, sorted by seed) when a
    #: recorder was ambient during the run; ``None`` otherwise.
    forensics: Optional[List[Dict[str, object]]] = None

    def as_dict(self) -> Dict[str, object]:
        data = self.aggregate.as_dict()
        data["label"] = self.label
        return data


def run_trials(
    workload: Workload,
    scheme: SchemeParameters,
    adversary_factory: AdversaryFactory = noiseless_factory,
    trials: int = 3,
    base_seed: int = 0,
    label: Optional[str] = None,
    backend: Optional[ExecutionBackend] = None,
    cache=_UNSET,
    store=_UNSET,
    seeds: Optional[Sequence[int]] = None,
    engine: Optional[EngineConfig] = None,
) -> TrialSet:
    """Run ``trials`` independent simulations of one configuration.

    Each trial gets its own fully-derived seed (``derive_trial_seed``), so the
    result is independent of execution order and backend.  ``seeds`` overrides
    the derivation for harnesses with their own seed schedule.  ``backend`` /
    ``cache`` / ``store`` default to the active runtime context
    (:func:`repro.runtime.use_runtime`); pass ``cache=None`` / ``store=None``
    to disable either for this call.  ``engine`` pins the
    :class:`~repro.core.config.EngineConfig` the trials execute under
    (default: the runtime context's, else the engine default); the
    configuration is fingerprint-invisible, so it never affects caching or
    results — only execution speed.
    """
    if seeds is None:
        if trials < 1:
            raise ValueError("trials must be positive")
        seeds = [derive_trial_seed(base_seed, trial) for trial in range(trials)]
    else:
        seeds = list(seeds)
        if not seeds:
            raise ValueError("seeds must be non-empty")
    # Resolve the ambient engine configuration into the specs now: worker
    # processes never inherit this process's runtime context, so the
    # configuration must ride inside each (picklable) spec.
    active_engine = engine if engine is not None else get_runtime().engine
    specs = build_trial_specs(workload, scheme, adversary_factory, seeds, engine=active_engine)
    active_cache = get_runtime().cache if cache is _UNSET else cache
    active_backend = backend if backend is not None else get_runtime().backend
    # Backends that track per-worker attribution (DistributedBackend) expose
    # it via pop_last_attribution().  Pop once *before* executing to discard
    # anything a failed earlier run left behind (its exception skipped the
    # pop below), and once after to collect this cell's attribution — so a
    # cell served entirely from the local cache can never inherit another
    # cell's workers/cache-hit numbers.
    popper = getattr(active_backend, "pop_last_attribution", None)
    if callable(popper):
        popper()
    hits_before = active_cache.stats.hits if active_cache is not None else 0
    name = label if label is not None else f"{workload.name}/{scheme.name}"
    # One registry may span a whole sweep: snapshot before/after and store
    # only this cell's delta.  The tracer likewise accumulates per cell — its
    # drain below empties it, so each cell yields one trace record.
    obs = get_obs()
    metrics_before = obs.metrics.flat_snapshot() if obs.metrics is not None else None
    cell_scope = obs.tracer.span("trial_set", label=name) if obs.tracer is not None else None
    started = time.perf_counter()
    if cell_scope is not None:
        with cell_scope:
            runs = execute_trials(specs, backend=backend, cache=cache)
    else:
        runs = execute_trials(specs, backend=backend, cache=cache)
    wall_clock_seconds = time.perf_counter() - started
    cached_trials = (active_cache.stats.hits - hits_before) if active_cache is not None else 0
    run_store: Optional[RunStore] = get_runtime().store if store is _UNSET else store
    attribution = popper() if callable(popper) else None
    if attribution is not None:
        # Trials served from a *remote* worker's cache were not paid for
        # either — fold them into cached_trials so the wall-clock regression
        # gate stays honest across hosts.
        cached_trials += int(attribution.get("remote_cache_hits", 0) or 0)
    obs_metrics = (
        counters_delta(metrics_before, obs.metrics.flat_snapshot())
        if metrics_before is not None
        else None
    )
    forensics = None
    if obs.recorder is not None:
        # Dumps arrive in execution order (worker completion order under the
        # distributed backend); sort by trial seed so the stored record is a
        # pure function of the specs, whatever backend ran them.  Cache hits
        # never executed, so a fully-cached cell stores an empty list.
        forensics = sorted(
            obs.recorder.drain(),
            key=lambda dump: (
                (dump.get("trial") or {}).get("seed") is None,
                (dump.get("trial") or {}).get("seed"),
            ),
        )
    trial_set = TrialSet(
        label=name,
        runs=runs,
        aggregate=summarize_runs(runs, scheme=scheme.name),
        forensics=forensics,
    )
    if run_store is not None:
        run_store.record_trial_set(
            label=trial_set.label,
            runs=trial_set.runs,
            aggregate=trial_set.aggregate,
            experiment="run_trials",
            parameters={"scheme": scheme.name, "workload": workload.name, "seeds": list(seeds)},
            # Wall clock of this cell's execute_trials call, plus how many of
            # its trials were cache hits — `runs diff` only gates on the wall
            # clock of runs that computed every trial fresh, so a warm cache
            # can never fake (or mask) a perf regression.
            wall_clock_seconds=wall_clock_seconds,
            cached_trials=cached_trials,
            worker_attribution=attribution,
            obs_metrics=obs_metrics,
            forensics=forensics,
        )
        if obs.tracer is not None:
            spans = obs.tracer.drain()
            if spans:
                run_store.record_trace(
                    label=trial_set.label,
                    trace_id=obs.tracer.trace_id,
                    spans=spans,
                    parameters={"scheme": scheme.name, "workload": workload.name},
                )
    return trial_set


def sweep(
    cells: Iterable[Dict[str, object]],
    runner: Callable[..., TrialSet],
    backend: Optional[ExecutionBackend] = None,
    cache=_UNSET,
) -> List[TrialSet]:
    """Run a list of keyword-argument cells through ``runner`` and collect results.

    ``backend``/``cache`` install a runtime override for the duration of the
    sweep, so a runner that routes through :func:`run_trials` (directly or via
    the experiment modules) picks them up without signature changes.
    """
    from repro.runtime import use_runtime

    with use_runtime(backend=backend, cache=cache):
        return [runner(**cell) for cell in cells]


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render result dictionaries as a fixed-width text table (for examples/CLI)."""
    widths = {column: len(column) for column in columns}
    rendered_rows: List[Dict[str, str]] = []
    for row in rows:
        rendered: Dict[str, str] = {}
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.3f}"
            else:
                text = str(value)
            rendered[column] = text
            widths[column] = max(widths[column], len(text))
        rendered_rows.append(rendered)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    body = [
        "  ".join(rendered[column].ljust(widths[column]) for column in columns)
        for rendered in rendered_rows
    ]
    return "\n".join([header, separator, *body])
