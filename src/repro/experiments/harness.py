"""Generic experiment harness: repeated randomised trials and sweeps.

Every experiment in this package reduces to: pick a workload, a scheme and an
adversary *factory* (a callable that builds a fresh adversary per trial, so
each trial sees fresh noise randomness), run several seeds, and aggregate the
outcomes.  ``run_trials`` does exactly that and returns both the individual
:class:`RunMetrics` and the :class:`AggregateMetrics` summary; ``sweep`` maps
the same procedure over a parameter grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.adversary.base import Adversary, NoiselessAdversary
from repro.analysis.metrics import AggregateMetrics, RunMetrics, summarize_runs
from repro.core.engine import simulate
from repro.core.parameters import SchemeParameters
from repro.experiments.workloads import Workload

AdversaryFactory = Callable[[int], Adversary]


def noiseless_factory(_: int) -> Adversary:
    """The default adversary factory: no noise."""
    return NoiselessAdversary()


@dataclass
class TrialSet:
    """All results of one experimental cell (fixed workload/scheme/adversary)."""

    label: str
    runs: List[RunMetrics]
    aggregate: AggregateMetrics

    def as_dict(self) -> Dict[str, object]:
        data = self.aggregate.as_dict()
        data["label"] = self.label
        return data


def run_trials(
    workload: Workload,
    scheme: SchemeParameters,
    adversary_factory: AdversaryFactory = noiseless_factory,
    trials: int = 3,
    base_seed: int = 0,
    label: Optional[str] = None,
) -> TrialSet:
    """Run ``trials`` independent simulations of one configuration."""
    if trials < 1:
        raise ValueError("trials must be positive")
    runs: List[RunMetrics] = []
    for trial in range(trials):
        seed = base_seed + 1000 * trial + 17
        adversary = adversary_factory(seed)
        result = simulate(workload.protocol, scheme=scheme, adversary=adversary, seed=seed)
        runs.append(result.metrics)
    name = label if label is not None else f"{workload.name}/{scheme.name}"
    return TrialSet(label=name, runs=runs, aggregate=summarize_runs(runs, scheme=scheme.name))


def sweep(
    cells: Iterable[Dict[str, object]],
    runner: Callable[..., TrialSet],
) -> List[TrialSet]:
    """Run a list of keyword-argument cells through ``runner`` and collect results."""
    return [runner(**cell) for cell in cells]


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render result dictionaries as a fixed-width text table (for examples/CLI)."""
    widths = {column: len(column) for column in columns}
    rendered_rows: List[Dict[str, str]] = []
    for row in rows:
        rendered: Dict[str, str] = {}
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.3f}"
            else:
                text = str(value)
            rendered[column] = text
            widths[column] = max(widths[column], len(text))
        rendered_rows.append(rendered)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    body = [
        "  ".join(rendered[column].ljust(widths[column]) for column in columns)
        for rendered in rendered_rows
    ]
    return "\n".join([header, separator, *body])
