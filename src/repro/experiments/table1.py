"""Regenerating Table 1 of the paper.

Table 1 compares interactive coding schemes along five axes: topology, noise
level, noise type, rate and computational efficiency.  The prior-work rows
(RS94, ABGEH16, HS16, JKL15) rely on tree codes or stochastic-noise
assumptions and have no efficient implementations — reproducing them amounts
to quoting their analytical guarantees, which is what the paper itself does.
The rows for this paper's Algorithms A, B and C *are* measured: we run each
scheme on each topology at its nominal noise level and report the empirically
observed rate (CC(Π)/CC(simulation)), success rate and noise tolerance.

``build_table1`` therefore returns two kinds of rows:

* ``analytical`` rows — transcriptions of the prior-work guarantees
  (the same numbers that appear in the paper's table), and
* ``measured`` rows — fresh measurements of Algorithms A, B, C and of the
  uncoded / repetition baselines on the requested workloads.

The benchmark ``benchmarks/test_bench_table1.py`` regenerates the measured
rows; ``examples/reproduce_table1.py`` prints the full table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.adversary.strategies import (
    CompositeAdversary,
    LinkTargetedAdversary,
    PhaseTargetedAdaptiveAdversary,
    RandomNoiseAdversary,
)
from repro.baselines.repetition import run_repetition
from repro.baselines.uncoded import run_uncoded
from repro.core.parameters import SchemeParameters, algorithm_a, algorithm_b, algorithm_c
from repro.experiments.factories import BoundFractionFactory
from repro.experiments.harness import run_trials
from repro.experiments.workloads import Workload, gossip_workload

#: The prior-work rows exactly as they appear in the paper's Table 1.
ANALYTICAL_ROWS: List[Dict[str, object]] = [
    {
        "scheme": "RS94",
        "topology": "arbitrary",
        "noise_level": "BSC_eps",
        "noise_type": "stochastic",
        "rate": "1/O(log(d+1))",
        "efficient": False,
        "kind": "analytical",
    },
    {
        "scheme": "ABGEH16",
        "topology": "clique",
        "noise_level": "BSC_eps",
        "noise_type": "stochastic",
        "rate": "Theta(1)",
        "efficient": True,
        "kind": "analytical",
    },
    {
        "scheme": "HS16",
        "topology": "arbitrary",
        "noise_level": "O(1/m)",
        "noise_type": "substitution",
        "rate": "Theta(1)",
        "efficient": False,
        "kind": "analytical",
    },
    {
        "scheme": "HS16 (routed)",
        "topology": "arbitrary",
        "noise_level": "O(1/n)",
        "noise_type": "substitution",
        "rate": "1/O(m log(n)/n)",
        "efficient": False,
        "kind": "analytical",
    },
    {
        "scheme": "JKL15",
        "topology": "star",
        "noise_level": "O(1/m)",
        "noise_type": "substitution",
        "rate": "Theta(1)",
        "efficient": True,
        "kind": "analytical",
    },
]


@dataclass(frozen=True)
class Table1Cell:
    """One measured configuration of the Table 1 harness."""

    scheme_label: str
    scheme: Optional[SchemeParameters]          # None for baselines
    noise_type: str
    nominal_noise: str
    adversary_factory: Callable[[int, float], Adversary]


#: Guaranteed number of targeted errors injected in every measured Table 1 run,
#: so the comparison is not dominated by trials where the random noise happened
#: to corrupt nothing (protocols here are small, so "ε/m of CC(Π)" can round to
#: zero errors for the baselines).
_GUARANTEED_ERRORS = 4


def _oblivious_factory(seed: int, fraction: float) -> Adversary:
    """Content-oblivious noise: a random ins/del/sub floor plus a short targeted burst."""
    return CompositeAdversary(
        components=(
            RandomNoiseAdversary(
                corruption_probability=fraction,
                insertion_probability=fraction / 4,
                seed=seed,
            ),
            LinkTargetedAdversary(
                target=(0, 1),
                phases=("simulation", "baseline"),
                max_corruptions=_GUARANTEED_ERRORS,
                seed=seed + 1,
            ),
        )
    )


def _adaptive_factory(seed: int, fraction: float) -> Adversary:
    """A non-oblivious adversary concentrating on the scheme's control traffic."""
    return CompositeAdversary(
        components=(
            PhaseTargetedAdaptiveAdversary(
                fraction=fraction,
                phases=("meeting_points", "flag_passing", "simulation"),
                seed=seed,
            ),
            LinkTargetedAdversary(
                target=(0, 1),
                phases=("simulation", "baseline"),
                max_corruptions=_GUARANTEED_ERRORS,
                seed=seed + 1,
            ),
        )
    )


def default_cells(epsilon: float = 0.01) -> List[Table1Cell]:
    """The measured rows: our three algorithms plus the two baselines."""
    return [
        Table1Cell("Algorithm A", algorithm_a(), "oblivious ins/del", "eps/m", _oblivious_factory),
        Table1Cell("Algorithm B", algorithm_b(), "non-oblivious ins/del", "eps/(m log m)", _adaptive_factory),
        Table1Cell("Algorithm C", algorithm_c(), "non-oblivious ins/del", "eps/(m log log m)", _adaptive_factory),
        Table1Cell("uncoded", None, "oblivious ins/del", "eps/m", _oblivious_factory),
        Table1Cell("repetition(3)", None, "oblivious ins/del", "eps/m", _oblivious_factory),
    ]


def measure_cell(
    cell: Table1Cell,
    workload: Workload,
    topology_label: str,
    epsilon: float = 0.01,
    trials: int = 3,
    base_seed: int = 0,
) -> Dict[str, object]:
    """Run one measured row of the table on one topology."""
    m = workload.graph.num_edges
    if cell.scheme is not None:
        fraction = cell.scheme.nominal_noise_fraction(workload.graph, epsilon=epsilon)
    else:
        fraction = epsilon / m

    if cell.scheme is not None:
        trial_set = run_trials(
            workload,
            cell.scheme,
            adversary_factory=BoundFractionFactory(cell.adversary_factory, fraction),
            trials=trials,
            base_seed=base_seed,
        )
        aggregate = trial_set.aggregate
        rate = 1.0 / aggregate.mean_overhead if aggregate.mean_overhead else 0.0
        return {
            "scheme": cell.scheme_label,
            "topology": topology_label,
            "noise_level": cell.nominal_noise,
            "noise_type": cell.noise_type,
            "rate": round(rate, 4),
            "success_rate": aggregate.success_rate,
            "mean_overhead": round(aggregate.mean_overhead, 2),
            "efficient": True,
            "kind": "measured",
        }

    # Baselines.
    successes = 0
    overheads: List[float] = []
    for trial in range(trials):
        seed = base_seed + 1000 * trial + 31
        adversary = cell.adversary_factory(seed, fraction)
        if cell.scheme_label.startswith("repetition"):
            outcome = run_repetition(workload.protocol, adversary=adversary, repetitions=3)
        else:
            outcome = run_uncoded(workload.protocol, adversary=adversary)
        successes += int(outcome.success)
        overheads.append(outcome.metrics.overhead)
    mean_overhead = sum(overheads) / len(overheads)
    return {
        "scheme": cell.scheme_label,
        "topology": topology_label,
        "noise_level": cell.nominal_noise,
        "noise_type": cell.noise_type,
        "rate": round(1.0 / mean_overhead, 4) if mean_overhead else 0.0,
        "success_rate": successes / trials,
        "mean_overhead": round(mean_overhead, 2),
        "efficient": True,
        "kind": "measured",
    }


def build_table1(
    topologies: Sequence[str] = ("line", "star", "clique"),
    num_nodes: int = 5,
    phases: int = 12,
    epsilon: float = 0.01,
    trials: int = 2,
    base_seed: int = 0,
    include_analytical: bool = True,
) -> List[Dict[str, object]]:
    """Regenerate Table 1: analytical prior-work rows plus measured rows."""
    rows: List[Dict[str, object]] = list(ANALYTICAL_ROWS) if include_analytical else []
    for topology in topologies:
        workload = gossip_workload(topology=topology, num_nodes=num_nodes, phases=phases, seed=base_seed)
        for cell in default_cells(epsilon):
            rows.append(
                measure_cell(
                    cell,
                    workload,
                    topology_label=topology,
                    epsilon=epsilon,
                    trials=trials,
                    base_seed=base_seed,
                )
            )
    return rows


TABLE1_COLUMNS = [
    "scheme",
    "topology",
    "noise_level",
    "noise_type",
    "rate",
    "success_rate",
    "mean_overhead",
    "efficient",
    "kind",
]
