"""Picklable, fingerprintable adversary factories.

The experiment harnesses used to build adversaries from closures and lambdas
captured inside experiment functions.  That worked for in-process execution
but breaks both pillars of the runtime:

* the :class:`~repro.runtime.backends.ProcessPoolBackend` must *pickle* the
  factory to ship it to worker processes, and
* the :class:`~repro.runtime.cache.ResultCache` must *fingerprint* it to
  content-address the trial.

Each factory here is a small frozen dataclass whose fields are exactly the
parameters the closure used to capture, so equality, pickling and canonical
fingerprints all come for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.adversary.base import Adversary, NoiselessAdversary
from repro.adversary.strategies import (
    LinkTargetedAdversary,
    PhaseTargetedAdaptiveAdversary,
    RandomNoiseAdversary,
)


@dataclass(frozen=True)
class NoiselessFactory:
    """Always a clean channel (dataclass twin of ``noiseless_factory``)."""

    def __call__(self, seed: int) -> Adversary:
        return NoiselessAdversary()


@dataclass(frozen=True)
class RandomNoiseFactory:
    """Per-slot random insertion/deletion/substitution noise.

    ``insertion_fraction=None`` uses the conventional ``fraction / 4`` from
    the noise sweeps; pass ``0.0`` to disable insertions entirely.
    """

    fraction: float
    insertion_fraction: Optional[float] = None

    def __call__(self, seed: int) -> Adversary:
        insertion = self.insertion_fraction
        if insertion is None:
            insertion = self.fraction / 4
        return RandomNoiseAdversary(
            corruption_probability=self.fraction,
            insertion_probability=insertion,
            seed=seed,
        )


@dataclass(frozen=True)
class NoiseOrNoiselessFactory:
    """Substitution-only random noise, degrading to a clean channel at 0.

    Mirrors the theorem-validation harness: ``fraction <= 0`` yields a
    :class:`NoiselessAdversary` (so the transport can skip silent slots),
    otherwise substitution noise without insertions.
    """

    fraction: float

    def __call__(self, seed: int) -> Adversary:
        if self.fraction <= 0.0:
            return NoiselessAdversary()
        return RandomNoiseAdversary(corruption_probability=self.fraction, seed=seed)


@dataclass(frozen=True)
class LinkTargetedFactory:
    """A bounded number of corruptions concentrated on one directed link."""

    errors: int
    target: Tuple[int, int] = (0, 1)
    phases: Tuple[str, ...] = ("simulation",)

    def __call__(self, seed: int) -> Adversary:
        return LinkTargetedAdversary(
            target=self.target,
            phases=self.phases,
            max_corruptions=self.errors,
            seed=seed,
        )


@dataclass(frozen=True)
class PhaseTargetedFactory:
    """Adaptive (non-oblivious) noise aimed at the scheme's control traffic."""

    fraction: float
    phases: Tuple[str, ...] = ("meeting_points", "flag_passing", "simulation")

    def __call__(self, seed: int) -> Adversary:
        return PhaseTargetedAdaptiveAdversary(
            fraction=self.fraction, phases=self.phases, seed=seed
        )


@dataclass(frozen=True)
class BoundFractionFactory:
    """Bind a noise fraction into a two-argument ``(seed, fraction)`` factory.

    Table 1 cells carry module-level ``(seed, fraction) -> Adversary``
    builders; this adapter fixes the fraction, yielding the one-argument
    factory the harness expects — the picklable replacement for
    ``lambda seed: factory(seed, fraction)``.
    """

    factory: Callable[[int, float], Adversary]
    fraction: float

    def __call__(self, seed: int) -> Adversary:
        return self.factory(seed, self.fraction)
