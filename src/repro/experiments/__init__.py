"""Experiment harnesses: Table 1, theorem validation, noise sweeps, ablations."""

from repro.experiments.ablations import (
    AblationRow,
    chunk_size_ablation,
    flag_passing_ablation,
    hash_length_ablation,
    rewind_ablation,
    single_error_cost,
)
from repro.experiments.factories import (
    BoundFractionFactory,
    LinkTargetedFactory,
    NoiseOrNoiselessFactory,
    NoiselessFactory,
    PhaseTargetedFactory,
    RandomNoiseFactory,
)
from repro.experiments.harness import TrialSet, format_table, noiseless_factory, run_trials, sweep
from repro.experiments.noise_sweep import NoiseSweepPoint, crossover_multiplier, noise_sweep
from repro.experiments.reporting import ExperimentReport, load_report
from repro.experiments.table1 import ANALYTICAL_ROWS, TABLE1_COLUMNS, build_table1, default_cells, measure_cell
from repro.experiments.theorem_validation import (
    SeriesPoint,
    rate_vs_network_size,
    rate_vs_protocol_size,
    scheme_comparison,
)
from repro.experiments.workloads import (
    WORKLOAD_BUILDERS,
    Workload,
    aggregation_workload,
    gossip_workload,
    line_example_workload,
    pairwise_workload,
    random_workload,
    token_ring_workload,
)

__all__ = [
    "AblationRow",
    "chunk_size_ablation",
    "flag_passing_ablation",
    "hash_length_ablation",
    "rewind_ablation",
    "single_error_cost",
    "BoundFractionFactory",
    "LinkTargetedFactory",
    "NoiseOrNoiselessFactory",
    "NoiselessFactory",
    "PhaseTargetedFactory",
    "RandomNoiseFactory",
    "TrialSet",
    "format_table",
    "noiseless_factory",
    "run_trials",
    "sweep",
    "NoiseSweepPoint",
    "crossover_multiplier",
    "noise_sweep",
    "ExperimentReport",
    "load_report",
    "ANALYTICAL_ROWS",
    "TABLE1_COLUMNS",
    "build_table1",
    "default_cells",
    "measure_cell",
    "SeriesPoint",
    "rate_vs_network_size",
    "rate_vs_protocol_size",
    "scheme_comparison",
    "WORKLOAD_BUILDERS",
    "Workload",
    "aggregation_workload",
    "gossip_workload",
    "line_example_workload",
    "pairwise_workload",
    "random_workload",
    "token_ring_workload",
]
