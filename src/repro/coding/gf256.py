"""Arithmetic in GF(256).

The randomness-exchange step of Algorithms A and B protects a short uniform
seed with a standard error-correcting code (paper Theorem 2.1).  We realise
that code as a Reed–Solomon code over GF(256); this module provides the
finite-field arithmetic it needs.

The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1) (the 0x11D polynomial
familiar from CCSDS / QR-code Reed–Solomon).  Multiplication and inversion go
through log/antilog tables built once at import time from the generator
element 2.
"""

from __future__ import annotations

from typing import List, Sequence

#: The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256
#: Multiplicative generator used to build the log tables.
GENERATOR = 2


def _build_tables() -> tuple:
    exp = [0] * (2 * FIELD_SIZE)
    log = [0] * FIELD_SIZE
    value = 1
    for power in range(FIELD_SIZE - 1):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & FIELD_SIZE:
            value ^= PRIMITIVE_POLY
    for power in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        exp[power] = exp[power - (FIELD_SIZE - 1)]
    return exp, log


_EXP, _LOG = _build_tables()


def gf_add(a: int, b: int) -> int:
    """Addition (= subtraction) in GF(256)."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_pow(a: int, exponent: int) -> int:
    """``a`` raised to an integer power (negative exponents via inversion)."""
    if a == 0:
        if exponent == 0:
            return 1
        if exponent < 0:
            raise ZeroDivisionError("cannot raise 0 to a negative power in GF(256)")
        return 0
    log_a = _LOG[a]
    exponent = exponent % (FIELD_SIZE - 1)
    return _EXP[(log_a * exponent) % (FIELD_SIZE - 1)]


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _EXP[(FIELD_SIZE - 1) - _LOG[a]]


def gf_div(a: int, b: int) -> int:
    """Division in GF(256)."""
    return gf_mul(a, gf_inv(b))


# -- polynomial helpers (coefficients listed lowest degree first) -------------


def poly_trim(poly: Sequence[int]) -> List[int]:
    """Drop trailing zero coefficients (keep at least one coefficient)."""
    out = list(poly)
    while len(out) > 1 and out[-1] == 0:
        out.pop()
    return out


def poly_add(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Add two polynomials over GF(256)."""
    length = max(len(a), len(b))
    out = [0] * length
    for i, coeff in enumerate(a):
        out[i] ^= coeff
    for i, coeff in enumerate(b):
        out[i] ^= coeff
    return poly_trim(out)


def poly_mul(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Multiply two polynomials over GF(256)."""
    out = [0] * (len(a) + len(b) - 1)
    for i, coeff_a in enumerate(a):
        if coeff_a == 0:
            continue
        for j, coeff_b in enumerate(b):
            if coeff_b == 0:
                continue
            out[i + j] ^= gf_mul(coeff_a, coeff_b)
    return poly_trim(out)


def poly_scale(poly: Sequence[int], scalar: int) -> List[int]:
    """Multiply every coefficient by a field scalar."""
    return poly_trim([gf_mul(coeff, scalar) for coeff in poly])


def poly_eval(poly: Sequence[int], x: int) -> int:
    """Evaluate a polynomial at ``x`` (Horner's rule, low-degree-first layout)."""
    result = 0
    for coeff in reversed(list(poly)):
        result = gf_mul(result, x) ^ coeff
    return result


def poly_deg(poly: Sequence[int]) -> int:
    """Degree of the polynomial (degree of the zero polynomial is 0 here)."""
    return len(poly_trim(poly)) - 1


def poly_shift(poly: Sequence[int], amount: int) -> List[int]:
    """Multiply by x^amount (prepend ``amount`` zero coefficients)."""
    if amount < 0:
        raise ValueError("shift amount must be non-negative")
    return poly_trim([0] * amount + list(poly))


def poly_divmod(numerator: Sequence[int], denominator: Sequence[int]) -> tuple:
    """Polynomial division with remainder over GF(256)."""
    num = poly_trim(numerator)
    den = poly_trim(denominator)
    if den == [0]:
        raise ZeroDivisionError("polynomial division by zero")
    quotient = [0] * max(1, len(num) - len(den) + 1)
    remainder = list(num)
    den_deg = len(den) - 1
    den_lead_inv = gf_inv(den[-1])
    for shift in range(len(num) - len(den), -1, -1):
        coeff = gf_mul(remainder[shift + den_deg], den_lead_inv)
        quotient[shift] = coeff
        if coeff == 0:
            continue
        for i, den_coeff in enumerate(den):
            remainder[shift + i] ^= gf_mul(coeff, den_coeff)
    return poly_trim(quotient), poly_trim(remainder)
