"""Reed–Solomon codes over GF(256) with errors-and-erasures decoding.

The randomness exchange of Algorithm A/B (paper Algorithm 5) sends a short
uniform seed encoded with "a standard error-correcting code with constant
rate and constant distance" (Theorem 2.1).  The paper suggests concatenating
Reed–Solomon with a binary code or using Guruswami–Indyk codes; we implement
the Reed–Solomon component here and a binary wrapper in
:mod:`repro.coding.block_code`.

Encoding is systematic (parity symbols followed by message symbols in the
low-degree-first coefficient layout).  Decoding handles both symbol errors
and declared erasures — the latter matter because a *deletion* on a
synchronous, fully-scheduled exchange is perceived by the receiver as an
erasure (paper §3.2, footnote 9).

The decoder follows the classical pipeline: syndromes → erasure locator →
modified syndromes → Sugiyama (extended Euclidean) solution of the key
equation → Chien search → Forney error values.  It corrects any pattern with
``2 * errors + erasures <= n - k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.coding.gf256 import (
    GENERATOR,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
    poly_add,
    poly_deg,
    poly_divmod,
    poly_eval,
    poly_mul,
    poly_trim,
)


class DecodingError(Exception):
    """Raised when a received word is not decodable within the code's radius."""


@dataclass(frozen=True)
class ReedSolomonCode:
    """A systematic RS(n, k) code over GF(256).

    Parameters
    ----------
    block_length:
        n, the number of codeword symbols (at most 255).
    message_length:
        k, the number of message symbols (1 <= k < n).
    """

    block_length: int
    message_length: int

    def __post_init__(self) -> None:
        if not 1 <= self.message_length < self.block_length <= 255:
            raise ValueError(
                f"invalid RS parameters n={self.block_length}, k={self.message_length}"
            )

    # -- derived parameters ---------------------------------------------------

    @property
    def parity_length(self) -> int:
        return self.block_length - self.message_length

    @property
    def distance(self) -> int:
        """Minimum distance n - k + 1 (RS codes are MDS)."""
        return self.parity_length + 1

    @property
    def rate(self) -> float:
        return self.message_length / self.block_length

    def generator_polynomial(self) -> List[int]:
        """g(x) = prod_{i=0}^{p-1} (x - alpha^i), low-degree-first."""
        gen = [1]
        for i in range(self.parity_length):
            gen = poly_mul(gen, [gf_pow(GENERATOR, i), 1])
        return gen

    # -- encoding ---------------------------------------------------------------

    def encode(self, message: Sequence[int]) -> List[int]:
        """Encode ``k`` message symbols into ``n`` codeword symbols.

        The codeword layout is ``[parity_0..parity_{p-1}, message_0..message_{k-1}]``
        viewed as coefficients of C(x) = M(x) * x^p + R(x).
        """
        message = list(message)
        if len(message) != self.message_length:
            raise ValueError(
                f"expected {self.message_length} message symbols, got {len(message)}"
            )
        for symbol in message:
            if not 0 <= symbol < 256:
                raise ValueError(f"message symbol {symbol} outside GF(256)")
        shifted = [0] * self.parity_length + message
        _, remainder = poly_divmod(shifted, self.generator_polynomial())
        remainder = list(remainder) + [0] * (self.parity_length - len(remainder))
        codeword = remainder[: self.parity_length] + message
        return codeword

    def extract_message(self, codeword: Sequence[int]) -> List[int]:
        """Read the systematic message symbols out of a codeword."""
        if len(codeword) != self.block_length:
            raise ValueError("codeword has the wrong length")
        return list(codeword[self.parity_length:])

    # -- decoding ---------------------------------------------------------------

    def syndromes(self, received: Sequence[int]) -> List[int]:
        """S_j = R(alpha^j) for j = 0..p-1."""
        return [poly_eval(list(received), gf_pow(GENERATOR, j)) for j in range(self.parity_length)]

    def decode(
        self,
        received: Sequence[int],
        erasure_positions: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Correct a received word in place and return the decoded *message*.

        ``erasure_positions`` are codeword indices known to be unreliable
        (their symbol values are still taken from ``received``; callers
        typically fill them with 0).
        """
        word = list(received)
        if len(word) != self.block_length:
            raise ValueError("received word has the wrong length")
        erasures = sorted(set(erasure_positions or ()))
        for position in erasures:
            if not 0 <= position < self.block_length:
                raise ValueError(f"erasure position {position} out of range")
        if len(erasures) > self.parity_length:
            raise DecodingError("more erasures than parity symbols")

        synd = self.syndromes(word)
        if all(s == 0 for s in synd):
            return self.extract_message(word)

        corrected = self._correct(word, synd, erasures)
        if any(s != 0 for s in self.syndromes(corrected)):
            raise DecodingError("residual syndromes after correction")
        return self.extract_message(corrected)

    # -- internals ---------------------------------------------------------------

    def _erasure_locator(self, erasures: Sequence[int]) -> List[int]:
        """Gamma(x) = prod (1 - X_i x) with X_i = alpha^position."""
        locator = [1]
        for position in erasures:
            locator = poly_mul(locator, [1, gf_pow(GENERATOR, position)])
        return locator

    def _solve_key_equation(self, modified_syndrome: List[int], num_erasures: int) -> tuple:
        """Sugiyama's extended-Euclidean solution of the key equation.

        Returns (error_locator, evaluator) such that
        ``error_locator * modified_syndrome = evaluator (mod x^p)``.
        """
        parity = self.parity_length
        r_prev: List[int] = [0] * parity + [1]  # x^p
        r_curr: List[int] = poly_trim(modified_syndrome)
        v_prev: List[int] = [0]
        v_curr: List[int] = [1]
        # Continue while deg(r_curr) >= (p + rho) / 2.
        while r_curr != [0] and 2 * poly_deg(r_curr) >= parity + num_erasures:
            quotient, remainder = poly_divmod(r_prev, r_curr)
            r_prev, r_curr = r_curr, remainder
            v_prev, v_curr = v_curr, poly_add(v_prev, poly_mul(quotient, v_curr))
        return poly_trim(v_curr), poly_trim(r_curr)

    @staticmethod
    def _formal_derivative(poly: Sequence[int]) -> List[int]:
        """d/dx of a polynomial over a characteristic-2 field."""
        derivative = [poly[k] if k % 2 == 1 else 0 for k in range(1, len(poly))]
        return poly_trim(derivative or [0])

    def _correct(self, word: List[int], synd: List[int], erasures: List[int]) -> List[int]:
        gamma = self._erasure_locator(erasures)
        syndrome_poly = poly_trim(synd)
        modified = poly_mul(syndrome_poly, gamma)
        modified = poly_trim(modified[: self.parity_length])

        if all(c == 0 for c in modified):
            # All discrepancies are explained by the erasures alone.
            error_locator: List[int] = [1]
            evaluator = poly_trim(poly_mul(syndrome_poly, gamma)[: self.parity_length])
        else:
            error_locator, evaluator = self._solve_key_equation(modified, len(erasures))
            if error_locator == [0]:
                raise DecodingError("degenerate error locator")

        errata_locator = poly_mul(error_locator, gamma)
        # Chien search over all codeword positions.
        positions: List[int] = []
        for position in range(self.block_length):
            x_inv = gf_inv(gf_pow(GENERATOR, position))
            if poly_eval(errata_locator, x_inv) == 0:
                positions.append(position)
        if len(positions) != poly_deg(errata_locator):
            raise DecodingError("errata locator does not split over the field")

        # The evaluator must correspond to the full errata locator:
        # Omega(x) = S(x) * Psi(x) mod x^p (scalar factors cancel in Forney).
        omega = poly_trim(poly_mul(syndrome_poly, errata_locator)[: self.parity_length])
        derivative = self._formal_derivative(errata_locator)

        corrected = list(word)
        for position in positions:
            x_i = gf_pow(GENERATOR, position)
            x_inv = gf_inv(x_i)
            denominator = poly_eval(derivative, x_inv)
            if denominator == 0:
                raise DecodingError("Forney denominator vanished")
            magnitude = gf_mul(x_i, gf_div(poly_eval(omega, x_inv), denominator))
            corrected[position] ^= magnitude
        return corrected
