"""Error-correcting codes: GF(256) arithmetic, Reed-Solomon, binary wrapper."""

from repro.coding.block_code import BinaryBlockCode
from repro.coding.reed_solomon import DecodingError, ReedSolomonCode

__all__ = ["BinaryBlockCode", "DecodingError", "ReedSolomonCode"]
