"""Binary block code used by the randomness exchange.

Algorithm 5 sends a uniformly random seed ``L`` encoded as ``C(L)`` over a
link, one bit per round.  Because the exchange happens on a fixed schedule,
a deletion is perceived as an erasure and an insertion outside the schedule
is simply ignored, so the code only needs to handle bit substitutions and
bit erasures (paper footnote 9).

``BinaryBlockCode`` realises Theorem 2.1's "constant rate, constant distance,
efficiently encodable/decodable binary code" as a Reed–Solomon code over
GF(256) whose symbols are expanded to bits.  Long messages are split into
independent RS blocks so that any message length is supported.  A bit-level
erasure marks its containing byte as an erased RS symbol; a bit flip becomes
(at most) one RS symbol error.

With the default expansion factor of 3 the binary rate is 1/3 and each block
corrects up to ``k`` byte errors out of ``3k`` byte positions — i.e. a
constant fraction of corrupted bits, which is all the analysis in Section 5
requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.coding.reed_solomon import DecodingError, ReedSolomonCode
from repro.utils.bitstring import Symbol

__all__ = ["BinaryBlockCode", "DecodingError"]

_BITS_PER_SYMBOL = 8


@dataclass(frozen=True)
class BinaryBlockCode:
    """A constant-rate binary code built from chunked Reed–Solomon blocks.

    Parameters
    ----------
    message_bits:
        Length (in bits) of the messages this instance encodes.
    expansion:
        Codeword-to-message length ratio per block (>= 2); the default of 3
        matches the "rate 1/3" instantiation suggested under Theorem 2.1.
    max_block_symbols:
        Upper bound on RS block length (must be <= 255).
    """

    message_bits: int
    expansion: int = 3
    max_block_symbols: int = 255

    def __post_init__(self) -> None:
        if self.message_bits <= 0:
            raise ValueError("message_bits must be positive")
        if self.expansion < 2:
            raise ValueError("expansion must be at least 2")
        if not 3 <= self.max_block_symbols <= 255:
            raise ValueError("max_block_symbols must lie in [3, 255]")

    # -- layout -----------------------------------------------------------------

    @property
    def message_symbols(self) -> int:
        """Number of GF(256) symbols needed to carry the message bits."""
        return (self.message_bits + _BITS_PER_SYMBOL - 1) // _BITS_PER_SYMBOL

    @property
    def symbols_per_block(self) -> int:
        """Message symbols carried by each RS block (last block may be shorter)."""
        max_k = max(1, self.max_block_symbols // self.expansion)
        return min(self.message_symbols, max_k)

    def _blocks(self) -> List[ReedSolomonCode]:
        """The RS code of every block, in order."""
        blocks: List[ReedSolomonCode] = []
        remaining = self.message_symbols
        per_block = self.symbols_per_block
        while remaining > 0:
            k = min(per_block, remaining)
            n = min(255, self.expansion * k)
            if n <= k:
                n = k + 1
            blocks.append(ReedSolomonCode(block_length=n, message_length=k))
            remaining -= k
        return blocks

    @property
    def codeword_bits(self) -> int:
        """Total number of bits in an encoded message."""
        return sum(code.block_length for code in self._blocks()) * _BITS_PER_SYMBOL

    @property
    def rate(self) -> float:
        return self.message_bits / self.codeword_bits

    # -- bit/symbol conversion -----------------------------------------------------

    @staticmethod
    def _bits_to_symbols(bits: Sequence[int], num_symbols: int) -> List[int]:
        symbols = []
        for index in range(num_symbols):
            value = 0
            for offset in range(_BITS_PER_SYMBOL):
                position = index * _BITS_PER_SYMBOL + offset
                if position < len(bits) and bits[position]:
                    value |= 1 << offset
            symbols.append(value)
        return symbols

    @staticmethod
    def _symbols_to_bits(symbols: Sequence[int]) -> List[int]:
        bits: List[int] = []
        for symbol in symbols:
            for offset in range(_BITS_PER_SYMBOL):
                bits.append((symbol >> offset) & 1)
        return bits

    # -- public API ------------------------------------------------------------------

    def encode(self, bits: Sequence[int]) -> List[int]:
        """Encode ``message_bits`` bits into ``codeword_bits`` bits."""
        if len(bits) != self.message_bits:
            raise ValueError(f"expected {self.message_bits} message bits, got {len(bits)}")
        symbols = self._bits_to_symbols(bits, self.message_symbols)
        out_bits: List[int] = []
        cursor = 0
        for code in self._blocks():
            block_message = symbols[cursor:cursor + code.message_length]
            cursor += code.message_length
            out_bits.extend(self._symbols_to_bits(code.encode(block_message)))
        return out_bits

    def decode(self, received: Sequence[Symbol]) -> List[int]:
        """Decode a received bit sequence (entries may be 0, 1 or ``None``).

        ``None`` entries are treated as erasures.  A word shorter than the
        codeword is padded with erasures; extra symbols are ignored.  Raises
        :class:`DecodingError` if any block is beyond the correction radius.
        """
        padded: List[Symbol] = list(received[: self.codeword_bits])
        padded.extend([None] * (self.codeword_bits - len(padded)))

        message_symbols: List[int] = []
        bit_cursor = 0
        for code in self._blocks():
            block_bits = padded[bit_cursor:bit_cursor + code.block_length * _BITS_PER_SYMBOL]
            bit_cursor += code.block_length * _BITS_PER_SYMBOL
            word: List[int] = []
            erasures: List[int] = []
            for symbol_index in range(code.block_length):
                value = 0
                erased = False
                for offset in range(_BITS_PER_SYMBOL):
                    bit = block_bits[symbol_index * _BITS_PER_SYMBOL + offset]
                    if bit is None:
                        erased = True
                    elif bit:
                        value |= 1 << offset
                word.append(value)
                if erased:
                    erasures.append(symbol_index)
            message_symbols.extend(code.decode(word, erasure_positions=erasures))
        all_bits = self._symbols_to_bits(message_symbols)
        return all_bits[: self.message_bits]
