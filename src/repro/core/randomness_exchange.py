"""The per-link randomness exchange (paper Algorithm 5).

When no common random string is assumed (Algorithms A and B), each link
bootstraps its hash seeds as follows: the endpoint with the smaller identifier
samples a short uniform seed, protects it with a constant-rate
error-correcting code, and streams the codeword to the other endpoint over a
fixed schedule (one bit per round).  Both endpoints then expand their —
hopefully identical — seeds into a long δ-biased string from which all later
hash seeds are carved (:class:`~repro.hashing.seeds.ExchangedSeedSource`).

Because the schedule is fixed, deletions are seen as erasures and insertions
outside the schedule are ignored, so the code only needs to handle
substitutions and erasures (paper footnote 9).  If decoding fails outright,
the receiver falls back to the raw received bits: the two endpoints then hold
different seeds, all their hash comparisons keep failing, and the link
behaves like the paper's ``E \\ E'`` set — which Section 5 shows the
adversary cannot afford to create at the allowed noise rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.coding.block_code import BinaryBlockCode, DecodingError
from repro.hashing.seeds import ExchangedSeedSource, SeedSource
from repro.hashing.small_bias import seed_length_bits
from repro.network.graph import Graph, edge_key
from repro.network.transport import NoisyNetwork
from repro.utils.bitstring import bits_to_int, symbols_to_bits
from repro.utils.rng import random_bits


@dataclass
class RandomnessExchangeReport:
    """Outcome of the randomness exchange across the whole network."""

    #: (party, neighbour) -> the seed source that party will use on that link.
    seed_sources: Dict[Tuple[int, int], SeedSource]
    #: canonical edge -> whether both endpoints ended up with identical seeds
    #: (ground truth, for analysis only; the parties themselves do not know).
    agreed: Dict[Tuple[int, int], bool] = field(default_factory=dict)
    #: Total bits transmitted during the exchange.
    communication: int = 0

    @property
    def corrupted_links(self) -> List[Tuple[int, int]]:
        return sorted(edge for edge, ok in self.agreed.items() if not ok)


def run_randomness_exchange(
    graph: Graph,
    network: NoisyNetwork,
    rng: random.Random,
    field_degree: int = 64,
    slot_capacity_bits: int = 4096,
    expansion: int = 3,
) -> RandomnessExchangeReport:
    """Execute Algorithm 5 on every link in parallel and build the seed sources."""
    seed_bits = seed_length_bits(field_degree)
    code = BinaryBlockCode(message_bits=seed_bits, expansion=expansion)
    window = code.codeword_bits

    sampled: Dict[Tuple[int, int], List[int]] = {}
    messages: Dict[Tuple[int, int], List[int]] = {}
    for u, v in graph.edges:  # canonical order: u < v, u is the sender
        bits = random_bits(rng, seed_bits)
        sampled[(u, v)] = bits
        messages[(u, v)] = code.encode(bits)

    before = network.communication()
    received = network.exchange_window(messages, window_rounds=window, phase="randomness_exchange")
    communication = network.communication() - before

    report = RandomnessExchangeReport(seed_sources={}, communication=communication)
    for u, v in graph.edges:
        sender_bits = sampled[(u, v)]
        delivered = received[(u, v)]
        try:
            receiver_bits = code.decode(delivered)
        except DecodingError:
            # Decoding failure: fall back to the raw (erasure-filled) bits.
            receiver_bits = symbols_to_bits(delivered[:seed_bits])
            receiver_bits += [0] * (seed_bits - len(receiver_bits))
        report.agreed[edge_key(u, v)] = receiver_bits == sender_bits

        sender_seed = bits_to_int(sender_bits)
        receiver_seed = bits_to_int(receiver_bits)
        sender_source = ExchangedSeedSource(
            link_seed=sender_seed, field_degree=field_degree, slot_capacity_bits=slot_capacity_bits
        )
        receiver_source = ExchangedSeedSource(
            link_seed=receiver_seed, field_degree=field_degree, slot_capacity_bits=slot_capacity_bits
        )
        if receiver_seed == sender_seed:
            # The exchange succeeded: both endpoints expand the same δ-biased
            # string, so they can share one generator (and its lazily-built
            # expansion tables).  Each keeps its own per-slot cache.
            receiver_source.share_generator_with(sender_source)
        report.seed_sources[(u, v)] = sender_source
        report.seed_sources[(v, u)] = receiver_source
    return report
