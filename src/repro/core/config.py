"""Engine execution configuration.

One frozen :class:`EngineConfig` consolidates every engine/transport switch
that selects *how* a trial is executed without changing *what* it computes:
all configurations are pinned bit-identical in deliveries, statistics and
decisions by the equivalence suites (``tests/test_hashing_equivalence.py``,
``tests/test_transport.py``, ``tests/test_phase_merge_fuzz.py``).  Because
the switches cannot change results, they are **fingerprint-invisible**: an
:class:`EngineConfig` never enters a trial fingerprint or a cache key
(asserted by ``tests/test_engine_config.py``), so cached results stay valid
whichever execution path produced them.

The switches, fastest first:

``packed``
    Carry protocol windows as packed ``(bits, present)`` integer planes end
    to end — transport, adversary kernels, statistics and the
    meeting-points hash exchange (``exchange_window_packed``).
``merge_phases``
    Merge each flag-passing / simulation / rewind phase into a single
    transport dispatch when the adversary honours the slot-addressed
    contract (``exchange_phase``).
``batch_rounds``
    Engine-side window scheduling: sparse dispatch for thin rounds and
    one-call clock advancement over provably idle spans.
``batched_transport``
    One ``corrupt_window`` call per directed link per window instead of one
    ``corrupt`` call per slot.
``fast_hashing``
    Batched meeting-points hashing: one seed derivation and one multi-value
    digest pass per iteration instead of per-hash calls.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Set


@dataclass(frozen=True)
class EngineConfig:
    """Execution-path switches for :class:`~repro.core.engine.InteractiveCodingSimulator`.

    Frozen: derive variants with :meth:`with_overrides` (or
    ``dataclasses.replace``).
    """

    fast_hashing: bool = True
    batch_rounds: bool = True
    merge_phases: bool = True
    batched_transport: bool = True
    packed: bool = True

    def with_overrides(self, **overrides: bool) -> "EngineConfig":
        """A copy with the given switches replaced."""
        return replace(self, **overrides)


#: The default execution profile: every fast path on.
DEFAULT_ENGINE_CONFIG = EngineConfig()

#: The reference execution profile: every optimisation off — per-slot
#: transport, per-call hashing, lockstep rounds.  This is the semantics all
#: fast paths are pinned bit-identical to, and the baseline the performance
#: gates in ``benchmarks/`` measure speedups against.
REFERENCE_ENGINE_CONFIG = EngineConfig(
    fast_hashing=False,
    batch_rounds=False,
    merge_phases=False,
    batched_transport=False,
    packed=False,
)

_WARNED_LEGACY: Set[str] = set()


def warn_legacy_engine_switch(name: str, replacement: str) -> None:
    """Emit the one-shot deprecation warning for a legacy switch spelling."""
    if name in _WARNED_LEGACY:
        return
    _WARNED_LEGACY.add(name)
    warnings.warn(
        f"the '{name}' keyword is deprecated; pass "
        f"EngineConfig({replacement}=...) via the 'config' parameter instead",
        DeprecationWarning,
        stacklevel=3,
    )
