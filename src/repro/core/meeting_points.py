"""The per-link meeting-points mechanism (paper §3.1(ii), §4.2, Appendix A).

Every consistency-check phase, the two endpoints of a link exchange three
short hashes: one of their meeting-points counter ``k`` and two of transcript
prefixes truncated at the current *meeting points* MP1 and MP2.  The meeting
points are the multiples of ``k̃ = 2^⌈log₂ k⌉`` nearest below the transcript
length, so as the search continues (k grows) the candidate rollback points
move back geometrically.  When a party has seen enough evidence that one of
its meeting points is a common prefix, it truncates its transcript to that
point; when the full-transcript hashes match at ``k = 1`` the link is
consistent and the party reports status ``"simulate"``.

The implementation follows Haeupler's meeting-points protocol (which the
paper adapts as its Algorithm 7 — the appendix text is not fully available in
our source, see DESIGN.md):

* ``k`` counts consecutive consistency phases spent in the current search;
* ``E`` counts phases in which the two parties appear to disagree about ``k``
  itself (evidence of channel noise);
* ``mpc1`` / ``mpc2`` count, within the current scale, how often MP1 / MP2
  hash-matched one of the other side's meeting points;
* at the end of a scale (``k = k̃``) the party either truncates to a
  sufficiently supported meeting point, or — if errors dominate — resets the
  search.

A single exchange costs ``3τ`` bits per direction, τ being the hash output
length, so a consistency phase over the whole network costs Θ(τ·m) bits, as
required for the constant-rate accounting.

Two hashing paths produce the wire messages:

* the **fast path** (default): one batched
  :meth:`~repro.hashing.seeds.SeedSource.seeds_for_iteration` call per
  iteration, the three prefix digests computed in one
  :meth:`~repro.hashing.inner_product.InnerProductHash.digest_many` pass over
  the shared seed, and digests kept as packed integers end to end (one
  ``int_to_bits`` per outgoing message, no per-digest tuple churn);
* the **reference path** (``fast_hashing=False``): the original per-call
  derivation — one ``seed_for`` per hash, one ``digest`` per value, bit-tuple
  internals.

Both paths emit identical wire bits and make identical decisions — pinned by
``tests/test_hashing_equivalence.py`` over random transcripts, seeds and
corrupted replies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.transcript import LinkTranscript
from repro.hashing.inner_product import FINGERPRINT_BITS, InnerProductHash
from repro.hashing.seeds import SeedLayout, SeedSource, seed_layout
from repro.network.channel import Symbol
from repro.utils.bitstring import int_to_bits, unpack_symbols

STATUS_SIMULATE = "simulate"
STATUS_MEETING_POINTS = "meeting points"

#: Width of the encoding of the counter ``k`` fed to the hash.
_COUNTER_BITS = 32
#: Maximum raw-serialisation width (bits) before falling back to fingerprints.
_RAW_INPUT_CAP_BITS = 4096

#: A stored digest: packed integer on the fast path, bit tuple on the
#: reference path.  Both support the equality/membership tests the decision
#: logic performs.
_Digest = Union[int, Tuple[int, ...]]


@dataclass
class MeetingPointsOutcome:
    """What one consistency-check exchange decided for one endpoint."""

    status: str
    truncate_to: Optional[int] = None
    k_agreed: bool = False
    full_match: bool = False
    vote: Optional[str] = None
    reset: bool = False


@dataclass
class MeetingPointsSession:
    """Per-(party, link) state of the meeting-points mechanism."""

    hasher: InnerProductHash
    seed_source: SeedSource
    hash_input_mode: str = "fingerprint"
    #: Route hashing through the batched fast path (seeds_for_iteration +
    #: digest_many + packed digests).  ``False`` selects the original per-call
    #: reference path; the two are bit-identical on the wire.
    fast_hashing: bool = True

    k: int = 0
    error_count: int = 0
    mpc1: int = 0
    mpc2: int = 0
    status: str = STATUS_SIMULATE

    #: Diagnostics accumulated over the whole run.
    truncations: int = 0
    resets: int = 0
    #: How many hash messages each construction path produced (``repro.obs``;
    #: plain increments, flushed into the metrics registry by the engine).
    fast_builds: int = 0
    reference_builds: int = 0

    #: Optional flight recorder (``repro.obs.recorder``) plus the directed
    #: link this session guards, attached by the engine when forensics are
    #: on.  The session emits ``meeting_point`` transition events — search
    #: recoveries, divergence onsets, resets, votes, truncations — and never
    #: reads the recorder, so decisions are bit-identical with it attached
    #: or not.
    recorder: Optional[object] = field(default=None, repr=False, compare=False)
    link: str = field(default="", repr=False, compare=False)

    # transient, per-exchange fields
    _mp1: int = 0
    _mp2: int = 0
    _k_tilde: int = 1
    _own_counter_hash: _Digest = ()
    _own_full_hash: _Digest = ()
    _own_mp1_hash: _Digest = ()
    _own_mp2_hash: _Digest = ()
    #: Interned per-input-width seed layouts (fast path only).
    _layouts: Dict[int, SeedLayout] = field(default_factory=dict, repr=False)

    # -- message construction ----------------------------------------------------

    @property
    def message_bits(self) -> int:
        """Bits per direction per consistency phase (four hashes).

        The message carries hashes of (a) the meeting-points counter ``k``,
        (b) the full transcript — the "are we consistent?" check the paper
        describes as happening every consistency phase, (c) the MP1 prefix and
        (d) the MP2 prefix.
        """
        return 4 * self.hasher.output_bits

    def build_message(self, iteration: int, transcript: LinkTranscript) -> List[int]:
        """Advance ``k`` and produce this phase's outgoing hash message."""
        length = self._advance(transcript)
        if self.fast_hashing:
            self.fast_builds += 1
            combined = self._build_message_fast(iteration, transcript, length)
            return int_to_bits(combined, 4 * self.hasher.output_bits)
        self.reference_builds += 1
        return self._build_message_reference(iteration, transcript, length)

    def build_message_packed(self, iteration: int, transcript: LinkTranscript) -> int:
        """Packed variant of :meth:`build_message`: the same wire bits as one
        integer (bit ``i`` of the result is wire bit ``i``)."""
        length = self._advance(transcript)
        if self.fast_hashing:
            self.fast_builds += 1
            return self._build_message_fast(iteration, transcript, length)
        self.reference_builds += 1
        value = 0
        for offset, bit in enumerate(self._build_message_reference(iteration, transcript, length)):
            if bit:
                value |= 1 << offset
        return value

    def _advance(self, transcript: LinkTranscript) -> int:
        """Advance ``k`` and recompute this phase's meeting points."""
        self.k += 1
        self._k_tilde = 1 << (self.k - 1).bit_length()
        length = transcript.num_chunks
        self._mp1 = self._k_tilde * (length // self._k_tilde)
        self._mp2 = max(self._mp1 - self._k_tilde, 0)
        return length

    def _build_message_reference(
        self, iteration: int, transcript: LinkTranscript, length: int
    ) -> List[int]:
        """The original per-call derivation (``fast_hashing=False``)."""
        self._own_counter_hash = self._hash_counter(iteration, self.k)
        self._own_full_hash = self._hash_prefix(iteration, transcript, length)
        self._own_mp1_hash = self._hash_prefix(iteration, transcript, self._mp1)
        self._own_mp2_hash = self._hash_prefix(iteration, transcript, self._mp2)
        return (
            list(self._own_counter_hash)
            + list(self._own_full_hash)
            + list(self._own_mp1_hash)
            + list(self._own_mp2_hash)
        )

    def _build_message_fast(
        self, iteration: int, transcript: LinkTranscript, length: int
    ) -> int:
        """The batched path: one seed derivation, one multi-value digest pass."""
        hasher = self.hasher
        tau = hasher.output_bits
        values: List[int] = []
        widths: List[int] = []
        for num_chunks in (length, self._mp1, self._mp2):
            value, input_bits = self._prefix_hash_input(transcript, num_chunks)
            values.append(value)
            widths.append(input_bits)
        counter_value = self.k & ((1 << _COUNTER_BITS) - 1)

        if widths[0] == widths[1] == widths[2]:
            counter_seed, prefix_seed, _ = self.seed_source.seeds_for_iteration(
                iteration, self._layout_for(widths[0])
            )
            counter_digest = hasher.digest(counter_value, _COUNTER_BITS, counter_seed)
            full_digest, mp1_digest, mp2_digest = hasher.digest_many(
                values, widths[0], prefix_seed
            )
        else:
            # Mixed raw/fingerprint widths (only reachable in "raw" mode on
            # tiny instances): fall back to per-call seeds for this exchange.
            counter_seed = self.seed_source.seed_for(
                iteration, "mp_counter", hasher.seed_bits_required(_COUNTER_BITS)
            )
            counter_digest = hasher.digest(counter_value, _COUNTER_BITS, counter_seed)
            full_digest, mp1_digest, mp2_digest = (
                hasher.digest(
                    value,
                    input_bits,
                    self.seed_source.seed_for(
                        iteration, "mp_prefix", hasher.seed_bits_required(input_bits)
                    ),
                )
                for value, input_bits in zip(values, widths)
            )

        self._own_counter_hash = counter_digest
        self._own_full_hash = full_digest
        self._own_mp1_hash = mp1_digest
        self._own_mp2_hash = mp2_digest
        return (
            counter_digest
            | (full_digest << tau)
            | (mp1_digest << (2 * tau))
            | (mp2_digest << (3 * tau))
        )

    def _layout_for(self, prefix_input_bits: int) -> SeedLayout:
        layout = self._layouts.get(prefix_input_bits)
        if layout is None:
            layout = seed_layout(
                mp_counter=self.hasher.seed_bits_required(_COUNTER_BITS),
                mp_prefix=self.hasher.seed_bits_required(prefix_input_bits),
            )
            self._layouts[prefix_input_bits] = layout
        return layout

    # -- reply processing ---------------------------------------------------------

    def process_reply(
        self,
        iteration: int,
        transcript: LinkTranscript,
        received: Sequence[Symbol],
    ) -> MeetingPointsOutcome:
        """Digest the other side's hashes and decide status / truncation."""
        tau = self.hasher.output_bits
        if self.fast_hashing:
            their_counter: Optional[_Digest] = self._clean_group_packed(received, 0, tau)
            their_full: Optional[_Digest] = self._clean_group_packed(received, tau, tau)
            their_mp1: Optional[_Digest] = self._clean_group_packed(received, 2 * tau, tau)
            their_mp2: Optional[_Digest] = self._clean_group_packed(received, 3 * tau, tau)
        else:
            their_counter = self._clean_group(received, 0, tau)
            their_full = self._clean_group(received, tau, tau)
            their_mp1 = self._clean_group(received, 2 * tau, tau)
            their_mp2 = self._clean_group(received, 3 * tau, tau)
        return self._decide(iteration, their_counter, their_full, their_mp1, their_mp2)

    def process_reply_packed(
        self,
        iteration: int,
        transcript: LinkTranscript,
        bits: int,
        present: int,
    ) -> MeetingPointsOutcome:
        """Packed variant of :meth:`process_reply`.

        ``(bits, present)`` are the delivered planes of the 4τ-slot reply
        window (:func:`~repro.utils.bitstring.pack_symbols` convention).  A
        hash group is usable only when *all* of its ``present`` bits are set,
        exactly like the ``None``-scan of the symbol path.
        """
        tau = self.hasher.output_bits
        if not self.fast_hashing:
            # The reference path stores digests as bit tuples; route through
            # the symbol-sequence extraction to compare like with like.
            return self.process_reply(
                iteration, transcript, unpack_symbols(bits, present, 4 * tau)
            )
        mask = (1 << tau) - 1
        groups: List[Optional[int]] = []
        for index in range(4):
            start = index * tau
            group_mask = mask << start
            if present & group_mask != group_mask:
                groups.append(None)
            else:
                groups.append((bits >> start) & mask)
        return self._decide(iteration, groups[0], groups[1], groups[2], groups[3])

    def _decide(
        self,
        iteration: int,
        their_counter: Optional[_Digest],
        their_full: Optional[_Digest],
        their_mp1: Optional[_Digest],
        their_mp2: Optional[_Digest],
    ) -> MeetingPointsOutcome:
        """The shared decision logic: compare digests, update the search state."""
        outcome = MeetingPointsOutcome(status=STATUS_MEETING_POINTS)
        outcome.k_agreed = their_counter is not None and their_counter == self._own_counter_hash
        recorder = self.recorder
        was_simulating = self.status == STATUS_SIMULATE

        # The "are we consistent?" check happens every consistency phase: if the
        # full-transcript hashes agree the link looks clean, the search state is
        # discarded and the party goes back to simulating — even if the two
        # endpoints had drifted apart in their meeting-points counters (which
        # happens when noise corrupted one direction of a previous exchange).
        if their_full is not None and their_full == self._own_full_hash:
            outcome.status = STATUS_SIMULATE
            outcome.full_match = True
            if recorder is not None and self.k > 1:
                # A real search (k > 1) just recovered; steady-state matches
                # at k = 1 are not transitions and stay out of the ring.
                recorder.emit(
                    "meeting_point", event="recovered", link=self.link,
                    iteration=iteration, k=self.k,
                )
            self._reset_counters()
            self.status = STATUS_SIMULATE
            return outcome
        if recorder is not None and was_simulating:
            recorder.emit(
                "meeting_point", event="diverged", link=self.link,
                iteration=iteration, k=self.k,
            )

        if not outcome.k_agreed:
            # The two endpoints disagree about how long they have been
            # searching (channel noise, or one of them reset while the other
            # did not).  Restart the local search: within two phases both
            # sides are back at k = 1 simultaneously, which prevents the
            # counters from drifting apart indefinitely.  Each such restart
            # is caused by (and therefore charged to) a corrupted exchange.
            self.error_count += 1
            self.resets += 1
            if recorder is not None:
                recorder.emit(
                    "meeting_point", event="reset", link=self.link,
                    iteration=iteration, k=self.k,
                )
            self._reset_counters()
            self.status = STATUS_MEETING_POINTS
            outcome.reset = True
            return outcome

        if self.k > 1:
            if self._own_mp1_hash in (their_mp1, their_mp2):
                self.mpc1 += 1
                outcome.vote = "mp1"
            elif self._own_mp2_hash in (their_mp1, their_mp2):
                self.mpc2 += 1
                outcome.vote = "mp2"

        # End-of-scale transition: truncate to a sufficiently supported
        # meeting point, then start a fresh (shorter) search.
        if self.k > 1 and self.k == self._k_tilde:
            if self.mpc1 >= 0.5 * self._k_tilde:
                outcome.truncate_to = self._mp1
            elif self.mpc2 >= 0.5 * self._k_tilde:
                outcome.truncate_to = self._mp2
            self.mpc1 = 0
            self.mpc2 = 0

        if recorder is not None and outcome.vote is not None:
            recorder.emit(
                "meeting_point", event="vote", vote=outcome.vote, link=self.link,
                iteration=iteration, k=self.k,
            )

        if outcome.truncate_to is not None:
            self.truncations += 1
            if recorder is not None:
                recorder.emit(
                    "meeting_point", event="truncate", link=self.link,
                    iteration=iteration, k=self.k, truncate_to=outcome.truncate_to,
                )
            self._reset_counters()

        self.status = STATUS_MEETING_POINTS
        outcome.status = STATUS_MEETING_POINTS
        return outcome

    # -- internals ----------------------------------------------------------------

    def _reset_counters(self) -> None:
        self.k = 0
        self.error_count = 0
        self.mpc1 = 0
        self.mpc2 = 0

    @staticmethod
    def _clean_group(received: Sequence[Symbol], start: int, length: int) -> Optional[Tuple[int, ...]]:
        """Extract a hash from the received symbols; ``None`` if any bit is missing."""
        group = received[start:start + length]
        if len(group) < length or None in group:
            return None
        return tuple(map(int, group))

    @staticmethod
    def _clean_group_packed(received: Sequence[Symbol], start: int, length: int) -> Optional[int]:
        """Like :meth:`_clean_group` but packed; ``None`` if any bit is missing."""
        if len(received) < start + length:
            return None
        value = 0
        for offset in range(length):
            symbol = received[start + offset]
            if symbol is None:
                return None
            if symbol:
                value |= 1 << offset
        return value

    def _prefix_hash_input(
        self, transcript: LinkTranscript, num_chunks: int
    ) -> Tuple[int, int]:
        """The packed hash input and its width for one transcript prefix.

        Both values come from the transcript's per-prefix cache: the packed
        raw form is ``int.from_bytes(serialized, "little")`` (bit-identical
        to the historical ``bits_to_int(bytes_to_bits(...))`` loop) and the
        fingerprint is the same BLAKE2b compression as before, computed once
        per (transcript state, prefix length) instead of per exchange.
        """
        if (
            self.hash_input_mode == "raw"
            and transcript.prefix_byte_length(num_chunks) * 8 <= _RAW_INPUT_CAP_BITS
        ):
            return transcript.prefix_raw(num_chunks), _RAW_INPUT_CAP_BITS
        return transcript.prefix_fingerprint(num_chunks), FINGERPRINT_BITS

    def _hash_counter(self, iteration: int, value: int) -> Tuple[int, ...]:
        seed = self.seed_source.seed_for(
            iteration, "mp_counter", self.hasher.seed_bits_required(_COUNTER_BITS)
        )
        digest = self.hasher.digest(value & ((1 << _COUNTER_BITS) - 1), _COUNTER_BITS, seed)
        return self._unpack(digest)

    def _hash_prefix(self, iteration: int, transcript: LinkTranscript, num_chunks: int) -> Tuple[int, ...]:
        value, input_bits = self._prefix_hash_input(transcript, num_chunks)
        seed = self.seed_source.seed_for(
            iteration, "mp_prefix", self.hasher.seed_bits_required(input_bits)
        )
        digest = self.hasher.digest(value, input_bits, seed)
        return self._unpack(digest)

    def _unpack(self, digest: int) -> Tuple[int, ...]:
        return tuple(int_to_bits(digest, self.hasher.output_bits))
