"""Pairwise transcripts T_{u,v}.

For every incident link, a party keeps the transcript of the chunks it has
simulated on that link (paper §3.2): for each chunk, the chunk number and the
symbols observed on the link's scheduled slots, in schedule order.  Two
facing transcripts T_{u,v} and T_{v,u} agree on a chunk exactly when every
transmission of that chunk was delivered uncorrupted — for a slot ``u → v``
party ``u`` records the bit it sent while party ``v`` records the bit it
received, so any substitution/deletion/insertion on the link shows up as a
mismatch (and only those; noise on other links does not).

The transcript also stores, for every reception, the absolute protocol round
and the sending neighbour, because re-simulating later chunks (possibly after
a rewind) replays the party's protocol logic against everything it has
received so far.

Serialisation is kept *packed and incremental*: every appended chunk is
serialised exactly once into a growing byte buffer, and the per-prefix
values the meeting-points hashing consumes (BLAKE2b fingerprints, packed raw
integers) are cached per prefix length.  ``records`` stays a public mutable
list for tests and tooling; every cached accessor revalidates the cache
against the live list (an identity scan) before serving, so direct mutation
is safe — it just pays a rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hashing.inner_product import fingerprint_bits
from repro.network.channel import Symbol


def _symbol_char(symbol: Symbol) -> str:
    if symbol is None:
        return "*"
    return "1" if symbol else "0"


@dataclass(frozen=True)
class ChunkRecord:
    """One simulated chunk as observed on one link by one party."""

    chunk_index: int
    #: Symbols on the link's scheduled slots, in schedule order, from this
    #: party's perspective (sent bits for outgoing slots, received symbols for
    #: incoming slots; ``None`` marks a deletion).
    link_view: Tuple[Symbol, ...]
    #: Protocol round -> symbol received from the neighbour in that round.
    received_by_round: Tuple[Tuple[int, Symbol], ...] = ()

    def serialize(self) -> str:
        """Canonical text form used for hashing and equality."""
        view = "".join(_symbol_char(symbol) for symbol in self.link_view)
        return f"[{self.chunk_index}:{view}]"

    def matches(self, other: "ChunkRecord") -> bool:
        """Whether two facing records describe the same chunk content."""
        return self.chunk_index == other.chunk_index and self.link_view == other.link_view


class LinkTranscript:
    """The transcript of one link as seen by one endpoint."""

    def __init__(self, owner: int, neighbor: int) -> None:
        self.owner = owner
        self.neighbor = neighbor
        self.records: List[ChunkRecord] = []
        # Incremental serialisation cache: one bytes fragment per record, the
        # concatenated buffer, cumulative byte offsets, and the id() of each
        # record the cache was built from (the mutation guard).
        self._cache_ids: List[int] = []
        self._cache_parts: List[bytes] = []
        self._cache_offsets: List[int] = [0]
        self._cache_buffer = bytearray()
        #: Cached per-prefix hash inputs, keyed by ("fp" | "raw", num_chunks).
        self._prefix_values: Dict[Tuple[str, int], int] = {}

    # -- length & mutation ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    @property
    def num_chunks(self) -> int:
        return len(self.records)

    def append(self, record: ChunkRecord) -> None:
        self.records.append(record)
        if len(self._cache_ids) == len(self.records) - 1:
            # The cache was current before the append: extend it in place.
            # (Prefixes shorter than the new length are unchanged, so the
            # cached per-prefix values all stay valid.)
            self._cache_append(record)

    def truncate_to(self, num_chunks: int) -> int:
        """Keep only the first ``num_chunks`` chunks; returns how many were dropped."""
        if num_chunks < 0:
            raise ValueError("cannot truncate to a negative length")
        dropped = max(0, len(self.records) - num_chunks)
        del self.records[num_chunks:]
        if dropped and len(self._cache_ids) > len(self.records):
            self._cache_truncate(len(self.records))
        return dropped

    def truncate_last(self, count: int = 1) -> int:
        """Drop the last ``count`` chunks (no-op beyond the current length)."""
        return self.truncate_to(max(0, len(self.records) - count))

    # -- serialisation cache --------------------------------------------------------

    def _cache_append(self, record: ChunkRecord) -> None:
        part = record.serialize().encode("ascii")
        self._cache_ids.append(id(record))
        self._cache_parts.append(part)
        self._cache_buffer += part
        self._cache_offsets.append(len(self._cache_buffer))

    def _cache_truncate(self, num_chunks: int) -> None:
        del self._cache_ids[num_chunks:]
        del self._cache_parts[num_chunks:]
        del self._cache_offsets[num_chunks + 1:]
        del self._cache_buffer[self._cache_offsets[num_chunks]:]
        values = self._prefix_values
        if values:
            for key in [key for key in values if key[1] > num_chunks]:
                del values[key]

    def _sync_cache(self) -> None:
        """Revalidate the cache against the live ``records`` list.

        ``records`` is public and tests mutate it directly; an identity scan
        (cheap — one C-level list build and compare) detects any divergence
        and rebuilds from the longest still-valid prefix.
        """
        records = self.records
        ids = self._cache_ids
        if len(ids) == len(records) and ids == [id(record) for record in records]:
            return
        keep = 0
        for cached_id, record in zip(ids, records):
            if cached_id != id(record):
                break
            keep += 1
        self._cache_truncate(keep)
        for record in records[keep:]:
            self._cache_append(record)

    # -- serialization & comparison ------------------------------------------------------

    def serialize_prefix(self, num_chunks: Optional[int] = None) -> bytes:
        """Canonical byte serialisation of the first ``num_chunks`` chunks."""
        self._sync_cache()
        if num_chunks is None:
            num_chunks = len(self.records)
        num_chunks = max(0, min(num_chunks, len(self.records)))
        return bytes(self._cache_buffer[:self._cache_offsets[num_chunks]])

    def prefix_byte_length(self, num_chunks: int) -> int:
        """Byte length of :meth:`serialize_prefix` without materialising it."""
        self._sync_cache()
        num_chunks = max(0, min(num_chunks, len(self.records)))
        return self._cache_offsets[num_chunks]

    def prefix_fingerprint(self, num_chunks: int) -> int:
        """Cached :func:`~repro.hashing.inner_product.fingerprint_bits` of a prefix.

        Equal to ``fingerprint_bits(self.serialize_prefix(num_chunks))`` —
        the hot meeting-points path reads it from the per-prefix cache
        instead of re-serialising and re-hashing every consistency phase.
        """
        self._sync_cache()
        num_chunks = max(0, min(num_chunks, len(self.records)))
        key = ("fp", num_chunks)
        value = self._prefix_values.get(key)
        if value is None:
            end = self._cache_offsets[num_chunks]
            value = fingerprint_bits(bytes(self._cache_buffer[:end]))
            self._prefix_values[key] = value
        return value

    def prefix_raw(self, num_chunks: int) -> int:
        """Cached little-endian packed integer of a serialised prefix.

        Equal to ``int.from_bytes(self.serialize_prefix(num_chunks),
        "little")``, which is bit-for-bit the historical
        ``bits_to_int(bytes_to_bits(...))`` packing (LSB-first within each
        byte, byte 0 lowest).
        """
        self._sync_cache()
        num_chunks = max(0, min(num_chunks, len(self.records)))
        key = ("raw", num_chunks)
        value = self._prefix_values.get(key)
        if value is None:
            end = self._cache_offsets[num_chunks]
            value = int.from_bytes(self._cache_buffer[:end], "little")
            self._prefix_values[key] = value
        return value

    def matches_prefix(self, other: "LinkTranscript", num_chunks: Optional[int] = None) -> bool:
        """Ground-truth agreement check against the facing transcript."""
        if num_chunks is None:
            num_chunks = max(len(self.records), len(other.records))
        if len(self.records) < num_chunks or len(other.records) < num_chunks:
            return False
        return all(
            mine.matches(theirs)
            for mine, theirs in zip(self.records[:num_chunks], other.records[:num_chunks])
        )

    def common_prefix_chunks(self, other: "LinkTranscript") -> int:
        """G_{u,v}: length (in chunks) of the longest agreeing prefix."""
        count = 0
        for mine, theirs in zip(self.records, other.records):
            if not mine.matches(theirs):
                break
            count += 1
        return count

    # -- replay support -------------------------------------------------------------------

    def received_map(self, max_chunk_index: Optional[int] = None) -> Dict[Tuple[int, int], int]:
        """Received bits keyed by ``(protocol round, neighbour)`` for protocol replay.

        Deletions (``None``) are filled with 0 — the surrounding machinery
        detects and rewinds the inconsistency, so the filler value only has to
        be deterministic.
        """
        out: Dict[Tuple[int, int], int] = {}
        for record in self.records:
            if max_chunk_index is not None and record.chunk_index > max_chunk_index:
                continue
            for round_index, symbol in record.received_by_round:
                out[(round_index, self.neighbor)] = 0 if symbol is None else int(symbol)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkTranscript({self.owner}->{self.neighbor}, chunks={len(self.records)})"
