"""Pairwise transcripts T_{u,v}.

For every incident link, a party keeps the transcript of the chunks it has
simulated on that link (paper §3.2): for each chunk, the chunk number and the
symbols observed on the link's scheduled slots, in schedule order.  Two
facing transcripts T_{u,v} and T_{v,u} agree on a chunk exactly when every
transmission of that chunk was delivered uncorrupted — for a slot ``u → v``
party ``u`` records the bit it sent while party ``v`` records the bit it
received, so any substitution/deletion/insertion on the link shows up as a
mismatch (and only those; noise on other links does not).

The transcript also stores, for every reception, the absolute protocol round
and the sending neighbour, because re-simulating later chunks (possibly after
a rewind) replays the party's protocol logic against everything it has
received so far.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.network.channel import Symbol


def _symbol_char(symbol: Symbol) -> str:
    if symbol is None:
        return "*"
    return "1" if symbol else "0"


@dataclass(frozen=True)
class ChunkRecord:
    """One simulated chunk as observed on one link by one party."""

    chunk_index: int
    #: Symbols on the link's scheduled slots, in schedule order, from this
    #: party's perspective (sent bits for outgoing slots, received symbols for
    #: incoming slots; ``None`` marks a deletion).
    link_view: Tuple[Symbol, ...]
    #: Protocol round -> symbol received from the neighbour in that round.
    received_by_round: Tuple[Tuple[int, Symbol], ...] = ()

    def serialize(self) -> str:
        """Canonical text form used for hashing and equality."""
        view = "".join(_symbol_char(symbol) for symbol in self.link_view)
        return f"[{self.chunk_index}:{view}]"

    def matches(self, other: "ChunkRecord") -> bool:
        """Whether two facing records describe the same chunk content."""
        return self.chunk_index == other.chunk_index and self.link_view == other.link_view


class LinkTranscript:
    """The transcript of one link as seen by one endpoint."""

    def __init__(self, owner: int, neighbor: int) -> None:
        self.owner = owner
        self.neighbor = neighbor
        self.records: List[ChunkRecord] = []

    # -- length & mutation ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    @property
    def num_chunks(self) -> int:
        return len(self.records)

    def append(self, record: ChunkRecord) -> None:
        self.records.append(record)

    def truncate_to(self, num_chunks: int) -> int:
        """Keep only the first ``num_chunks`` chunks; returns how many were dropped."""
        if num_chunks < 0:
            raise ValueError("cannot truncate to a negative length")
        dropped = max(0, len(self.records) - num_chunks)
        del self.records[num_chunks:]
        return dropped

    def truncate_last(self, count: int = 1) -> int:
        """Drop the last ``count`` chunks (no-op beyond the current length)."""
        return self.truncate_to(max(0, len(self.records) - count))

    # -- serialization & comparison ------------------------------------------------------

    def serialize_prefix(self, num_chunks: Optional[int] = None) -> bytes:
        """Canonical byte serialisation of the first ``num_chunks`` chunks."""
        if num_chunks is None:
            num_chunks = len(self.records)
        num_chunks = max(0, min(num_chunks, len(self.records)))
        return "".join(record.serialize() for record in self.records[:num_chunks]).encode("ascii")

    def matches_prefix(self, other: "LinkTranscript", num_chunks: Optional[int] = None) -> bool:
        """Ground-truth agreement check against the facing transcript."""
        if num_chunks is None:
            num_chunks = max(len(self.records), len(other.records))
        if len(self.records) < num_chunks or len(other.records) < num_chunks:
            return False
        return all(
            mine.matches(theirs)
            for mine, theirs in zip(self.records[:num_chunks], other.records[:num_chunks])
        )

    def common_prefix_chunks(self, other: "LinkTranscript") -> int:
        """G_{u,v}: length (in chunks) of the longest agreeing prefix."""
        count = 0
        for mine, theirs in zip(self.records, other.records):
            if not mine.matches(theirs):
                break
            count += 1
        return count

    # -- replay support -------------------------------------------------------------------

    def received_map(self, max_chunk_index: Optional[int] = None) -> Dict[Tuple[int, int], int]:
        """Received bits keyed by ``(protocol round, neighbour)`` for protocol replay.

        Deletions (``None``) are filled with 0 — the surrounding machinery
        detects and rewinds the inconsistency, so the filler value only has to
        be deterministic.
        """
        out: Dict[Tuple[int, int], int] = {}
        for record in self.records:
            if max_chunk_index is not None and record.chunk_index > max_chunk_index:
                continue
            for round_index, symbol in record.received_by_round:
                out[(round_index, self.neighbor)] = 0 if symbol is None else int(symbol)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinkTranscript({self.owner}->{self.neighbor}, chunks={len(self.records)})"
