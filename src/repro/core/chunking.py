"""Partitioning the underlying protocol Π into chunks.

The coding scheme simulates Π one *chunk* at a time; a chunk is a maximal set
of consecutive rounds whose total communication does not exceed the chunk
budget (the paper's 5K bits — the paper then pads the last round virtually to
make every chunk exactly 5K bits; we keep the true per-chunk bit counts and
simply never exceed the budget, which changes nothing observable).

The partition only depends on the fixed speaking order, so every party
computes the same chunk boundaries locally.  After the real chunks we append
``padding_chunks`` empty dummy chunks (paper §3.2: "Π is padded with enough
dummy chunks").

``ChunkedProtocol`` also precomputes everything the simulation phase needs:

* the per-chunk round list and per-round scheduled links,
* the per-chunk *link slots* — for every undirected link, the ordered list of
  scheduled transmissions inside the chunk (this defines the canonical "link
  view" both endpoints hash and compare), and
* the maximum number of rounds of any chunk (the fixed length of the
  simulation-phase window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.graph import DirectedEdge, Graph, edge_key
from repro.protocols.base import Protocol


@dataclass(frozen=True)
class LinkSlot:
    """One scheduled transmission inside a chunk, as seen on one link."""

    offset: int        # round offset within the chunk (0-based)
    round_index: int   # absolute round index in Π
    sender: int
    receiver: int


@dataclass(frozen=True)
class Chunk:
    """A contiguous set of protocol rounds (empty for padding chunks)."""

    index: int                     # 1-based chunk number, as in the paper
    round_indices: Tuple[int, ...]
    is_padding: bool

    @property
    def num_rounds(self) -> int:
        return len(self.round_indices)


class ChunkedProtocol:
    """Π together with its chunk decomposition and per-chunk link schedules."""

    def __init__(self, protocol: Protocol, chunk_budget: int, padding_chunks: int = 2) -> None:
        if chunk_budget < 1:
            raise ValueError("chunk_budget must be positive")
        if padding_chunks < 0:
            raise ValueError("padding_chunks must be non-negative")
        self.protocol = protocol
        self.graph: Graph = protocol.graph
        self.chunk_budget = chunk_budget
        self.padding_chunks = padding_chunks
        self.schedule = protocol.schedule()
        self.chunks: List[Chunk] = self._build_chunks()
        self.num_real_chunks = sum(1 for chunk in self.chunks if not chunk.is_padding)
        self._chunk_round_links: Dict[int, List[List[DirectedEdge]]] = {}
        self._link_slots: Dict[Tuple[int, Tuple[int, int]], List[LinkSlot]] = {}
        self._precompute()

    # -- construction ---------------------------------------------------------

    def _build_chunks(self) -> List[Chunk]:
        chunks: List[Chunk] = []
        current_rounds: List[int] = []
        current_bits = 0
        for round_index, transmissions in enumerate(self.schedule):
            bits = len(transmissions)
            if current_rounds and current_bits + bits > self.chunk_budget:
                chunks.append(Chunk(index=len(chunks) + 1, round_indices=tuple(current_rounds), is_padding=False))
                current_rounds = []
                current_bits = 0
            current_rounds.append(round_index)
            current_bits += bits
        if current_rounds:
            chunks.append(Chunk(index=len(chunks) + 1, round_indices=tuple(current_rounds), is_padding=False))
        if not chunks:
            # A silent protocol still gets one (empty) real chunk so that the
            # machinery has something to simulate.
            chunks.append(Chunk(index=1, round_indices=(), is_padding=False))
        for _ in range(self.padding_chunks):
            chunks.append(Chunk(index=len(chunks) + 1, round_indices=(), is_padding=True))
        return chunks

    def _precompute(self) -> None:
        for chunk in self.chunks:
            per_round: List[List[DirectedEdge]] = []
            for offset, round_index in enumerate(chunk.round_indices):
                links = list(self.schedule[round_index])
                per_round.append(links)
                for sender, receiver in links:
                    key = (chunk.index, edge_key(sender, receiver))
                    self._link_slots.setdefault(key, []).append(
                        LinkSlot(offset=offset, round_index=round_index, sender=sender, receiver=receiver)
                    )
            self._chunk_round_links[chunk.index] = per_round

    # -- queries ----------------------------------------------------------------

    @property
    def num_chunks(self) -> int:
        """Total number of chunks including padding (the scheme's |Π| plus padding)."""
        return len(self.chunks)

    def chunk(self, chunk_index: int) -> Chunk:
        """The chunk with 1-based index ``chunk_index`` (padding chunks beyond the
        precomputed ones are synthesised on demand, so the simulation can always
        "simulate the next chunk" even late in the iteration budget)."""
        if chunk_index < 1:
            raise ValueError("chunk indices are 1-based")
        if chunk_index <= len(self.chunks):
            return self.chunks[chunk_index - 1]
        return Chunk(index=chunk_index, round_indices=(), is_padding=True)

    def chunk_round_links(self, chunk_index: int) -> List[List[DirectedEdge]]:
        """Per round offset, the directed links scheduled in that round of the chunk."""
        if chunk_index <= len(self.chunks):
            return self._chunk_round_links[chunk_index]
        return []

    def link_slots(self, chunk_index: int, u: int, v: int) -> List[LinkSlot]:
        """Ordered transmissions on link {u, v} within the chunk (both directions)."""
        return list(self._link_slots.get((chunk_index, edge_key(u, v)), []))

    def max_chunk_rounds(self) -> int:
        """The fixed length of the simulation window (longest chunk, in rounds)."""
        return max((chunk.num_rounds for chunk in self.chunks), default=0)

    def chunk_bits(self, chunk_index: int) -> int:
        """Number of transmissions scheduled inside the chunk."""
        return sum(len(links) for links in self.chunk_round_links(chunk_index))

    def communication_complexity(self) -> int:
        """CC(Π) — communication of the underlying protocol."""
        return self.protocol.communication_complexity()
