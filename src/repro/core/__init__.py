"""The coding scheme itself: Algorithm 1 and the A/B/C presets."""

from repro.core.chunking import Chunk, ChunkedProtocol, LinkSlot
from repro.core.engine import InteractiveCodingSimulator, PartyRuntime, simulate
from repro.core.meeting_points import (
    STATUS_MEETING_POINTS,
    STATUS_SIMULATE,
    MeetingPointsOutcome,
    MeetingPointsSession,
)
from repro.core.parameters import (
    SCHEME_PRESETS,
    SchemeParameters,
    algorithm_a,
    algorithm_b,
    algorithm_c,
    crs_oblivious_scheme,
    scheme_by_name,
)
from repro.core.randomness_exchange import RandomnessExchangeReport, run_randomness_exchange
from repro.core.results import SimulationResult
from repro.core.transcript import ChunkRecord, LinkTranscript

__all__ = [
    "Chunk",
    "ChunkedProtocol",
    "LinkSlot",
    "InteractiveCodingSimulator",
    "PartyRuntime",
    "simulate",
    "STATUS_MEETING_POINTS",
    "STATUS_SIMULATE",
    "MeetingPointsOutcome",
    "MeetingPointsSession",
    "SCHEME_PRESETS",
    "SchemeParameters",
    "algorithm_a",
    "algorithm_b",
    "algorithm_c",
    "crs_oblivious_scheme",
    "scheme_by_name",
    "RandomnessExchangeReport",
    "run_randomness_exchange",
    "SimulationResult",
    "ChunkRecord",
    "LinkTranscript",
]
