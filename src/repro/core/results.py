"""Result objects returned by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import RunMetrics
from repro.analysis.potential import PotentialTrace
from repro.core.parameters import SchemeParameters


@dataclass
class SimulationResult:
    """Everything observable about one run of the noise-resilient simulation.

    ``success`` is the paper's notion of correct simulation: every party's
    output under the coding scheme equals its output in the noiseless
    reference execution of Π.
    """

    scheme: SchemeParameters
    success: bool
    outputs: Dict[int, object]
    reference_outputs: Dict[int, object]
    metrics: RunMetrics
    channel_summary: Dict[str, float]
    iterations_run: int
    iterations_budget: int
    num_real_chunks: int
    final_link_agreement: Dict[Tuple[int, int], int] = field(default_factory=dict)
    potential_trace: Optional[PotentialTrace] = None
    randomness_exchange_agreed: Dict[Tuple[int, int], bool] = field(default_factory=dict)

    def failed_parties(self) -> List[int]:
        """Parties whose simulated output differs from the noiseless one."""
        return sorted(
            party
            for party, output in self.reference_outputs.items()
            if self.outputs.get(party) != output
        )

    @property
    def overhead(self) -> float:
        """Communication blow-up factor CC(simulation)/CC(Π)."""
        return self.metrics.overhead

    @property
    def rate(self) -> float:
        """Communication rate CC(Π)/CC(simulation)."""
        return self.metrics.rate

    @property
    def noise_fraction(self) -> float:
        return self.metrics.noise_fraction

    def summary(self) -> Dict[str, object]:
        """A compact dictionary for reports, sweeps and benchmarks."""
        data = self.metrics.as_dict()
        data.update(
            {
                "iterations_budget": self.iterations_budget,
                "num_real_chunks": self.num_real_chunks,
                "failed_parties": self.failed_parties(),
            }
        )
        return data
