"""Scheme parameters and the presets for Algorithms A, B and C.

The coding scheme is one algorithm (Algorithm 1) parameterised by

* ``K`` — the chunk scale; a chunk of the underlying protocol carries
  ``chunk_multiplier * K`` bits (the paper's ``5K``),
* the hash output length τ used by the meeting-points phase,
* whether the hash seeds come from a common random string (CRS) or from a
  per-link randomness exchange expanded to a δ-biased string, and
* the iteration budget (the paper runs ``100·|Π|`` iterations).

The paper's instantiations:

=============  ========  ==============  =============  =====================
scheme         CRS?      K               τ              tolerated noise
=============  ========  ==============  =============  =====================
Algorithm 1    yes       m               Θ(1)           ε/m   (oblivious)
Algorithm A    no        m               Θ(1)           ε/m   (oblivious)
Algorithm B    no        m·log m         Θ(log m)       ε/(m·log m)
Algorithm C    yes       m·log log m     Θ(log m)       ε/(m·log log m)
=============  ========  ==============  =============  =====================

The analysis constants (the "100" iterations, the C₁…C₇ of the potential) are
proof artefacts; we expose them as tunable fields with practical defaults and
record the paper's values in the docstrings (see DESIGN.md §3, substitution 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.network.graph import Graph


def _ceil_log2(value: float) -> int:
    """⌈log₂ value⌉ with a floor of 1 (used for K = m·log m style scalings)."""
    if value <= 2:
        return 1
    return max(1, math.ceil(math.log2(value)))


@dataclass(frozen=True)
class SchemeParameters:
    """All knobs of the noise-resilient simulation."""

    #: Human-readable scheme name used in reports ("algorithm_a", ...).
    name: str = "algorithm_crs"

    #: If True the hash seeds come from a shared CRS (Algorithm 1 / C);
    #: otherwise each link runs the randomness exchange of Algorithm 5.
    use_crs: bool = True

    #: How K scales with the network: "m", "m_log_m", "m_log_log_m" or "fixed".
    k_mode: str = "m"
    #: Explicit K when ``k_mode == "fixed"``.
    k_fixed: Optional[int] = None

    #: A chunk carries ``chunk_multiplier * K`` bits of Π (the paper's 5).
    chunk_multiplier: int = 5

    #: Hash output length policy: "constant" (Algorithm 1/A) or "log_m" (B/C).
    hash_mode: str = "constant"
    #: τ when ``hash_mode == "constant"``.
    hash_constant_bits: int = 8

    #: How transcripts are fed to the inner-product hash: "fingerprint"
    #: (compress to 128 bits first; default, see DESIGN.md) or "raw".
    hash_input_mode: str = "fingerprint"

    #: Iteration budget: ``ceil(iteration_factor * |Π|) + extra_iterations``
    #: iterations, at least ``min_iterations``.  The paper uses factor 100 and
    #: no early stop; the default is far smaller because the analysis constants
    #: are loose (substitution 1 in DESIGN.md).
    iteration_factor: float = 4.0
    extra_iterations: int = 6
    min_iterations: int = 8

    #: Rounds of the rewind phase; ``None`` means n (the paper's choice).
    rewind_rounds: Optional[int] = None

    #: Dummy chunks appended after the real protocol (paper: "padded with
    #: enough dummy chunks").
    padding_chunks: int = 2

    #: Field degree of the AGHP δ-biased generator (seed length is twice this).
    small_bias_field_degree: int = 64

    #: Stop as soon as every link transcript correctly contains all real
    #: chunks (engineering optimisation; see engine docs).
    early_stop: bool = True

    #: Ablation switches (DESIGN.md §6).
    enable_flag_passing: bool = True
    enable_rewind_phase: bool = True

    #: Record the potential-function trace every iteration (costs time).
    trace_potential: bool = False

    # -- derived quantities ----------------------------------------------------

    def scale_k(self, graph: Graph) -> int:
        """K for the given network."""
        m = graph.num_edges
        if self.k_mode == "fixed":
            if self.k_fixed is None or self.k_fixed < 1:
                raise ValueError("k_fixed must be a positive integer when k_mode='fixed'")
            return self.k_fixed
        if self.k_mode == "m":
            return m
        if self.k_mode == "m_log_m":
            return m * _ceil_log2(m)
        if self.k_mode == "m_log_log_m":
            return m * _ceil_log2(_ceil_log2(m) + 1)
        raise ValueError(f"unknown k_mode {self.k_mode!r}")

    def chunk_budget(self, graph: Graph) -> int:
        """Bits of Π per chunk (the paper's 5K)."""
        return self.chunk_multiplier * self.scale_k(graph)

    def hash_output_bits(self, graph: Graph) -> int:
        """τ, the meeting-points hash output length."""
        if self.hash_mode == "constant":
            return self.hash_constant_bits
        if self.hash_mode == "log_m":
            return max(self.hash_constant_bits, _ceil_log2(graph.num_edges) + 4)
        raise ValueError(f"unknown hash_mode {self.hash_mode!r}")

    def nominal_noise_fraction(self, graph: Graph, epsilon: float = 0.01) -> float:
        """The noise fraction the scheme is designed to tolerate (ε over the scale)."""
        m = graph.num_edges
        if self.k_mode in ("m", "fixed"):
            return epsilon / m
        if self.k_mode == "m_log_m":
            return epsilon / (m * _ceil_log2(m))
        if self.k_mode == "m_log_log_m":
            return epsilon / (m * _ceil_log2(_ceil_log2(m) + 1))
        raise ValueError(f"unknown k_mode {self.k_mode!r}")

    def iterations(self, num_chunks: int) -> int:
        """Iteration budget for a protocol with ``num_chunks`` chunks."""
        return max(
            self.min_iterations,
            math.ceil(self.iteration_factor * num_chunks) + self.extra_iterations,
        )

    def rewind_round_count(self, graph: Graph) -> int:
        return self.rewind_rounds if self.rewind_rounds is not None else graph.num_nodes

    def with_overrides(self, **kwargs) -> "SchemeParameters":
        """A copy with some fields replaced (convenience for sweeps/ablations)."""
        return replace(self, **kwargs)


# -- presets -------------------------------------------------------------------


def crs_oblivious_scheme(**overrides) -> SchemeParameters:
    """Algorithm 1 with a CRS (Theorem 4.1): ε/m oblivious noise, K = m, constant τ."""
    return SchemeParameters(name="algorithm_crs", use_crs=True, k_mode="m", hash_mode="constant").with_overrides(**overrides)


def algorithm_a(**overrides) -> SchemeParameters:
    """Algorithm A (Theorem 5.1): no CRS, ε/m oblivious noise, K = m, constant τ."""
    return SchemeParameters(name="algorithm_a", use_crs=False, k_mode="m", hash_mode="constant").with_overrides(**overrides)


def algorithm_b(**overrides) -> SchemeParameters:
    """Algorithm B (Theorem 6.1): no CRS, ε/(m log m) non-oblivious noise, K = m log m, τ = Θ(log m)."""
    return SchemeParameters(name="algorithm_b", use_crs=False, k_mode="m_log_m", hash_mode="log_m").with_overrides(**overrides)


def algorithm_c(**overrides) -> SchemeParameters:
    """Algorithm C (Appendix B): CRS, ε/(m log log m) non-oblivious noise, K = m log log m, τ = Θ(log m)."""
    return SchemeParameters(name="algorithm_c", use_crs=True, k_mode="m_log_log_m", hash_mode="log_m").with_overrides(**overrides)


SCHEME_PRESETS = {
    "algorithm_crs": crs_oblivious_scheme,
    "algorithm_a": algorithm_a,
    "algorithm_b": algorithm_b,
    "algorithm_c": algorithm_c,
}


def scheme_by_name(name: str, **overrides) -> SchemeParameters:
    """Look up a preset by name."""
    try:
        factory = SCHEME_PRESETS[name]
    except KeyError as exc:
        raise ValueError(f"unknown scheme {name!r}; known: {sorted(SCHEME_PRESETS)}") from exc
    return factory(**overrides)
