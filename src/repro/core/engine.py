"""The noise-resilient simulator — the paper's Algorithm 1.

``InteractiveCodingSimulator`` takes a noiseless protocol Π (with a fixed
speaking order), a network adversary, and a :class:`SchemeParameters` preset
(Algorithm 1/A/B/C), and executes the noise-resilient simulation over the
noisy network:

    for every iteration:
        (i)   consistency check  — one meeting-points exchange per link
        (ii)  flag passing       — convergecast/broadcast of continue/idle flags
        (iii) simulation         — one chunk of Π per link (or idle ⊥)
        (iv)  rewind             — length-based single-chunk rewind requests

All inter-party communication goes through :class:`NoisyNetwork`, so the
adversary sees (and may corrupt) every symbol, and the communication /
corruption accounting used by the theorems is collected in one place.

Engineering notes (full discussion in DESIGN.md):

* The iteration budget defaults to a small multiple of |Π| instead of the
  paper's ``100·|Π|`` — the analysis constants are loose.  With
  ``early_stop=True`` (default) the run also ends as soon as every link's
  facing transcripts agree on all real chunks; this is an observer-level
  shortcut that can only shorten runs (success is always re-validated by
  comparing final party outputs with the noiseless reference execution).
* Parties never read each other's state: every decision a party makes uses
  only its own transcripts, its hash seeds and what it received on the wire.
  Ground-truth quantities (potential, hash-collision counts, success) are
  computed by the surrounding harness for reporting only.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.adversary.base import Adversary, NoiselessAdversary
from repro.analysis.metrics import RunMetrics
from repro.analysis.potential import PotentialTrace, compute_snapshot
from repro.core.chunking import ChunkedProtocol
from repro.core.config import DEFAULT_ENGINE_CONFIG, EngineConfig, warn_legacy_engine_switch
from repro.core.meeting_points import (
    _RAW_INPUT_CAP_BITS,
    STATUS_MEETING_POINTS,
    STATUS_SIMULATE,
    MeetingPointsSession,
)
from repro.core.parameters import SchemeParameters, crs_oblivious_scheme
from repro.core.randomness_exchange import run_randomness_exchange
from repro.core.results import SimulationResult
from repro.core.transcript import ChunkRecord, LinkTranscript
from repro.hashing.inner_product import FINGERPRINT_BITS, InnerProductHash
from repro.hashing.seeds import CrsSeedSource, SeedSource
from repro.network.channel import Symbol
from repro.network.graph import Graph, edge_key
from repro.network.spanning_tree import SpanningTree
from repro.network.transport import NoisyNetwork
from repro.obs import Tracer, get_obs, link_label
from repro.protocols.base import PartyLogic, Protocol
from repro.utils.bitstring import symbol_to_bit
from repro.utils.rng import fork, fork_seed


@dataclass
class PartyRuntime:
    """The complete local state of one party during the simulation."""

    party: int
    logic: PartyLogic
    transcripts: Dict[int, LinkTranscript]
    sessions: Dict[int, MeetingPointsSession]
    link_status: Dict[int, str]
    status_flag: int = 1
    net_correct: int = 1

    def neighbors(self) -> List[int]:
        return sorted(self.transcripts)

    def min_chunk(self) -> int:
        return min(len(self.transcripts[v]) for v in self.transcripts)

    def build_received_map(self) -> Dict[Tuple[int, int], int]:
        """Everything this party has received so far, for protocol replay."""
        merged: Dict[Tuple[int, int], int] = {}
        for transcript in self.transcripts.values():
            merged.update(transcript.received_map())
        return merged


class InteractiveCodingSimulator:
    """Run Algorithm 1 (with the chosen scheme preset) over a noisy network."""

    def __init__(
        self,
        protocol: Protocol,
        scheme: Optional[SchemeParameters] = None,
        adversary: Optional[Adversary] = None,
        seed: int = 0,
        config: Optional[EngineConfig] = None,
        *,
        fast_hashing: Optional[bool] = None,
        batch_rounds: Optional[bool] = None,
        merge_phases: Optional[bool] = None,
        batched: Optional[bool] = None,
    ) -> None:
        self.protocol = protocol
        self.graph: Graph = protocol.graph
        self.scheme = scheme if scheme is not None else crs_oblivious_scheme()
        self.adversary = adversary if adversary is not None else NoiselessAdversary()
        self.seed = seed

        if config is None:
            config = DEFAULT_ENGINE_CONFIG
        # Legacy per-switch keywords: honoured, but deprecated in favour of
        # one EngineConfig (each spelling warns once per process).
        legacy = {
            "fast_hashing": fast_hashing,
            "batch_rounds": batch_rounds,
            "merge_phases": merge_phases,
            "batched": batched,
        }
        overrides = {}
        for name, value in legacy.items():
            if value is None:
                continue
            field = "batched_transport" if name == "batched" else name
            warn_legacy_engine_switch(name, field)
            overrides[field] = value
        if overrides:
            config = config.with_overrides(**overrides)
        #: The execution configuration this simulator was built with.  The
        #: switches below are copied out as plain *mutable* attributes rather
        #: than read from the frozen config (or from scheme fields) for two
        #: reasons: trial fingerprints (and therefore result caches) must be
        #: unaffected — every configuration is bit-identical, pinned by the
        #: equivalence suites — and tests/benchmarks flip individual switches
        #: on a live simulator.
        self.config = config
        #: Batched meeting-points hashing (seeds_for_iteration + digest_many
        #: + packed digests) instead of per-call derivation.
        self.fast_hashing = config.fast_hashing
        #: Engine-side window scheduling: sparse exchange_window dispatch for
        #: rounds that transmit on a handful of links, plus one-call clock
        #: advancement over provably idle round spans.  Bit-identical to the
        #: round-by-round schedule (same adversary calls in the same order).
        self.batch_rounds = config.batch_rounds
        #: Whole-phase round merging: when the adversary honours the
        #: slot-addressed contract
        #: (:attr:`~repro.adversary.base.Adversary.slot_addressed`), the
        #: flag-passing / simulation / rewind phases each become one
        #: :meth:`~repro.network.transport.NoisyNetwork.exchange_phase`
        #: dispatch instead of one dispatch per round.  Bit-identical to the
        #: lockstep schedule in deliveries, statistics and round accounting
        #: (pinned by tests/test_phase_merge_fuzz.py); silently ignored for
        #: stateful adversaries, which truthfully report
        #: ``slot_addressed=False``.
        self.merge_phases = config.merge_phases
        #: Packed-plane hot path: the meeting-points exchange travels as
        #: ``(bits, present)`` integer planes through
        #: :meth:`~repro.network.transport.NoisyNetwork.exchange_window_packed`
        #: (one ``corrupt_window_packed`` kernel call and O(1)-popcount
        #: accounting per link) instead of per-slot symbol sequences.
        self.packed = config.packed
        #: The ambient observability context, captured once (a plain
        #: attribute, for the same fingerprint-invisibility reason).  With the
        #: default disabled context the per-run cost is one attribute read and
        #: one branch; the iteration loop body is untouched.
        self._obs = get_obs()

        self.scale_k = self.scheme.scale_k(self.graph)
        self.chunked = ChunkedProtocol(
            protocol,
            chunk_budget=self.scheme.chunk_budget(self.graph),
            padding_chunks=self.scheme.padding_chunks,
        )
        self.hasher = InnerProductHash(self.scheme.hash_output_bits(self.graph))
        self.tree = SpanningTree(self.graph, root=0)
        self.network = NoisyNetwork(
            self.graph, adversary=self.adversary, batched=config.batched_transport
        )
        self.runtimes: Dict[int, PartyRuntime] = {}
        self.iterations_budget = self.scheme.iterations(self.chunked.num_real_chunks)
        self._counters: Dict[str, int] = {
            "rewinds_sent": 0,
            "mp_truncations": 0,
            "hash_mismatches": 0,
            "hash_collisions": 0,
        }
        self._randomness_agreed: Dict[Tuple[int, int], bool] = {}

    # ------------------------------------------------------------------ run --

    def run(self) -> SimulationResult:
        """Execute the whole simulation and return a :class:`SimulationResult`."""
        reference = self.protocol.run_noiseless()
        self.adversary.reset()
        self._initialize_state()

        trace = PotentialTrace() if self.scheme.trace_potential else None
        tracer = self._obs.tracer
        recorder = self._obs.recorder
        phase_rounds: Optional[Dict[str, int]] = {} if self._obs.metrics is not None else None
        iterations_run = 0
        for iteration in range(self.iterations_budget):
            iterations_run = iteration + 1
            if tracer is None and phase_rounds is None:
                self._meeting_points_phase(iteration)
                self._compute_status_flags()
                self._flag_passing_phase(iteration)
                self._simulation_phase(iteration)
                if self.scheme.enable_rewind_phase:
                    self._rewind_phase(iteration)
            else:
                self._run_iteration_observed(iteration, tracer, phase_rounds)
            if trace is not None or recorder is not None:
                snapshot = compute_snapshot(
                    self.graph, self._all_transcripts(), iteration, self.scale_k
                )
                if trace is not None:
                    trace.record(snapshot)
                if recorder is not None:
                    # Ground-truth Φ trajectory (reporting only, like the
                    # potential trace itself: the parties never see it).
                    recorder.emit("potential", **snapshot.as_dict())
            if self.scheme.early_stop and self._simulation_complete():
                break

        outputs = self._extract_outputs()
        metrics = self._build_metrics(reference_cc=self.protocol.communication_complexity(),
                                      outputs=outputs,
                                      reference_outputs=reference.outputs,
                                      iterations_run=iterations_run)
        if self._obs.metrics is not None:
            self._flush_obs(phase_rounds or {}, iterations_run)
        return SimulationResult(
            scheme=self.scheme,
            success=metrics.success,
            outputs=outputs,
            reference_outputs=reference.outputs,
            metrics=metrics,
            channel_summary=self.network.stats.snapshot(),
            iterations_run=iterations_run,
            iterations_budget=self.iterations_budget,
            num_real_chunks=self.chunked.num_real_chunks,
            final_link_agreement={
                edge: self._transcript(edge[0], edge[1]).common_prefix_chunks(self._transcript(edge[1], edge[0]))
                for edge in self.graph.edges
            },
            potential_trace=trace,
            randomness_exchange_agreed=dict(self._randomness_agreed),
        )

    # ------------------------------------------------------ observability --

    def _run_iteration_observed(
        self,
        iteration: int,
        tracer: Optional[Tracer],
        phase_rounds: Optional[Dict[str, int]],
    ) -> None:
        """One iteration of the main loop with spans and per-phase round counts.

        A separate mirror of the loop body so the unobserved path stays free
        of context managers and conditionals; bit-identical to it (spans and
        counters never touch the schedule, the adversary or any RNG).
        """
        scope = tracer.span("iteration", iteration=iteration) if tracer is not None else nullcontext()
        with scope:
            self._observed_phase("meeting_points", iteration, self._meeting_points_phase, tracer, phase_rounds)
            self._compute_status_flags()
            self._observed_phase("flag_passing", iteration, self._flag_passing_phase, tracer, phase_rounds)
            self._observed_phase("simulation", iteration, self._simulation_phase, tracer, phase_rounds)
            if self.scheme.enable_rewind_phase:
                self._observed_phase("rewind", iteration, self._rewind_phase, tracer, phase_rounds)

    def _observed_phase(
        self,
        name: str,
        iteration: int,
        step: Callable[[int], None],
        tracer: Optional[Tracer],
        phase_rounds: Optional[Dict[str, int]],
    ) -> None:
        before = self.network.current_round
        if tracer is not None:
            with tracer.span("phase", phase=name, iteration=iteration):
                step(iteration)
        else:
            step(iteration)
        if phase_rounds is not None:
            phase_rounds[name] = phase_rounds.get(name, 0) + (self.network.current_round - before)

    def _flush_obs(self, phase_rounds: Dict[str, int], iterations_run: int) -> None:
        """Flush every per-trial counter into the ambient metrics registry.

        One bulk :meth:`~repro.obs.metrics.MetricsRegistry.inc_many` per trial
        (a single lock acquisition), fed from the plain integer counters the
        hot paths maintained: engine diagnostics, transport dispatch shapes,
        :class:`~repro.network.channel.ChannelStats` totals, hashing-session
        build paths and seed-source derivations, and the adversary's budget
        consumption when it has one.
        """
        network = self.network
        stats = network.stats
        counters: Dict[str, float] = {
            "engine.trials": 1,
            "engine.iterations_run": iterations_run,
            "engine.rounds_total": network.current_round,
            "engine.rewinds_sent": self._counters["rewinds_sent"],
            "engine.meeting_point_truncations": self._counters["mp_truncations"],
            "engine.hash_mismatches": self._counters["hash_mismatches"],
            "engine.hash_collisions": self._counters["hash_collisions"],
            "transport.windows_exchanged": network.windows_exchanged,
            "transport.sparse_dispatches": network.sparse_dispatches,
            "transport.dense_dispatches": network.dense_dispatches,
            "transport.merged_dispatches": network.merged_dispatches,
            "transport.packed_dispatches": network.packed_dispatches,
            "transport.idle_rounds_collapsed": network.idle_rounds_collapsed,
            "transport.transmissions": stats.transmissions,
            "transport.delivered_symbols": stats.delivered_symbols,
            "transport.substitutions": stats.substitutions,
            "transport.deletions": stats.deletions,
            "transport.insertions": stats.insertions,
        }
        for phase, count in phase_rounds.items():
            counters[f"engine.rounds.{phase}"] = count
        for phase, count in stats.transmissions_by_phase.items():
            counters[f"transport.transmissions.{phase}"] = count
        for phase, count in stats.corruptions_by_phase.items():
            counters[f"transport.corruptions.{phase}"] = count
        fast_builds = reference_builds = truncations = resets = derivations = 0
        for runtime in self.runtimes.values():
            for session in runtime.sessions.values():
                fast_builds += session.fast_builds
                reference_builds += session.reference_builds
                truncations += session.truncations
                resets += session.resets
                derivations += getattr(session.seed_source, "derivations", 0)
        counters["hashing.packed_builds"] = fast_builds
        counters["hashing.reference_builds"] = reference_builds
        counters["hashing.session_truncations"] = truncations
        counters["hashing.session_resets"] = resets
        counters["hashing.seed_derivations"] = derivations
        budget = getattr(self.adversary, "budget", None)
        if budget is not None:
            counters["adversary.transmissions_seen"] = getattr(budget, "transmissions_seen", 0)
            counters["adversary.corruptions_spent"] = getattr(budget, "corruptions_spent", 0)
        self._obs.metrics.inc_many(counters)

    # ------------------------------------------------------ initialisation --

    def _initialize_state(self) -> None:
        """InitializeState(): transcripts, meeting-points state and hash seeds."""
        seed_sources = self._setup_seed_sources()
        recorder = self._obs.recorder
        self.runtimes = {}
        for party in self.graph.nodes:
            transcripts = {v: LinkTranscript(party, v) for v in self.graph.neighbors(party)}
            sessions = {
                v: MeetingPointsSession(
                    hasher=self.hasher,
                    seed_source=seed_sources[(party, v)],
                    hash_input_mode=self.scheme.hash_input_mode,
                    fast_hashing=self.fast_hashing,
                    recorder=recorder,
                    link=link_label(party, v),
                )
                for v in self.graph.neighbors(party)
            }
            self.runtimes[party] = PartyRuntime(
                party=party,
                logic=self.protocol.create_party(party),
                transcripts=transcripts,
                sessions=sessions,
                link_status={v: STATUS_SIMULATE for v in self.graph.neighbors(party)},
            )

    def _setup_seed_sources(self) -> Dict[Tuple[int, int], SeedSource]:
        if self.scheme.use_crs:
            master = fork_seed(self.seed, "common-random-string")
            # Size the per-purpose slot capacity to the largest seed any hash
            # purpose can request: the inner-product seed for a full-width
            # input (raw inputs are capped at _RAW_INPUT_CAP_BITS, fingerprint
            # inputs at FINGERPRINT_BITS).  Capacity determines the slot
            # offsets, so this is part of the documented 1.0 CRS stream break.
            max_input_bits = (
                _RAW_INPUT_CAP_BITS
                if self.scheme.hash_input_mode == "raw"
                else FINGERPRINT_BITS
            )
            capacity = self.hasher.seed_bits_required(max_input_bits)
            sources: Dict[Tuple[int, int], SeedSource] = {}
            for u, v in self.graph.edges:
                # One shared source per undirected edge: both endpoints read
                # the same CRS, so they expand the same δ-biased stream once.
                source = CrsSeedSource(
                    master_seed=master,
                    link=edge_key(u, v),
                    field_degree=self.scheme.small_bias_field_degree,
                    slot_capacity_bits=capacity,
                )
                sources[(u, v)] = source
                sources[(v, u)] = source
            self._randomness_agreed = {edge: True for edge in self.graph.edges}
            return sources
        exchange_rng = fork(self.seed, "randomness-exchange")
        report = run_randomness_exchange(
            self.graph,
            self.network,
            exchange_rng,
            field_degree=self.scheme.small_bias_field_degree,
        )
        self._randomness_agreed = dict(report.agreed)
        return report.seed_sources

    # ------------------------------------------------- phase (i): meeting points --

    def _meeting_points_phase(self, iteration: int) -> None:
        # One dense window per directed link: every session contributes its
        # four concatenated hashes, and the whole network-wide exchange is a
        # single batched window transmission.
        if self.packed:
            self._meeting_points_phase_packed(iteration)
            return
        window = 4 * self.hasher.output_bits
        messages: Dict[Tuple[int, int], List[int]] = {}
        for runtime in self.runtimes.values():
            for neighbor in runtime.neighbors():
                session = runtime.sessions[neighbor]
                messages[(runtime.party, neighbor)] = session.build_message(
                    iteration, runtime.transcripts[neighbor]
                )
        delivered = self.network.exchange_window(messages, window, "meeting_points", iteration)
        for runtime in self.runtimes.values():
            for neighbor in runtime.neighbors():
                session = runtime.sessions[neighbor]
                transcript = runtime.transcripts[neighbor]
                outcome = session.process_reply(iteration, transcript, delivered[(neighbor, runtime.party)])
                self._apply_mp_outcome(iteration, runtime, neighbor, transcript, outcome)

    def _meeting_points_phase_packed(self, iteration: int) -> None:
        """Phase (i) on the packed hot path.

        Same exchange, carried as integer planes: each session's 4τ-bit hash
        message is one packed integer (every slot present), the transport's
        :meth:`~repro.network.transport.NoisyNetwork.exchange_window_packed`
        runs one ``corrupt_window_packed`` kernel per directed link, and the
        reply planes feed
        :meth:`~repro.core.meeting_points.MeetingPointsSession.process_reply_packed`
        directly — no per-slot symbol lists anywhere.  Bit-identical to the
        symbol-sequence phase above for every stock adversary
        (``tests/test_hashing_equivalence.py``/``tests/test_transport.py`` pin this).
        """
        window = 4 * self.hasher.output_bits
        full = (1 << window) - 1
        messages: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for runtime in self.runtimes.values():
            for neighbor in runtime.neighbors():
                session = runtime.sessions[neighbor]
                messages[(runtime.party, neighbor)] = (
                    session.build_message_packed(iteration, runtime.transcripts[neighbor]),
                    full,
                )
        delivered = self.network.exchange_window_packed(
            messages, window, "meeting_points", iteration
        )
        for runtime in self.runtimes.values():
            for neighbor in runtime.neighbors():
                session = runtime.sessions[neighbor]
                transcript = runtime.transcripts[neighbor]
                bits, present = delivered[(neighbor, runtime.party)]
                outcome = session.process_reply_packed(iteration, transcript, bits, present)
                self._apply_mp_outcome(iteration, runtime, neighbor, transcript, outcome)

    def _apply_mp_outcome(
        self,
        iteration: int,
        runtime: PartyRuntime,
        neighbor: int,
        transcript: LinkTranscript,
        outcome,
    ) -> None:
        """Shared per-link bookkeeping of one meeting-points outcome."""
        runtime.link_status[neighbor] = outcome.status
        if outcome.truncate_to is not None:
            transcript.truncate_to(outcome.truncate_to)
            self._counters["mp_truncations"] += 1
        if outcome.status == STATUS_MEETING_POINTS:
            self._counters["hash_mismatches"] += 1
        if outcome.full_match:
            # Ground-truth hash-collision detection (reporting only).
            other = self.runtimes[neighbor].transcripts[runtime.party]
            if not transcript.matches_prefix(other, max(len(transcript), len(other))):
                self._counters["hash_collisions"] += 1
                recorder = self._obs.recorder
                if recorder is not None:
                    recorder.emit(
                        "hash_collision",
                        iteration=iteration,
                        link=link_label(runtime.party, neighbor),
                        transcript_length=len(transcript),
                        other_length=len(other),
                    )

    # -------------------------------------------------- status flags (lines 6-13) --

    def _compute_status_flags(self) -> None:
        for runtime in self.runtimes.values():
            min_chunk = runtime.min_chunk()
            in_meeting_points = any(
                status == STATUS_MEETING_POINTS for status in runtime.link_status.values()
            )
            uneven = any(len(runtime.transcripts[v]) > min_chunk for v in runtime.neighbors())
            runtime.status_flag = 0 if (in_meeting_points or uneven) else 1

    # ------------------------------------------------- phase (ii): flag passing --

    def _use_merged_phases(self) -> bool:
        """Whole-phase merging is on and the adversary's contract permits it."""
        return self.merge_phases and self.adversary.slot_addressed

    def _flag_passing_phase(self, iteration: int) -> None:
        if not self.scheme.enable_flag_passing:
            for runtime in self.runtimes.values():
                runtime.net_correct = runtime.status_flag
            return
        if self._use_merged_phases():
            self._flag_passing_phase_merged(iteration)
            return

        depth = self.tree.depth
        up_value: Dict[int, int] = {
            party: runtime.status_flag for party, runtime in self.runtimes.items()
        }

        # Convergecast: deepest levels first; each node sends its aggregated flag
        # to its parent one round after all its children have spoken.  The
        # levels are genuinely sequential — each level's message is the AND of
        # what the previous (deeper) level *delivered* — so each level is one
        # width-1 window; sparse dispatch keeps the cost proportional to the
        # level's population instead of the whole link set.
        sparse = self.batch_rounds
        for level in range(depth, 1, -1):
            messages: Dict[Tuple[int, int], List[int]] = {}
            for node in self.graph.nodes:
                if self.tree.level[node] == level:
                    parent = self.tree.parent[node]
                    messages[(node, parent)] = [up_value[node]]
            delivered = self.network.exchange_window(
                messages, 1, "flag_passing", iteration, sparse=sparse
            )
            for node in self.graph.nodes:
                if self.tree.level[node] == level:
                    parent = self.tree.parent[node]
                    received = self._delivered_symbol(delivered, (node, parent))
                    up_value[parent] &= 1 if received == 1 else 0

        down_value: Dict[int, int] = {self.tree.root: up_value[self.tree.root]}

        # Broadcast: root first, then level by level.
        for level in range(1, depth):
            messages = {}
            for node in self.graph.nodes:
                if self.tree.level[node] == level and node in down_value:
                    for child in self.tree.children[node]:
                        messages[(node, child)] = [down_value[node]]
            delivered = self.network.exchange_window(
                messages, 1, "flag_passing", iteration, sparse=sparse
            )
            for node in self.graph.nodes:
                if self.tree.level[node] == level + 1:
                    parent = self.tree.parent[node]
                    received = self._delivered_symbol(delivered, (parent, node))
                    bit = 1 if received == 1 else 0
                    down_value[node] = bit & self.runtimes[node].status_flag

        for party, runtime in self.runtimes.items():
            if party == self.tree.root:
                runtime.net_correct = down_value[self.tree.root]
            else:
                runtime.net_correct = down_value.get(party, 0)

    def _flag_passing_phase_merged(self, iteration: int) -> None:
        """Phase (ii) under the slot-addressed contract: one merged dispatch.

        The convergecast/broadcast schedule is the lockstep body's, level for
        level, but each level's single round becomes one offset of a
        whole-phase :class:`~repro.network.transport.PhaseExchange`: every
        flag is evaluated against the adversary's pure schedule the moment it
        is computed (the levels stay data-dependent — each sends the AND of
        what the previous level *delivered*), and the transport accounts the
        whole phase in one pass at commit.
        """
        depth = self.tree.depth
        rounds = 2 * (depth - 1) if depth > 1 else 0
        phase = self.network.exchange_phase(rounds, "flag_passing", iteration)
        up_value: Dict[int, int] = {
            party: runtime.status_flag for party, runtime in self.runtimes.items()
        }
        offset = 0
        for level in range(depth, 1, -1):
            for node in self.graph.nodes:
                if self.tree.level[node] == level:
                    parent = self.tree.parent[node]
                    received = phase.send((node, parent), offset, up_value[node])
                    up_value[parent] &= 1 if received == 1 else 0
            offset += 1

        down_value: Dict[int, int] = {self.tree.root: up_value[self.tree.root]}
        for level in range(1, depth):
            for node in self.graph.nodes:
                if self.tree.level[node] == level and node in down_value:
                    for child in self.tree.children[node]:
                        received = phase.send((node, child), offset, down_value[node])
                        bit = 1 if received == 1 else 0
                        down_value[child] = bit & self.runtimes[child].status_flag
            offset += 1
        phase.commit()

        for party, runtime in self.runtimes.items():
            if party == self.tree.root:
                runtime.net_correct = down_value[self.tree.root]
            else:
                runtime.net_correct = down_value.get(party, 0)

    # ------------------------------------------------- phase (iii): simulation --

    def _simulation_phase(self, iteration: int) -> None:
        if self._use_merged_phases():
            self._simulation_phase_merged(iteration)
            return
        sparse = self.batch_rounds
        # Round 0: parties that should not simulate send ⊥ (encoded as a 1) to
        # every neighbour; everyone listens.
        bot_messages: Dict[Tuple[int, int], List[int]] = {}
        for runtime in self.runtimes.values():
            if runtime.net_correct == 0:
                for neighbor in runtime.neighbors():
                    bot_messages[(runtime.party, neighbor)] = [1]
        delivered = self.network.exchange_window(
            bot_messages, 1, "simulation", iteration, sparse=sparse
        )
        bot_from: Dict[int, Set[int]] = {party: set() for party in self.graph.nodes}
        for (sender, receiver), symbols in delivered.items():
            if symbols and symbols[0] == 1:
                bot_from[receiver].add(sender)

        # Which links each party simulates this phase, and at which chunk index.
        active: Dict[int, Dict[int, int]] = {}
        for runtime in self.runtimes.values():
            if runtime.net_correct != 1:
                active[runtime.party] = {}
                continue
            active[runtime.party] = {
                neighbor: len(runtime.transcripts[neighbor]) + 1
                for neighbor in runtime.neighbors()
                if neighbor not in bot_from[runtime.party]
            }

        # Per-party working state for the chunk being simulated.
        workspaces: Dict[int, Dict[str, object]] = {}
        for party, links in active.items():
            if not links:
                continue
            workspaces[party] = {
                "received_map": self.runtimes[party].build_received_map(),
                "sent": {neighbor: {} for neighbor in links},
                "recv": {neighbor: {} for neighbor in links},
            }

        window = self.chunked.max_chunk_rounds()
        if self.batch_rounds and not workspaces and not self.adversary.may_insert:
            # No party simulates anything this phase and the adversary cannot
            # insert: every one of the window's rounds is provably silent, so
            # the whole span collapses into one clock advancement (the
            # round-by-round schedule would advance the same clock one round
            # at a time and never touch the adversary).
            self.network.advance_rounds(window)
            self.network.idle_rounds_collapsed += window
            return
        for offset in range(window):
            messages: Dict[Tuple[int, int], List[int]] = {}
            for party, links in active.items():
                if not links:
                    continue
                workspace = workspaces[party]
                for neighbor, chunk_index in links.items():
                    chunk = self.chunked.chunk(chunk_index)
                    if offset >= chunk.num_rounds:
                        continue
                    round_index = chunk.round_indices[offset]
                    for sender, receiver in self.chunked.chunk_round_links(chunk_index)[offset]:
                        if sender == party and receiver == neighbor:
                            bit = self.runtimes[party].logic.send_bit(
                                round_index, neighbor, workspace["received_map"]
                            )
                            messages[(party, neighbor)] = [bit]
                            workspace["sent"][neighbor][round_index] = bit
            if not messages and not self.adversary.may_insert:
                # Nothing scheduled anywhere this round; skip the exchange but
                # keep the clock honest.
                self.network.advance_rounds(1)
                self.network.idle_rounds_collapsed += 1
                continue
            delivered = self.network.exchange_window(
                messages, 1, "simulation", iteration, sparse=sparse
            )
            for party, links in active.items():
                if not links:
                    continue
                workspace = workspaces[party]
                for neighbor, chunk_index in links.items():
                    chunk = self.chunked.chunk(chunk_index)
                    if offset >= chunk.num_rounds:
                        continue
                    round_index = chunk.round_indices[offset]
                    for sender, receiver in self.chunked.chunk_round_links(chunk_index)[offset]:
                        if sender == neighbor and receiver == party:
                            symbol = self._delivered_symbol(delivered, (neighbor, party))
                            workspace["recv"][neighbor][round_index] = symbol
                            workspace["received_map"][(round_index, neighbor)] = symbol_to_bit(symbol)

        # Append the freshly simulated chunk records.
        for party, links in active.items():
            if not links:
                continue
            workspace = workspaces[party]
            runtime = self.runtimes[party]
            for neighbor, chunk_index in links.items():
                view: List[Symbol] = []
                for slot in self.chunked.link_slots(chunk_index, party, neighbor):
                    if slot.sender == party:
                        view.append(workspace["sent"][neighbor].get(slot.round_index))
                    else:
                        view.append(workspace["recv"][neighbor].get(slot.round_index))
                record = ChunkRecord(
                    chunk_index=chunk_index,
                    link_view=tuple(view),
                    received_by_round=tuple(sorted(workspace["recv"][neighbor].items())),
                )
                runtime.transcripts[neighbor].append(record)

    def _simulation_phase_merged(self, iteration: int) -> None:
        """Phase (iii) under the slot-addressed contract: one merged dispatch.

        Offset 0 is the ⊥ round, offsets ``1 + r`` the chunk rounds.  Sends
        and reads go through the phase handle, so inserted symbols on links
        nobody sent on surface exactly as in the dense lockstep schedule, and
        rounds where nothing is scheduled (and nothing can be inserted) skip
        their read pass just like the lockstep clock-skip does.
        """
        window = self.chunked.max_chunk_rounds()
        may_insert = self.adversary.may_insert
        phase = self.network.exchange_phase(1 + window, "simulation", iteration)

        # Round 0: parties that should not simulate send ⊥ (encoded as a 1).
        for runtime in self.runtimes.values():
            if runtime.net_correct == 0:
                for neighbor in runtime.neighbors():
                    phase.send((runtime.party, neighbor), 0, 1)
        bot_from: Dict[int, Set[int]] = {party: set() for party in self.graph.nodes}
        for (sender, receiver), symbol in phase.delivered_map(0).items():
            if symbol == 1:
                bot_from[receiver].add(sender)

        active: Dict[int, Dict[int, int]] = {}
        for runtime in self.runtimes.values():
            if runtime.net_correct != 1:
                active[runtime.party] = {}
                continue
            active[runtime.party] = {
                neighbor: len(runtime.transcripts[neighbor]) + 1
                for neighbor in runtime.neighbors()
                if neighbor not in bot_from[runtime.party]
            }

        workspaces: Dict[int, Dict[str, object]] = {}
        for party, links in active.items():
            if not links:
                continue
            workspaces[party] = {
                "received_map": self.runtimes[party].build_received_map(),
                "sent": {neighbor: {} for neighbor in links},
                "recv": {neighbor: {} for neighbor in links},
            }

        for offset in range(window):
            sent_any = False
            for party, links in active.items():
                if not links:
                    continue
                workspace = workspaces[party]
                for neighbor, chunk_index in links.items():
                    chunk = self.chunked.chunk(chunk_index)
                    if offset >= chunk.num_rounds:
                        continue
                    round_index = chunk.round_indices[offset]
                    for sender, receiver in self.chunked.chunk_round_links(chunk_index)[offset]:
                        if sender == party and receiver == neighbor:
                            bit = self.runtimes[party].logic.send_bit(
                                round_index, neighbor, workspace["received_map"]
                            )
                            phase.send((party, neighbor), 1 + offset, bit)
                            workspace["sent"][neighbor][round_index] = bit
                            sent_any = True
            if not sent_any and not may_insert:
                # Nothing scheduled anywhere this round and nothing insertable:
                # the lockstep schedule skips the exchange (and its read pass).
                continue
            for party, links in active.items():
                if not links:
                    continue
                workspace = workspaces[party]
                for neighbor, chunk_index in links.items():
                    chunk = self.chunked.chunk(chunk_index)
                    if offset >= chunk.num_rounds:
                        continue
                    round_index = chunk.round_indices[offset]
                    for sender, receiver in self.chunked.chunk_round_links(chunk_index)[offset]:
                        if sender == neighbor and receiver == party:
                            symbol = phase.delivered((neighbor, party), 1 + offset)
                            workspace["recv"][neighbor][round_index] = symbol
                            workspace["received_map"][(round_index, neighbor)] = symbol_to_bit(symbol)
        phase.commit()

        for party, links in active.items():
            if not links:
                continue
            workspace = workspaces[party]
            runtime = self.runtimes[party]
            for neighbor, chunk_index in links.items():
                view: List[Symbol] = []
                for slot in self.chunked.link_slots(chunk_index, party, neighbor):
                    if slot.sender == party:
                        view.append(workspace["sent"][neighbor].get(slot.round_index))
                    else:
                        view.append(workspace["recv"][neighbor].get(slot.round_index))
                record = ChunkRecord(
                    chunk_index=chunk_index,
                    link_view=tuple(view),
                    received_by_round=tuple(sorted(workspace["recv"][neighbor].items())),
                )
                runtime.transcripts[neighbor].append(record)

    # --------------------------------------------------- phase (iv): rewind --

    def _rewind_phase(self, iteration: int) -> None:
        if self._use_merged_phases():
            self._rewind_phase_merged(iteration)
            return
        already: Dict[int, Dict[int, bool]] = {
            party: {neighbor: False for neighbor in runtime.neighbors()}
            for party, runtime in self.runtimes.items()
        }
        rounds = self.scheme.rewind_round_count(self.graph)
        sparse = self.batch_rounds
        recorder = self._obs.recorder
        for round_index in range(rounds):
            messages: Dict[Tuple[int, int], List[int]] = {}
            for runtime in self.runtimes.values():
                party = runtime.party
                min_chunk = runtime.min_chunk()
                for neighbor in runtime.neighbors():
                    if runtime.link_status[neighbor] == STATUS_MEETING_POINTS:
                        continue
                    if already[party][neighbor]:
                        continue
                    if len(runtime.transcripts[neighbor]) > min_chunk:
                        messages[(party, neighbor)] = [1]
                        runtime.transcripts[neighbor].truncate_last(1)
                        already[party][neighbor] = True
                        self._counters["rewinds_sent"] += 1
                        if recorder is not None:
                            recorder.emit(
                                "rewind",
                                iteration=iteration,
                                link=link_label(party, neighbor),
                                role="sender",
                                depth=len(runtime.transcripts[neighbor]),
                            )
            if not messages and not self.adversary.may_insert:
                if self.batch_rounds:
                    # Quiescent tail: with nothing sent and nothing insertable,
                    # nothing was delivered, so the state feeding the next
                    # round's message computation (transcripts, `already`
                    # flags) is unchanged — every remaining round is provably
                    # identical to this one.  Advance the clock over the whole
                    # tail in one call instead of one empty round at a time.
                    self.network.advance_rounds(rounds - round_index)
                    self.network.idle_rounds_collapsed += rounds - round_index
                    return
                self.network.advance_rounds(1)
                self.network.idle_rounds_collapsed += 1
                continue
            delivered = self.network.exchange_window(
                messages, 1, "rewind", iteration, sparse=sparse
            )
            for runtime in self.runtimes.values():
                party = runtime.party
                for neighbor in runtime.neighbors():
                    if self._delivered_symbol(delivered, (neighbor, party)) != 1:
                        continue
                    if runtime.link_status[neighbor] == STATUS_MEETING_POINTS:
                        continue
                    if already[party][neighbor]:
                        continue
                    runtime.transcripts[neighbor].truncate_last(1)
                    already[party][neighbor] = True
                    if recorder is not None:
                        recorder.emit(
                            "rewind",
                            iteration=iteration,
                            link=link_label(party, neighbor),
                            role="receiver",
                            depth=len(runtime.transcripts[neighbor]),
                        )

    def _rewind_phase_merged(self, iteration: int) -> None:
        """Phase (iv) under the slot-addressed contract: one merged dispatch.

        The rounds stay data-dependent — each round's rewind requests depend
        on the transcripts as truncated by the previous round's deliveries —
        but every slot is evaluated through the phase handle the moment it is
        sent.  A round with nothing sent under a non-inserting adversary
        proves the rest of the phase quiescent (nothing delivered, state
        unchanged), so the loop stops early; commit still advances the full
        phase clock, like the lockstep quiescent-tail collapse.
        """
        already: Dict[int, Dict[int, bool]] = {
            party: {neighbor: False for neighbor in runtime.neighbors()}
            for party, runtime in self.runtimes.items()
        }
        rounds = self.scheme.rewind_round_count(self.graph)
        may_insert = self.adversary.may_insert
        recorder = self._obs.recorder
        phase = self.network.exchange_phase(rounds, "rewind", iteration)
        for round_index in range(rounds):
            sent_any = False
            for runtime in self.runtimes.values():
                party = runtime.party
                min_chunk = runtime.min_chunk()
                for neighbor in runtime.neighbors():
                    if runtime.link_status[neighbor] == STATUS_MEETING_POINTS:
                        continue
                    if already[party][neighbor]:
                        continue
                    if len(runtime.transcripts[neighbor]) > min_chunk:
                        phase.send((party, neighbor), round_index, 1)
                        runtime.transcripts[neighbor].truncate_last(1)
                        already[party][neighbor] = True
                        self._counters["rewinds_sent"] += 1
                        sent_any = True
                        if recorder is not None:
                            recorder.emit(
                                "rewind",
                                iteration=iteration,
                                link=link_label(party, neighbor),
                                role="sender",
                                depth=len(runtime.transcripts[neighbor]),
                            )
            if not sent_any and not may_insert:
                break
            for runtime in self.runtimes.values():
                party = runtime.party
                for neighbor in runtime.neighbors():
                    if phase.delivered((neighbor, party), round_index) != 1:
                        continue
                    if runtime.link_status[neighbor] == STATUS_MEETING_POINTS:
                        continue
                    if already[party][neighbor]:
                        continue
                    runtime.transcripts[neighbor].truncate_last(1)
                    already[party][neighbor] = True
                    if recorder is not None:
                        recorder.emit(
                            "rewind",
                            iteration=iteration,
                            link=link_label(party, neighbor),
                            role="receiver",
                            depth=len(runtime.transcripts[neighbor]),
                        )
        phase.commit()

    # --------------------------------------------------------- bookkeeping --

    @staticmethod
    def _delivered_symbol(
        delivered: Dict[Tuple[int, int], List[Symbol]], link: Tuple[int, int]
    ) -> Symbol:
        """First delivered symbol on ``link``; a link a sparse exchange omitted
        from the result carried pure silence."""
        window = delivered.get(link)
        return window[0] if window is not None else None

    def _transcript(self, owner: int, neighbor: int) -> LinkTranscript:
        return self.runtimes[owner].transcripts[neighbor]

    def _all_transcripts(self) -> Dict[Tuple[int, int], LinkTranscript]:
        out: Dict[Tuple[int, int], LinkTranscript] = {}
        for runtime in self.runtimes.values():
            for neighbor, transcript in runtime.transcripts.items():
                out[(runtime.party, neighbor)] = transcript
        return out

    def _simulation_complete(self) -> bool:
        """True when every link's facing transcripts agree on all real chunks."""
        target = self.chunked.num_real_chunks
        for u, v in self.graph.edges:
            mine = self._transcript(u, v)
            theirs = self._transcript(v, u)
            if len(mine) < target or len(theirs) < target:
                return False
            if not mine.matches_prefix(theirs, target):
                return False
        return True

    def _extract_outputs(self) -> Dict[int, object]:
        outputs: Dict[int, object] = {}
        max_chunk = self.chunked.num_real_chunks
        for party, runtime in self.runtimes.items():
            received: Dict[Tuple[int, int], int] = {}
            for transcript in runtime.transcripts.values():
                received.update(transcript.received_map(max_chunk_index=max_chunk))
            outputs[party] = runtime.logic.compute_output(received)
        return outputs

    def _build_metrics(
        self,
        reference_cc: int,
        outputs: Dict[int, object],
        reference_outputs: Dict[int, object],
        iterations_run: int,
    ) -> RunMetrics:
        stats = self.network.stats
        success = all(outputs.get(party) == value for party, value in reference_outputs.items())
        return RunMetrics(
            scheme=self.scheme.name,
            success=success,
            protocol_communication=reference_cc,
            simulation_communication=stats.transmissions,
            corruptions=stats.corruptions,
            noise_fraction=stats.noise_fraction(),
            iterations_run=iterations_run,
            iterations_budget=self.iterations_budget,
            communication_by_phase=dict(stats.transmissions_by_phase),
            corruptions_by_phase=dict(stats.corruptions_by_phase),
            meeting_point_truncations=self._counters["mp_truncations"],
            rewinds_sent=self._counters["rewinds_sent"],
            hash_mismatches_detected=self._counters["hash_mismatches"],
            hash_collisions_observed=self._counters["hash_collisions"],
            randomness_exchange_failures=sum(
                1 for agreed in self._randomness_agreed.values() if not agreed
            ),
        )


def simulate(
    protocol: Protocol,
    scheme: Optional[SchemeParameters] = None,
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    config: Optional[EngineConfig] = None,
) -> SimulationResult:
    """Convenience wrapper: build a simulator and run it once."""
    return InteractiveCodingSimulator(
        protocol, scheme=scheme, adversary=adversary, seed=seed, config=config
    ).run()
