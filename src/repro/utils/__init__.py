"""Shared low-level utilities (bit manipulation, reproducible randomness)."""

from repro.utils.bitstring import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    longest_common_prefix_length,
    parity,
    symbol_to_bit,
    symbols_to_bits,
    xor_bits,
)
from repro.utils.rng import fork, fork_seed, make_rng, random_bits, random_bitstring_int, stable_label_hash

__all__ = [
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "hamming_distance",
    "int_to_bits",
    "longest_common_prefix_length",
    "parity",
    "symbol_to_bit",
    "symbols_to_bits",
    "xor_bits",
    "fork",
    "fork_seed",
    "make_rng",
    "random_bits",
    "random_bitstring_int",
    "stable_label_hash",
]
