"""Bit-string helpers used across the library.

The interactive-coding machinery manipulates three kinds of low-level data:

* plain bit sequences (``list[int]`` with values in ``{0, 1}``),
* symbol sequences over the channel alphabet ``{0, 1, None}`` where ``None``
  stands for the "no message" symbol ``*`` of the paper,
* compact integer encodings of bit sequences (used by the inner-product hash
  and by the GF(2^r) arithmetic behind the small-bias generator).

All helpers are pure functions; no module-level mutable state.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

Bit = int
Symbol = Optional[int]  # 0, 1 or None (the "*" / no-message symbol)


def bits_to_int(bits: Sequence[Bit]) -> int:
    """Pack a bit sequence into an integer (bit 0 of the sequence is the LSB).

    >>> bits_to_int([1, 0, 1])
    5
    """
    value = 0
    for index, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit at index {index} is {bit!r}, expected 0 or 1")
        if bit:
            value |= 1 << index
    return value


def int_to_bits(value: int, width: int) -> List[Bit]:
    """Unpack ``value`` into ``width`` bits, LSB first.

    >>> int_to_bits(5, 4)
    [1, 0, 1, 0]
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    return [(value >> i) & 1 for i in range(width)]


def bytes_to_bits(data: bytes) -> List[Bit]:
    """Expand ``data`` into bits, LSB-first within each byte."""
    bits: List[Bit] = []
    for byte in data:
        for i in range(8):
            bits.append((byte >> i) & 1)
    return bits


def bits_to_bytes(bits: Sequence[Bit]) -> bytes:
    """Pack bits (LSB-first within each byte) into bytes, zero-padding the tail."""
    out = bytearray()
    for start in range(0, len(bits), 8):
        byte = 0
        for offset, bit in enumerate(bits[start:start + 8]):
            if bit:
                byte |= 1 << offset
        out.append(byte)
    return bytes(out)


def parity(value: int) -> Bit:
    """Parity (XOR of all bits) of a non-negative integer."""
    return value.bit_count() & 1


def hamming_distance(a: Sequence[Bit], b: Sequence[Bit]) -> int:
    """Number of positions where ``a`` and ``b`` differ.

    Sequences must have equal length.
    """
    if len(a) != len(b):
        raise ValueError("sequences must have equal length")
    return sum(1 for x, y in zip(a, b) if x != y)


def xor_bits(a: Sequence[Bit], b: Sequence[Bit]) -> List[Bit]:
    """Element-wise XOR of two equal-length bit sequences."""
    if len(a) != len(b):
        raise ValueError("sequences must have equal length")
    return [x ^ y for x, y in zip(a, b)]


def symbol_to_bit(symbol: Symbol, erasure_fill: Bit = 0) -> Bit:
    """Convert one channel symbol to a bit, mapping erasure (``None``) to a filler.

    The single-symbol companion of :func:`symbols_to_bits`, used wherever a
    receiver must feed a possibly-deleted slot into protocol logic.
    """
    return erasure_fill if symbol is None else int(symbol)


def symbols_to_bits(symbols: Iterable[Symbol], erasure_fill: Bit = 0) -> List[Bit]:
    """Convert channel symbols to bits, mapping the erasure symbol to a filler.

    The coding scheme records ``None`` (the paper's ``*``) whenever a deletion
    left a hole in a transcript.  When such a transcript is replayed into the
    underlying protocol the hole must be filled with *some* bit; the filler is
    semantically arbitrary because the surrounding machinery will detect and
    rewind the inconsistency.
    """
    return [erasure_fill if s is None else int(s) for s in symbols]


def longest_common_prefix_length(a: Sequence, b: Sequence) -> int:
    """Length of the longest common prefix of two sequences."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def pack_symbols(symbols: Sequence[Symbol]) -> Tuple[int, int]:
    """Pack channel symbols into two bit planes ``(bits, present)``.

    Slot ``i`` carries a symbol iff bit ``i`` of ``present`` is set; its value
    is then bit ``i`` of ``bits``.  Silence (``None``, the paper's ``*``) is a
    cleared ``present`` bit.  The representation maintains the invariant
    ``bits & ~present == 0``, which is what makes the O(1) popcount formulas
    of the packed transport path (substitutions, deletions, insertions per
    window) well defined.

    >>> pack_symbols([1, None, 0, 1])
    (9, 13)
    """
    bits = 0
    present = 0
    for index, symbol in enumerate(symbols):
        if symbol is None:
            continue
        if symbol == 1:
            bits |= 1 << index
            present |= 1 << index
        elif symbol == 0:
            present |= 1 << index
        else:
            raise ValueError(f"invalid channel symbol {symbol!r} at index {index}")
    return bits, present


def unpack_symbols(bits: int, present: int, count: int) -> List[Symbol]:
    """Inverse of :func:`pack_symbols`: expand ``count`` slots back to symbols.

    >>> unpack_symbols(9, 13, 4)
    [1, None, 0, 1]
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if bits < 0 or present < 0:
        raise ValueError("bit planes must be non-negative")
    if present >> count:
        raise ValueError(f"present plane has bits beyond the {count}-slot window")
    if bits & ~present:
        raise ValueError("bits plane must be a subset of the present plane")
    return [(bits >> i) & 1 if (present >> i) & 1 else None for i in range(count)]
