"""Deterministic randomness utilities.

Every stochastic component of the library (party-local coins, the common
random string, adversary strategies, workload generators) draws from a
``random.Random`` instance that is derived from an explicit integer seed, so
that every experiment in the repository is exactly reproducible.

``fork`` derives independent child generators from a parent seed and a string
label; the derivation is a stable hash of the label, *not* Python's salted
``hash``, so forks are stable across interpreter runs.
"""

from __future__ import annotations

import hashlib
import random
from typing import List


#: Multiplier / mask of the child-seed derivation.  Exposed so callers that
#: compute label hashes incrementally (e.g. the batched CRS seed source) can
#: derive children bit-identical to :func:`fork` / :func:`fork_seed`.
FORK_MULTIPLIER = 0x9E3779B97F4A7C15
FORK_SEED_MASK = (1 << 63) - 1


def stable_label_hash(label: str) -> int:
    """A 64-bit integer derived deterministically from a text label."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: int) -> random.Random:
    """Create a ``random.Random`` from an integer seed."""
    return random.Random(seed)


_M64 = (1 << 64) - 1


def slot_seed(seed: int, round_index: int, sender: int, receiver: int) -> int:
    """A child seed derived purely from one channel slot's coordinates.

    Slot-addressed adversaries draw their randomness from a generator seeded
    with this value instead of a sequential stream, so every coin they toss
    is a pure function of ``(seed, round, link)`` — independent of the order
    in which slots are evaluated and of how they are grouped into windows.
    The derivation chains a splitmix64-style finalizer over the coordinates;
    it is stable across interpreter runs (no salted hashing).
    """
    x = (seed ^ FORK_MULTIPLIER) & _M64
    for part in (round_index, sender, receiver):
        x = (x + part + 0x632BE59BD9B4E019) & _M64
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & _M64
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & _M64
        x ^= x >> 31
    return x


def slot_rng(seed: int, round_index: int, sender: int, receiver: int) -> random.Random:
    """A fresh generator for one channel slot (see :func:`slot_seed`)."""
    return random.Random(slot_seed(seed, round_index, sender, receiver))


def fork(seed: int, label: str) -> random.Random:
    """Derive an independent generator from ``seed`` and a textual ``label``."""
    return random.Random((seed * FORK_MULTIPLIER + stable_label_hash(label)) & FORK_SEED_MASK)


def fork_seed(seed: int, label: str) -> int:
    """Derive a child integer seed (useful when an API wants a seed, not an RNG)."""
    return (seed * FORK_MULTIPLIER + stable_label_hash(label)) & FORK_SEED_MASK


def random_bits(rng: random.Random, count: int) -> List[int]:
    """Draw ``count`` independent uniform bits."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [rng.getrandbits(1) for _ in range(count)]


def random_bitstring_int(rng: random.Random, count: int) -> int:
    """Draw ``count`` uniform bits packed into an integer."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return 0
    return rng.getrandbits(count)
