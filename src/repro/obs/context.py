"""The ambient observability scope (the obs mirror of ``use_runtime``).

Instrumented code never takes a registry or tracer argument — it asks
:func:`get_obs` for the active :class:`ObsContext` and does nothing when the
context is disabled.  That keeps instrumentation fingerprint-invisible (no
constructor signatures change, no scheme fields appear, ``TrialKey`` digests
are untouched) and keeps the disabled cost to one attribute read.

Unlike the runtime context, the override is **thread-local** with a
process-wide default underneath: a ``repro worker serve`` daemon runs the
coordinator's chunks on connection threads, and a per-thread
:func:`use_obs` lets each chunk record into its own tracer without two
threads (or an in-process test coordinator) trampling each other's scope.
``ProcessPoolBackend`` worker *processes* do not inherit the context at all —
trials executed there run uninstrumented, which the architecture docs call
out; the serial and distributed backends observe everything.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import Tracer

#: "Argument not provided" sentinel (same convention as the runtime context's).
UNSET = object()
_UNSET = UNSET


@dataclass(frozen=True)
class ObsContext:
    """What instrumented code reports into; all fields default to off."""

    metrics: Optional[MetricsRegistry] = None
    tracer: Optional[Tracer] = None
    recorder: Optional[FlightRecorder] = None

    @property
    def enabled(self) -> bool:
        return self.metrics is not None or self.tracer is not None or self.recorder is not None


#: The shared disabled context — the process-wide default until configured.
DISABLED = ObsContext()

_default = DISABLED
_local = threading.local()


def get_obs() -> ObsContext:
    """The active observability context (thread override, else the default)."""
    return getattr(_local, "active", None) or _default


def set_default_obs(metrics=_UNSET, tracer=_UNSET, recorder=_UNSET) -> ObsContext:
    """Replace fields of the process-wide default context.

    Unset arguments keep the current value; pass ``metrics=None`` /
    ``tracer=None`` / ``recorder=None`` explicitly to switch a field off.
    """
    global _default
    _default = ObsContext(
        metrics=_default.metrics if metrics is _UNSET else metrics,
        tracer=_default.tracer if tracer is _UNSET else tracer,
        recorder=_default.recorder if recorder is _UNSET else recorder,
    )
    return _default


@contextmanager
def use_obs(metrics=_UNSET, tracer=_UNSET, recorder=_UNSET) -> Iterator[ObsContext]:
    """Install an observability context for this thread (restored on exit).

    Unset arguments inherit from whatever :func:`get_obs` currently resolves
    to, so nesting composes: a tracer installed at the CLI stays visible
    inside a narrower ``use_obs(metrics=...)`` block.
    """
    current = get_obs()
    context = ObsContext(
        metrics=current.metrics if metrics is _UNSET else metrics,
        tracer=current.tracer if tracer is _UNSET else tracer,
        recorder=current.recorder if recorder is _UNSET else recorder,
    )
    previous = getattr(_local, "active", None)
    _local.active = context
    try:
        yield context
    finally:
        _local.active = previous
