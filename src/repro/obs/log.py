"""Structured logging for runtime and cluster diagnostics.

Every operational message ("worker declared dead", "cluster degraded to 1/2
workers") goes through a :class:`StructuredLogger`: an *event name* plus
key=value fields, rendered either human-readably::

    12:04:11 WARNING repro.distributed: worker_dead worker=host:9001 chunk=3

or — under ``--log-json`` — as one JSON object per line, so a log aggregator
ingests the fields without regexes::

    {"ts": "…", "level": "warning", "logger": "repro.distributed",
     "event": "worker_dead", "worker": "host:9001", "chunk": 3}

Built on stdlib :mod:`logging` (namespace ``repro.*``): unconfigured, events
at WARNING and above still reach stderr through logging's last-resort
handler, so a degraded cluster is never silent; :func:`configure` (the
``--log-level`` / ``--log-json`` CLI flags) installs an explicit handler with
the chosen level and format.  User-facing *results* (tables, reports) stay on
plain ``print`` — this module is for diagnostics only.
"""

from __future__ import annotations

import json
import logging
import sys
from datetime import datetime, timezone
from typing import Any, Optional, TextIO

_ROOT_LOGGER = "repro"
_FIELDS_ATTR = "repro_fields"
_EVENT_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class _HumanFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        fields = getattr(record, _FIELDS_ATTR, None) or {}
        suffix = "".join(f" {key}={value}" for key, value in fields.items())
        timestamp = datetime.fromtimestamp(record.created).strftime("%H:%M:%S")
        return f"{timestamp} {record.levelname} {record.name}: {record.getMessage()}{suffix}"


class _JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": datetime.fromtimestamp(record.created, timezone.utc).isoformat(),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            payload.update(fields)
        return json.dumps(payload, sort_keys=True, default=str)


class StructuredLogger:
    """Thin wrapper binding event-style calls onto a stdlib logger."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def event(self, level: str, event: str, **fields: Any) -> None:
        numeric = _EVENT_LEVELS.get(level, logging.INFO)
        if self._logger.isEnabledFor(numeric):
            self._logger.log(numeric, event, extra={_FIELDS_ATTR: fields})

    def debug(self, event: str, **fields: Any) -> None:
        self.event("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.event("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.event("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.event("error", event, **fields)


def get_logger(name: str) -> StructuredLogger:
    """The structured logger for one subsystem (``distributed``, ``worker``,
    …), namespaced under ``repro.``."""
    qualified = name if name.startswith(_ROOT_LOGGER) else f"{_ROOT_LOGGER}.{name}"
    return StructuredLogger(logging.getLogger(qualified))


def configure(
    level: str = "warning",
    json_output: bool = False,
    stream: Optional[TextIO] = None,
) -> None:
    """Install (or replace) the handler on the ``repro`` logger tree.

    Idempotent per process: repeated calls swap the handler rather than
    stacking duplicates, so CLI commands can call it unconditionally.
    """
    if level not in _EVENT_LEVELS:
        raise ValueError(f"unknown log level {level!r} (choose from {sorted(_EVENT_LEVELS)})")
    root = logging.getLogger(_ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_JsonFormatter() if json_output else _HumanFormatter())
    root.addHandler(handler)
    root.setLevel(_EVENT_LEVELS[level])
    root.propagate = False
