"""The span tracer: lightweight, monotonic-clock timed, cluster-coherent.

A *span* is one named, timed region of work — ``trial``, ``phase``,
``iteration``, ``dispatch_chunk``, ``cache_probe``, ``trial_set`` — recorded
as a plain dict so it serialises to JSON without a schema layer:

    {"name": "phase", "trace_id": "…", "span_id": "…", "parent_id": "…",
     "worker": "host:port", "start": <unix seconds>, "duration": <seconds>,
     "attrs": {"phase": "meeting_points", "iteration": 3}}

Durations come from ``time.perf_counter()`` (monotonic — a wall-clock step
cannot stretch a span); ``start`` is wall-clock so spans from different hosts
of a distributed sweep order sensibly in one tree.  Span and trace ids are
drawn from :func:`os.urandom`, **never** from :mod:`random` — the simulator's
RNG streams must be bit-identical with tracing on and off, so the tracer may
not touch any seeded generator.

Sampling: ``sample_every=N`` records every N-th trial (the first of each N).
Suppression is thread-local — an unsampled trial suppresses the phase and
iteration spans opened under it without a conditional at every call site,
and without affecting trials running concurrently on other threads.

Cross-host propagation: the coordinator sends ``(trace_id, parent span id,
sample_every)`` inside the ``execute`` wire frame; the worker runs its chunk
under a local ``Tracer`` carrying the same trace id and returns the finished
span dicts in the ``result`` frame, which the coordinator :meth:`adopt`\\ s.
One distributed sweep therefore yields one coherent trace.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional


def new_id() -> str:
    """A fresh 64-bit hex id from OS entropy (RNG-stream neutral)."""
    return os.urandom(8).hex()


class Span:
    """Handle for an open span; ``attrs`` may be extended while it is open."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_start_wall", "_start_perf")

    def __init__(self, name: str, span_id: str, parent_id: Optional[str], attrs: Dict[str, Any]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span while it is running."""
        self.attrs.update(attrs)


class _SpanContext:
    """``with tracer.span(...)`` context manager; yields the :class:`Span`
    (or ``None`` when the tracer is suppressing an unsampled trial)."""

    __slots__ = ("_tracer", "_name", "_parent_id", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, parent_id: Optional[str], attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._parent_id = parent_id
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Optional[Span]:
        self._span = self._tracer._open(self._name, self._parent_id, self._attrs)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        if self._span is not None:
            self._tracer._close(self._span)


class _SuppressContext:
    """Context manager that suppresses span recording on this thread
    (an unsampled trial and everything opened under it)."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer
        self._previous = False

    def __enter__(self) -> None:
        state = self._tracer._state()
        self._previous = state.suppressed
        state.suppressed = True
        return None

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._state().suppressed = self._previous


class Tracer:
    """Collects spans for one trace; safe to share across threads."""

    def __init__(
        self,
        sample_every: int = 1,
        trace_id: Optional[str] = None,
        worker: Optional[str] = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.trace_id = trace_id or new_id()
        self.sample_every = sample_every
        #: Recorded into every span; "local" for in-process execution, the
        #: worker id on ``repro worker serve`` daemons.
        self.worker = worker or "local"
        self._lock = threading.Lock()
        self._finished: List[Dict[str, Any]] = []
        self._trials_seen = 0
        self._local = threading.local()

    # -- internals ---------------------------------------------------------

    def _state(self) -> threading.local:
        local = self._local
        if not hasattr(local, "stack"):
            local.stack = []
            local.suppressed = False
        return local

    def _open(self, name: str, parent_id: Optional[str], attrs: Dict[str, Any]) -> Optional[Span]:
        state = self._state()
        if state.suppressed:
            return None
        if parent_id is None and state.stack:
            parent_id = state.stack[-1].span_id
        span = Span(name, new_id(), parent_id, attrs)
        state.stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        duration = time.perf_counter() - span._start_perf
        state = self._state()
        if state.stack and state.stack[-1] is span:
            state.stack.pop()
        else:  # pragma: no cover - misnested exits; drop rather than corrupt
            state.stack = [entry for entry in state.stack if entry is not span]
        payload = {
            "name": span.name,
            "trace_id": self.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "worker": self.worker,
            "start": span._start_wall,
            "duration": duration,
            "attrs": span.attrs,
        }
        with self._lock:
            self._finished.append(payload)

    # -- public API --------------------------------------------------------

    def span(self, name: str, parent_id: Optional[str] = None, **attrs: Any) -> _SpanContext:
        """Open a span for the duration of a ``with`` block.  The parent is
        the innermost open span on this thread unless given explicitly."""
        return _SpanContext(self, name, parent_id, attrs)

    def trial(self, parent_id: Optional[str] = None, **attrs: Any):
        """Open a ``trial`` span — or, for unsampled trials, suppress all
        span recording on this thread for the block."""
        with self._lock:
            index = self._trials_seen
            self._trials_seen += 1
        if index % self.sample_every:
            return _SuppressContext(self)
        return _SpanContext(self, "trial", parent_id, attrs)

    def current_span_id(self) -> Optional[str]:
        """The innermost open span id on this thread, if any."""
        stack = self._state().stack
        return stack[-1].span_id if stack else None

    def adopt(self, spans: Iterable[Dict[str, Any]]) -> int:
        """Merge finished span dicts from another tracer (a remote worker's),
        rewriting their trace id onto this trace; returns how many."""
        adopted = 0
        with self._lock:
            for span in spans:
                if not isinstance(span, dict):
                    continue
                entry = dict(span)
                entry["trace_id"] = self.trace_id
                self._finished.append(entry)
                adopted += 1
        return adopted

    def drain(self) -> List[Dict[str, Any]]:
        """All finished spans so far, cleared from the tracer — so one tracer
        shared across an experiment grid yields one trace record per cell."""
        with self._lock:
            finished, self._finished = self._finished, []
        return finished
