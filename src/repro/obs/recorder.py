"""The protocol flight recorder: bounded, opt-in, fingerprint-invisible.

A :class:`FlightRecorder` captures *protocol events* — the mechanisms the
paper's analysis names — while a trial runs:

* ``corruption`` — one event per (round, link) slot the adversary changed,
  classified as substitution / deletion / insertion (the transport emits
  these on all three transmission paths: per-slot, batched window, merged
  phase);
* ``hash_collision`` — the meeting-points digest matched but the underlying
  transcripts diverge (the engine's ground-truth check);
* ``meeting_point`` — per-link meeting-point decisions: full matches,
  ``k``-disagreement resets, end-of-scale truncations, rewind votes;
* ``rewind`` — transcript truncations, on the sender and receiver side;
* ``potential`` — the per-iteration Φ snapshot (G*, H*, B*, Φ) computed via
  ``repro.analysis.potential``.

Events go into a **ring buffer** (``capacity`` events, default 4096): a
pathological trial cannot grow memory without bound — the oldest events fall
off and ``events_dropped`` counts them.  When a trial finishes, the recorder
folds the ring into a per-trial **dump**: failing trials keep the full event
timeline, successful trials keep only a per-kind event count summary (cheap).
``drain()`` hands the accumulated dumps over for persistence — the harness
stores them on the trial-set record (``forensics``) and the distributed
worker ships them back on the ``result`` wire frame for the coordinator to
``adopt()``, so coordinator-side forensics cover remote workers.

Everything in a dump is JSON-pure from the moment it is recorded (links are
``"u->v"`` strings, symbols are ``0 / 1 / null``) so a dump that crossed the
distributed wire is byte-identical to one recorded in process.  No
timestamps, no ids, no :mod:`random` draws: the recorder is bit-identity
neutral (it only ever *reads* protocol state) and its output is a pure
function of the trial spec, whatever backend executed it.

Like the rest of ``repro.obs`` this module is stdlib-only and imports
nothing from the rest of ``repro``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

#: Default ring capacity (events per trial kept in memory).
DEFAULT_CAPACITY = 4096

#: Event kinds a recorder emits; ``event_counts`` keys are drawn from these.
EVENT_KINDS = (
    "corruption",
    "hash_collision",
    "meeting_point",
    "rewind",
    "potential",
)


def link_label(sender: Any, receiver: Any) -> str:
    """Canonical JSON-pure label for a directed link."""
    return f"{sender}->{receiver}"


def classify_slot(sent: Optional[int], received: Optional[int]) -> Optional[str]:
    """Classify one delivered slot against what was sent.

    Returns ``None`` for clean delivery, else ``"insertion"`` (silence turned
    into a symbol), ``"deletion"`` (a symbol turned into silence) or
    ``"substitution"`` — mirroring the transport's own accounting.
    """
    if sent == received:
        return None
    if sent is None:
        return "insertion"
    if received is None:
        return "deletion"
    return "substitution"


class FlightRecorder:
    """Bounded per-trial protocol event recorder.

    One recorder instance serves a whole trial *sequence* (a chunk, a cell, a
    sweep): :meth:`begin_trial` resets the ring for the next trial and
    :meth:`finish_trial` folds it into a dump.  Event emission is
    single-threaded by construction (one trial runs on one thread); only the
    dump list — which the distributed coordinator appends to from driver
    threads via :meth:`adopt` — is lock-guarded.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events_total = 0
        self.events_dropped = 0
        self._events: deque = deque(maxlen=capacity)
        self._counts: Dict[str, int] = {}
        self._trial: Optional[Dict[str, Any]] = None
        self._lock = threading.Lock()
        self._dumps: List[Dict[str, Any]] = []

    # -- event emission (hot path; call sites guard on ``recorder is None``) --

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one protocol event into the current trial's ring."""
        event = {"kind": kind}
        event.update(fields)
        if len(self._events) == self.capacity:
            self.events_dropped += 1
        self._events.append(event)
        self.events_total += 1
        self._counts[kind] = self._counts.get(kind, 0) + 1

    def record_window(
        self,
        link: str,
        phase: str,
        iteration: Optional[int],
        base_round: int,
        sent: Iterable[Optional[int]],
        delivered: Iterable[Optional[int]],
    ) -> None:
        """Walk one delivered window and emit a ``corruption`` event per
        changed slot (round = ``base_round`` + offset, matching the
        transport's own per-slot accounting on every transmission path)."""
        for offset, (sent_symbol, received) in enumerate(zip(sent, delivered)):
            corruption = classify_slot(sent_symbol, received)
            if corruption is not None:
                self.emit(
                    "corruption",
                    round=base_round + offset,
                    link=link,
                    corruption=corruption,
                    phase=phase,
                    iteration=iteration,
                    sent=sent_symbol,
                    received=received,
                )

    # -- trial lifecycle ----------------------------------------------------

    def begin_trial(self, **fields: Any) -> None:
        """Start a fresh trial scope (identified by JSON-pure ``fields``)."""
        self._events.clear()
        self._counts = {}
        self._trial = dict(fields)

    def finish_trial(self, *, success: bool, **summary: Any) -> Dict[str, Any]:
        """Close the current trial scope and fold the ring into a dump.

        Failing trials keep the full event timeline; successful trials keep
        only the per-kind counts.  The dump is appended to the drain queue
        and also returned.
        """
        trial = dict(self._trial or {})
        trial["success"] = success
        trial.update(summary)
        dump = {
            "trial": trial,
            "event_counts": dict(self._counts),
            "events_recorded": sum(self._counts.values()),
            "events_kept": len(self._events),
            "events": [] if success else list(self._events),
        }
        self._events.clear()
        self._counts = {}
        self._trial = None
        with self._lock:
            self._dumps.append(dump)
        return dump

    # -- collection ---------------------------------------------------------

    def adopt(self, dumps: Iterable[Dict[str, Any]]) -> int:
        """Merge finished dumps from another recorder (a remote worker's);
        returns how many were adopted."""
        adopted = 0
        with self._lock:
            for dump in dumps:
                if not isinstance(dump, dict):
                    continue
                self._dumps.append(dump)
                adopted += 1
        return adopted

    def drain(self) -> List[Dict[str, Any]]:
        """All finished trial dumps so far, cleared from the recorder."""
        with self._lock:
            dumps, self._dumps = self._dumps, []
        return dumps
