"""The metrics registry: counters, gauges and histograms with interned names.

A :class:`MetricsRegistry` is a plain in-process accumulator — no exporter,
no background thread, no wire format beyond :meth:`snapshot`.  Three metric
families exist:

* **counters** — monotonically increasing integers (``engine.rounds_total``,
  ``cache.hits``).  Everything the simulator counts is deterministic per
  seed, so counter values diff exactly across runs — which is what lets
  ``repro runs diff --kind metrics`` gate CI on *causal* regressions
  ("dense dispatches must stay 0 on sparse workloads") instead of wall
  clock alone.
* **gauges** — last-written values (``worker.cache_entries``).
* **histograms** — running ``count/sum/min/max`` summaries for timings
  (``distributed.heartbeat_seconds``), plus nearest-rank p50/p90/p99
  percentiles over a bounded window of the most recent
  :data:`RETAINED_SAMPLES` observations (bounded so a million-trial sweep
  cannot grow a registry without limit; the percentile is exact until the
  window fills, recency-weighted after).  Timings are never deterministic,
  so histogram-derived metrics are informative-only in diffs.

Names are interned (:func:`sys.intern`): the same metric is incremented many
times with the same literal, and interning makes every later dict lookup a
pointer comparison.  All mutation is lock-guarded — the distributed
coordinator increments from several driver threads at once.

The registry is reached ambiently through :func:`repro.obs.get_obs`; when no
registry is installed (the default), instrumented code skips its flush
entirely, which is what keeps the disabled overhead near zero.
"""

from __future__ import annotations

import sys
import threading
from collections import deque
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

#: Per-histogram cap on retained samples for percentile summaries.
RETAINED_SAMPLES = 1024

#: The percentiles every histogram summary reports.
PERCENTILES = (50, 90, 99)


def percentile(samples: Sequence[float], rank: float) -> float:
    """Nearest-rank percentile of a non-empty sample collection."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("cannot take a percentile of no samples")
    index = max(0, -(-len(ordered) * rank // 100) - 1)  # ceil(n*p/100) - 1
    return ordered[int(index)]


class MetricsRegistry:
    """Thread-safe counter/gauge/histogram accumulator."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        # name -> [count, sum, min, max]
        self._histograms: Dict[str, list] = {}
        # name -> bounded window of the most recent samples (percentiles)
        self._samples: Dict[str, deque] = {}

    # -- writing -----------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        if not value:
            return
        name = sys.intern(name)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def inc_many(self, values: Mapping[str, int], prefix: str = "") -> None:
        """Add a whole mapping of counter deltas in one lock acquisition.

        This is the flush-at-end entry point: the hot paths keep plain int
        attributes (``ChannelStats``, the transport dispatch counters, …) and
        pour them in here once per trial instead of taking the lock per event.
        """
        with self._lock:
            for key, value in values.items():
                if not value:
                    continue
                name = sys.intern(prefix + str(key))
                self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        name = sys.intern(name)
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        name = sys.intern(name)
        with self._lock:
            summary = self._histograms.get(name)
            if summary is None:
                self._histograms[name] = [1, value, value, value]
                self._samples[name] = deque((value,), maxlen=RETAINED_SAMPLES)
            else:
                summary[0] += 1
                summary[1] += value
                if value < summary[2]:
                    summary[2] = value
                if value > summary[3]:
                    summary[3] = value
                self._samples[name].append(value)

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A structured copy: ``{"counters", "gauges", "histograms"}``."""
        with self._lock:
            histograms: Dict[str, Dict[str, float]] = {}
            for name, summary in self._histograms.items():
                entry = {
                    "count": summary[0],
                    "sum": summary[1],
                    "min": summary[2],
                    "max": summary[3],
                    "mean": summary[1] / summary[0] if summary[0] else 0.0,
                }
                samples = self._samples.get(name)
                if samples:
                    ordered = sorted(samples)
                    for rank in PERCENTILES:
                        entry[f"p{rank}"] = percentile(ordered, rank)
                histograms[name] = entry
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": histograms,
            }

    def flat_snapshot(self) -> Dict[str, float]:
        """One flat ``name → number`` map: counters and gauges verbatim,
        histograms expanded to ``<name>.count`` / ``<name>.sum`` /
        ``<name>.p50``-style keys — the shape stored records and diffs
        consume (percentile keys, like every histogram-derived key, are
        informative-only in diffs)."""
        with self._lock:
            flat: Dict[str, float] = dict(self._counters)
            flat.update(self._gauges)
            for name, summary in self._histograms.items():
                flat[f"{name}.count"] = summary[0]
                flat[f"{name}.sum"] = summary[1]
                flat[f"{name}.max"] = summary[3]
                samples = self._samples.get(name)
                if samples:
                    ordered = sorted(samples)
                    for rank in PERCENTILES:
                        flat[f"{name}.p{rank}"] = percentile(ordered, rank)
            return flat


def counters_delta(
    before: Mapping[str, float], after: Mapping[str, float]
) -> Dict[str, float]:
    """``after - before`` per key, keeping only keys that moved.

    Used by ``run_trials`` to attribute a shared registry's growth to one
    experimental cell: snapshot before, snapshot after, store the delta.
    """
    delta: Dict[str, float] = {}
    for key, value in after.items():
        moved = value - before.get(key, 0)
        if moved:
            delta[key] = moved
    return delta


def format_metrics_rows(
    flat: Mapping[str, float], prefixes: Optional[Iterable[str]] = None
) -> Tuple[Dict[str, object], ...]:
    """Sorted ``{"metric", "value"}`` rows for table rendering, optionally
    filtered to names starting with one of ``prefixes``."""
    wanted = tuple(prefixes) if prefixes else None
    rows = []
    for name in sorted(flat):
        if wanted is not None and not name.startswith(wanted):
            continue
        value = flat[name]
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        rows.append({"metric": name, "value": value})
    return tuple(rows)
