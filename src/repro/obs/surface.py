"""Rendering helpers for stored traces: tree view and critical path.

``repro runs trace <run>`` consumes these; they are kept out of the CLI so a
future HTTP front end (ROADMAP's results-as-a-service direction) can reuse
the same tree/critical-path computation on raw span dicts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def _children_by_parent(spans: Sequence[Dict[str, Any]]) -> Dict[Any, List[Dict[str, Any]]]:
    ids = {span.get("span_id") for span in spans}
    children: Dict[Any, List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        # A span whose parent was not recorded (sampled out, or a worker span
        # whose dispatch parent came from another record) roots its own tree.
        key = parent if parent in ids else None
        children.setdefault(key, []).append(span)
    for group in children.values():
        group.sort(key=lambda span: (span.get("start") or 0.0, str(span.get("span_id"))))
    return children


def _label(span: Dict[str, Any]) -> str:
    attrs = span.get("attrs") or {}
    detail = " ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
    worker = span.get("worker")
    where = f" @{worker}" if worker and worker != "local" else ""
    duration_ms = (span.get("duration") or 0.0) * 1000.0
    head = f"{span.get('name', '?')} [{duration_ms:.2f} ms]{where}"
    return f"{head} {detail}".rstrip()


def render_trace_tree(spans: Sequence[Dict[str, Any]]) -> List[str]:
    """Indented tree lines for one trace's span dicts."""
    if not spans:
        return ["(no spans recorded)"]
    children = _children_by_parent(spans)
    lines: List[str] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        lines.append("  " * depth + _label(span))
        for child in children.get(span.get("span_id"), []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return lines


def critical_path(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Root-to-leaf chain ending at the latest-finishing span.

    The last span to finish is what the whole run waited for; following its
    ancestry names the chain of work that bounded the wall clock (the
    slowest worker's slowest chunk's slowest trial, in a distributed sweep).
    """
    if not spans:
        return []
    children = _children_by_parent(spans)

    def end(span: Dict[str, Any]) -> float:
        return (span.get("start") or 0.0) + (span.get("duration") or 0.0)

    def descend(span: Dict[str, Any]) -> List[Dict[str, Any]]:
        branch = [span]
        offspring = children.get(span.get("span_id"), [])
        if offspring:
            branch.extend(descend(max(offspring, key=end)))
        return branch

    roots = children.get(None, [])
    return descend(max(roots, key=end)) if roots else []


def render_critical_path(spans: Sequence[Dict[str, Any]]) -> List[str]:
    """The critical path as printable lines (deepest last)."""
    path = critical_path(spans)
    if not path:
        return ["(no spans recorded)"]
    return [("  " * depth) + "-> " + _label(span) for depth, span in enumerate(path)]
