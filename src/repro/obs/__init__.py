"""repro.obs — tracing, metrics and structured logging across the stack.

A near-zero-overhead-when-disabled instrumentation layer, reached ambiently
(:func:`get_obs` / :func:`use_obs`, mirroring ``repro.runtime.use_runtime``)
so no simulator or runtime signature carries observability arguments and no
trial fingerprint ever sees it:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  histograms populated by the engine (per-phase round counts, sparse vs
  dense window dispatches, idle rounds collapsed), the transport
  (``ChannelStats`` totals), hashing (packed vs reference message builds,
  seed derivations), the cache, the run store and the distributed backend;
* :class:`~repro.obs.trace.Tracer` — monotonic-clock spans (``trial_set`` /
  ``dispatch_chunk`` / ``trial`` / ``iteration`` / ``phase`` /
  ``cache_probe``) persisted into the :class:`~repro.runtime.store.RunStore`
  beside trial sets, with trace ids propagated through the coordinator →
  worker wire frames so one distributed sweep yields one trace;
* :mod:`~repro.obs.log` — event-plus-fields diagnostics with human or JSON
  rendering (``--log-level`` / ``--log-json``).

Everything here is stdlib-only and imports nothing from the rest of
``repro`` (beyond itself), so any layer — including the network core — can
reach the ambient context without import cycles.

Enable from the CLI with ``--obs`` / ``--trace``, or in code::

    from repro.obs import MetricsRegistry, Tracer, use_obs

    registry, tracer = MetricsRegistry(), Tracer(sample_every=4)
    with use_obs(metrics=registry, tracer=tracer):
        run_trials(workload, scheme, factory, trials=20)
    print(registry.flat_snapshot())
"""

from repro.obs.context import DISABLED, UNSET, ObsContext, get_obs, set_default_obs, use_obs
from repro.obs.log import StructuredLogger, configure as configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry, counters_delta, format_metrics_rows, percentile
from repro.obs.recorder import EVENT_KINDS, FlightRecorder, classify_slot, link_label
from repro.obs.surface import critical_path, render_critical_path, render_trace_tree
from repro.obs.trace import Span, Tracer, new_id

__all__ = [
    "ObsContext",
    "DISABLED",
    "UNSET",
    "get_obs",
    "set_default_obs",
    "use_obs",
    "MetricsRegistry",
    "counters_delta",
    "format_metrics_rows",
    "percentile",
    "FlightRecorder",
    "EVENT_KINDS",
    "classify_slot",
    "link_label",
    "Tracer",
    "Span",
    "new_id",
    "StructuredLogger",
    "get_logger",
    "configure_logging",
    "critical_path",
    "render_critical_path",
    "render_trace_tree",
]
