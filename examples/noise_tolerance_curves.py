#!/usr/bin/env python3
"""Figure-style series: success probability vs injected noise, and rate vs CC(Π).

Two of the theorem-shaped claims, measured:

* Theorem 1.1/1.2 — each scheme keeps succeeding while the injected noise
  stays around its nominal level (ε/m for Algorithm A, ε/(m log m) for B) and
  collapses when the noise is pushed far beyond it.
* Constant rate — the communication overhead of the simulation does not grow
  with the length of the underlying protocol.

Run with:  python examples/noise_tolerance_curves.py

The sweeps run through the shared runtime context; with a directory-backed
``ResultCache`` (instead of the in-memory one used here) a re-run of this
script would serve every already-computed trial from disk.
"""

from __future__ import annotations

from repro.core.parameters import algorithm_a, algorithm_b
from repro.experiments import gossip_workload, noise_sweep, rate_vs_protocol_size
from repro.runtime import ResultCache, use_runtime


def success_curves() -> None:
    workload = gossip_workload(topology="line", num_nodes=5, phases=10, seed=0)
    for scheme in (algorithm_a(), algorithm_b()):
        points = noise_sweep(workload, scheme, multipliers=(0.5, 1.0, 4.0, 16.0, 64.0), trials=3)
        print(f"\n{scheme.name}: success rate vs noise (nominal = "
              f"{scheme.nominal_noise_fraction(workload.graph):.5f} of the communication)")
        print("  multiplier   target-noise   measured-noise   success")
        for point in points:
            row = point.as_dict()
            print(f"  {row['multiplier']:9.1f}   {row['target_fraction']:.6f}      "
                  f"{row['measured_fraction']:.6f}        {row['success_rate']:.2f}")


def rate_curve() -> None:
    points = rate_vs_protocol_size(algorithm_a(), phases_grid=(8, 24, 48), num_nodes=5, trials=1)
    print("\nconstant rate check (Algorithm A, clique of 5): overhead vs CC(Pi)")
    print("  CC(Pi)   overhead")
    for point in points:
        print(f"  {int(point.x):6d}   {point.overhead:8.1f}x")


def main() -> None:
    with use_runtime(cache=ResultCache()):
        success_curves()
        rate_curve()


if __name__ == "__main__":
    main()
