#!/usr/bin/env python3
"""Quickstart: protect a small distributed computation against channel noise.

Five parties on a line network run a parity-gossip protocol.  We first run it
over a clean network, then over a network whose links suffer adversarial
insertions, deletions and substitutions — once without protection (the
computation silently breaks) and once through Algorithm A of Gelles–Kalai–
Ramnarayan (the computation survives, at a constant-factor communication
cost).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import algorithm_a, simulate
from repro.adversary import RandomNoiseAdversary
from repro.baselines import run_uncoded
from repro.network import line_topology
from repro.protocols import ParityGossipProtocol


def main() -> None:
    # A 5-party line network: 0 - 1 - 2 - 3 - 4.
    graph = line_topology(5)
    inputs = {party: party % 2 for party in range(5)}
    protocol = ParityGossipProtocol(graph, inputs, phases=8)
    print(f"protocol: parity gossip, CC(Pi) = {protocol.communication_complexity()} bits "
          f"over {graph.num_edges} links")

    # Adversarial noise: random substitutions, deletions and occasional insertions.
    def fresh_adversary(seed: int) -> RandomNoiseAdversary:
        return RandomNoiseAdversary(
            corruption_probability=0.003, insertion_probability=0.001, seed=seed
        )

    # 1. Unprotected execution over the noisy network.
    baseline = run_uncoded(protocol, adversary=fresh_adversary(1))
    print(f"\nuncoded over noisy network : success={baseline.success} "
          f"(corruptions={baseline.metrics.corruptions})")

    # 2. The same computation through the interactive coding scheme.
    result = simulate(protocol, scheme=algorithm_a(), adversary=fresh_adversary(1), seed=7)
    print(f"Algorithm A over noisy net : success={result.success} "
          f"(corruptions={result.metrics.corruptions}, "
          f"overhead={result.overhead:.1f}x, "
          f"noise fraction={result.noise_fraction:.4f})")

    print("\nper-phase communication of the coded run:")
    for phase, bits in sorted(result.metrics.communication_by_phase.items()):
        print(f"  {phase:20s} {bits:8d} bits")

    assert result.success, "the coded simulation should have succeeded"


if __name__ == "__main__":
    main()
