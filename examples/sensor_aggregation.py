#!/usr/bin/env python3
"""Domain scenario: in-network sensor aggregation over an unreliable mesh.

A 3x3 grid of sensor nodes computes the sum of their readings by convergecast
up a spanning tree and broadcast back down — the classic sparse distributed
computation that the paper's non-fully-utilised model is designed for.  The
radio links suffer insertion/deletion/substitution noise.  We compare:

* the unprotected protocol (wrong sums),
* per-bit repetition coding (better, but 3x the traffic and still breakable
  by targeted bursts),
* Algorithm A (correct sums at every node, constant-factor overhead), and
* the cost of first converting the protocol to a fully-utilised one, which is
  what earlier schemes would require.

Run with:  python examples/sensor_aggregation.py
"""

from __future__ import annotations

from repro import algorithm_a, simulate
from repro.adversary import CompositeAdversary, LinkTargetedAdversary, RandomNoiseAdversary
from repro.baselines import fully_utilized_overhead, run_repetition, run_uncoded
from repro.network import grid_topology
from repro.protocols import AggregationProtocol
from repro.utils.rng import make_rng


def make_adversary(seed: int) -> CompositeAdversary:
    """Background radio noise plus a short targeted burst on one busy link."""
    return CompositeAdversary(
        components=(
            RandomNoiseAdversary(corruption_probability=0.001, insertion_probability=0.00025, seed=seed),
            LinkTargetedAdversary(target=(0, 1), phases=("simulation", "baseline"),
                                  max_corruptions=3, seed=seed + 1),
        )
    )


def main() -> None:
    graph = grid_topology(3, 3)
    rng = make_rng(42)
    readings = {node: rng.randrange(0, 200) for node in graph.nodes}
    protocol = AggregationProtocol(graph, readings, value_bits=10)
    expected = protocol.expected_total()
    print(f"3x3 sensor grid, {graph.num_edges} links, expected total = {expected}, "
          f"CC(Pi) = {protocol.communication_complexity()} bits")

    uncoded = run_uncoded(protocol, adversary=make_adversary(1))
    wrong = [party for party, value in uncoded.outputs.items() if value != expected]
    print(f"\nuncoded      : success={uncoded.success}; nodes with a wrong sum: {wrong}")

    repetition = run_repetition(protocol, adversary=make_adversary(1), repetitions=3)
    print(f"repetition(3): success={repetition.success}; overhead={repetition.metrics.overhead:.1f}x")

    coded = simulate(protocol, scheme=algorithm_a(), adversary=make_adversary(1), seed=11)
    print(f"Algorithm A  : success={coded.success}; overhead={coded.overhead:.1f}x; "
          f"corruptions absorbed={coded.metrics.corruptions}")

    conversion = fully_utilized_overhead(protocol)
    print(f"\nfor reference, merely converting this sparse protocol to a fully-utilised one"
          f"\n(as earlier multiparty schemes require) already costs {conversion.overhead:.1f}x "
          f"({conversion.converted_communication} bits) before any coding is applied")

    assert coded.success


if __name__ == "__main__":
    main()
