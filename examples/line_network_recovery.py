#!/usr/bin/env python3
"""The paper's §1.2 line-network story, made measurable.

A message is relayed down a line of parties and the two end parties then chat
back and forth.  An adversary corrupts the very first link early in the
simulation.  This example shows

1. how the coding scheme detects the error (meeting points), freezes the
   network (flag passing), rolls back the stale chunks (rewind) and finishes
   correctly;
2. how much a single corrupted transmission costs, with and without the
   flag-passing phase — the measurable version of the paper's "a single error
   can waste Θ(m·n) communication without global coordination" discussion;
3. the per-iteration progress trace (the analysis' G*, H*, B* quantities).

Run with:  python examples/line_network_recovery.py
"""

from __future__ import annotations

from repro import InteractiveCodingSimulator, crs_oblivious_scheme
from repro.adversary import LinkTargetedAdversary
from repro.experiments import single_error_cost
from repro.experiments.workloads import line_example_workload


def traced_run() -> None:
    workload = line_example_workload(num_nodes=6, blocks=3, seed=0)
    adversary = LinkTargetedAdversary(
        target=(0, 1), phases=("simulation",), max_corruptions=1, seed=3
    )
    scheme = crs_oblivious_scheme(trace_potential=True, iteration_factor=8.0)
    simulator = InteractiveCodingSimulator(workload.protocol, scheme=scheme, adversary=adversary, seed=0)
    result = simulator.run()

    print(f"single corrupted transmission on link (0, 1); success={result.success}")
    print("iteration   G*   H*   B*")
    for snapshot in result.potential_trace.snapshots:
        row = snapshot.as_dict()
        print(f"{row['iteration']:9d}  {row['G_star']:3d}  {row['H_star']:3d}  {row['B_star']:3d}")
    print(f"iterations used: {result.iterations_run} / {result.iterations_budget}, "
          f"overhead {result.overhead:.1f}x\n")


def flag_passing_cost() -> None:
    with_flags = single_error_cost(enable_flag_passing=True)
    without_flags = single_error_cost(enable_flag_passing=False)
    print("cost of one corrupted transmission (extra communication, as a multiple of CC(Pi)):")
    print(f"  with flag passing   : {with_flags['extra_overhead']:.1f}x "
          f"(success={bool(with_flags['noisy_success'])})")
    print(f"  without flag passing: {without_flags['extra_overhead']:.1f}x "
          f"(success={bool(without_flags['noisy_success'])})")


def main() -> None:
    traced_run()
    flag_passing_cost()


if __name__ == "__main__":
    main()
