#!/usr/bin/env python3
"""Regenerate Table 1 of the paper (scheme comparison).

The analytical rows quote the guarantees of the prior schemes exactly as the
paper does (they have no efficient implementations to run); the measured rows
execute Algorithms A, B and C and the uncoded / repetition baselines on each
topology at that scheme's nominal noise level and report the observed rate
and success probability.

Run with:  python examples/reproduce_table1.py [--quick]
"""

from __future__ import annotations

import argparse

from repro.experiments import TABLE1_COLUMNS, build_table1, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer topologies and trials")
    parser.add_argument("--nodes", type=int, default=5, help="parties per topology")
    parser.add_argument("--trials", type=int, default=2, help="randomised trials per cell")
    args = parser.parse_args()

    topologies = ("line",) if args.quick else ("line", "star", "clique")
    trials = 1 if args.quick else args.trials

    rows = build_table1(
        topologies=topologies,
        num_nodes=args.nodes,
        phases=10 if args.quick else 12,
        trials=trials,
        include_analytical=True,
    )
    print(format_table(rows, TABLE1_COLUMNS))
    print(
        "\nReading guide: the three Algorithm rows should show success_rate 1.0 at their"
        "\nnominal noise level with a bounded (constant) overhead, while the uncoded and"
        "\nrepetition baselines fail under the same adversarial insertion/deletion noise."
    )


if __name__ == "__main__":
    main()
