#!/usr/bin/env python3
"""Regenerate Table 1 of the paper (scheme comparison).

The analytical rows quote the guarantees of the prior schemes exactly as the
paper does (they have no efficient implementations to run); the measured rows
execute Algorithms A, B and C and the uncoded / repetition baselines on each
topology at that scheme's nominal noise level and report the observed rate
and success probability.

Run with:  python examples/reproduce_table1.py [--quick] [--jobs N] [--cache-dir DIR]

``--jobs`` fans the measured trials out over worker processes (the results
are bit-identical to a serial run); ``--cache-dir`` persists trial results so
a re-run with the same parameters recomputes nothing.
"""

from __future__ import annotations

import argparse

from repro.experiments import TABLE1_COLUMNS, build_table1, format_table
from repro.runtime import ProcessPoolBackend, ResultCache, SerialBackend, use_runtime


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer topologies and trials")
    parser.add_argument("--nodes", type=int, default=5, help="parties per topology")
    parser.add_argument("--trials", type=int, default=2, help="randomised trials per cell")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (1 = serial)")
    parser.add_argument("--cache-dir", default=None, help="persistent trial-result cache")
    parser.add_argument("--seed", type=int, default=0, help="base seed for all trials")
    args = parser.parse_args()

    topologies = ("line",) if args.quick else ("line", "star", "clique")
    trials = 1 if args.quick else args.trials
    backend = ProcessPoolBackend(max_workers=args.jobs) if args.jobs > 1 else SerialBackend()

    print(f"seed: {args.seed}  backend: {backend.name}")
    with use_runtime(backend=backend, cache=ResultCache(args.cache_dir)):
        rows = build_table1(
            topologies=topologies,
            num_nodes=args.nodes,
            phases=10 if args.quick else 12,
            trials=trials,
            base_seed=args.seed,
            include_analytical=True,
        )
    print(format_table(rows, TABLE1_COLUMNS))
    print(
        "\nReading guide: the three Algorithm rows should show success_rate 1.0 at their"
        "\nnominal noise level with a bounded (constant) overhead, while the uncoded and"
        "\nrepetition baselines fail under the same adversarial insertion/deletion noise."
    )


if __name__ == "__main__":
    main()
