#!/usr/bin/env bash
# End-to-end smoke test of the distributed runtime, with real processes:
#
#   1. start two `repro worker serve` daemons on OS-assigned localhost ports
#      (each with its own persistent cache directory);
#   2. run a small noise sweep through `--backend distributed` with a run
#      store, then the identical sweep serially into a second store;
#   3. assert the distributed run's trial-set records carry the same
#      per-trial metrics (the result fingerprints) as the serial run's, and
#      that worker attribution was recorded;
#   4. re-run the distributed sweep and assert the workers' warm caches
#      served it without executing a single new trial.
#
# Exits non-zero on any mismatch.  Invoked from the tier-1 suite as the
# opt-in `distributed_smoke` marker:
#
#   REPRO_SMOKE_DISTRIBUTED=1 python -m pytest tests/test_distributed.py -m distributed_smoke
#
# or run it directly: bash scripts/smoke_distributed.sh

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

WORK="$(mktemp -d)"
WORKER_PIDS=()

cleanup() {
    for pid in "${WORKER_PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

start_worker() { # $1 = name
    local log="$WORK/$1.log"
    python -m repro worker serve --host 127.0.0.1 --port 0 \
        --cache-dir "$WORK/$1-cache" --worker-id "$1" > "$log" 2>&1 &
    WORKER_PIDS+=($!)
    for _ in $(seq 1 50); do
        if grep -q "listening on" "$log" 2>/dev/null; then
            sed -n 's/.*listening on [^:]*:\([0-9]*\)$/\1/p' "$log"
            return 0
        fi
        sleep 0.1
    done
    echo "worker $1 did not come up; log:" >&2
    cat "$log" >&2
    return 1
}

echo "== starting two localhost workers"
PORT_A="$(start_worker worker-a)"
PORT_B="$(start_worker worker-b)"
WORKERS="127.0.0.1:$PORT_A,127.0.0.1:$PORT_B"
echo "   workers: $WORKERS"

SWEEP_ARGS=(noise-sweep --topology line --nodes 4 --phases 4
            --multipliers 0.5 4.0 --trials 2 --seed 11 --no-cache)

echo "== distributed sweep"
python -m repro "${SWEEP_ARGS[@]}" \
    --backend distributed --workers "$WORKERS" \
    --store-dir "$WORK/dist-store" > "$WORK/dist.out"

echo "== serial sweep"
python -m repro "${SWEEP_ARGS[@]}" --store-dir "$WORK/serial-store" > "$WORK/serial.out"

echo "== comparing run-record fingerprints and attribution"
python - "$WORK/dist-store" "$WORK/serial-store" <<'PY'
import sys
from repro.runtime import RunStore

dist_store, serial_store = RunStore(sys.argv[1]), RunStore(sys.argv[2])

def trial_sets(store):
    rows = store.query(kind="trial_set")
    assert rows, f"no trial_set records in {store.root}"
    return {row["label"]: store.load(row["run_id"]) for row in rows}

dist, serial = trial_sets(dist_store), trial_sets(serial_store)
assert set(dist) == set(serial), f"cell labels differ: {set(dist) ^ set(serial)}"
for label in sorted(dist):
    assert dist[label]["runs"] == serial[label]["runs"], \
        f"per-trial metrics differ for cell {label!r}"
    assert dist[label]["aggregate"] == serial[label]["aggregate"], \
        f"aggregate differs for cell {label!r}"
    workers = dist[label].get("workers", {})
    assert workers.get("backend") == "distributed", \
        f"missing distributed attribution for cell {label!r}"
print(f"   {len(dist)} cell(s) bit-identical, attribution recorded")
PY

echo "== warm-cache re-run (expect zero executed trials)"
python -m repro "${SWEEP_ARGS[@]}" \
    --backend distributed --workers "$WORKERS" \
    --store-dir "$WORK/dist-store" > "$WORK/rerun.out"
python - "$WORK/dist-store" <<'PY'
import sys
from repro.runtime import RunStore

store = RunStore(sys.argv[1])
rows = store.query(kind="trial_set")
rerun = [store.load(row["run_id"]) for row in rows[len(rows) // 2:]]
for payload in rerun:
    attribution = payload.get("workers", {})
    executed = sum(
        stats.get("trials_executed", 0)
        for stats in attribution.get("workers", {}).values()
    )
    assert executed == 0, \
        f"re-run executed {executed} trial(s) in cell {payload['label']!r} instead of 0"
    assert payload.get("cached_trials") == len(payload["runs"]), \
        f"cell {payload['label']!r} not fully served from cache"
print(f"   {len(rerun)} cell(s) served entirely from the cluster cache")
PY

echo "smoke_distributed: OK"
