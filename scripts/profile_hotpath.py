#!/usr/bin/env python
"""cProfile one representative scheme trial and print the hottest frames.

The tool every perf-minded PR should reach for first: it runs a single
noise-resilient simulation (the same shape as one noise-sweep-cell trial —
gossip workload, scheme preset, stochastic insertion/deletion/substitution
noise at a multiple of the nominal fraction) under ``cProfile`` and prints
the top cumulative frames, so "where does simulation time go now?" has a
one-command answer::

    PYTHONPATH=src python scripts/profile_hotpath.py
    PYTHONPATH=src python scripts/profile_hotpath.py --topology clique --nodes 8 --sort tottime
    PYTHONPATH=src python scripts/profile_hotpath.py --per-slot   # the legacy transport path
    PYTHONPATH=src python scripts/profile_hotpath.py --compare    # packed vs reference timing

The execution-path switches map straight onto
:class:`repro.core.config.EngineConfig` fields: ``--per-slot`` routes the
trial through the single-slot compatibility transport instead of the batched
one — diffing the two profiles shows exactly what the batched window path
removed (and whether a regression crept back in).  ``--no-merge`` does the
same for whole-phase round merging (the flag/simulation/rewind phases run
the per-round reference schedule), and ``--no-packed`` for the packed
``(bits, present)`` plane pipeline (the meeting-points exchange falls back
to symbol tuples).

``--compare`` skips the profiler and instead times the trial twice — once
under the default (fully fast) engine configuration and once under
``REFERENCE_ENGINE_CONFIG`` — printing both wall times, the speedup, and a
bit-identity check of the channel statistics.  It is the one-command answer
to "what do the fast paths buy end to end on this trial?".

``--obs`` profiles the same trial under an ambient observability scope and,
after the frame table, prints the metrics-registry snapshot plus per-name
span totals — so a profile's "where does time go?" answer can be
cross-checked against what the instrumentation itself reports.

``--forensics`` runs the trial under an ambient flight recorder and prints
the per-kind protocol event counts plus the trial's forensic verdict — the
end-to-end exercise of the recorder path (and its profile cost, visible in
the frame table).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from contextlib import nullcontext
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import DEFAULT_ENGINE_CONFIG, REFERENCE_ENGINE_CONFIG  # noqa: E402
from repro.core.engine import InteractiveCodingSimulator  # noqa: E402
from repro.core.parameters import (  # noqa: E402
    algorithm_a,
    algorithm_b,
    algorithm_c,
    crs_oblivious_scheme,
)
from repro.experiments.factories import RandomNoiseFactory  # noqa: E402
from repro.experiments.workloads import gossip_workload  # noqa: E402
from repro.analysis.forensics import classify_failure, explain_dump  # noqa: E402
from repro.obs import FlightRecorder, MetricsRegistry, Tracer, format_metrics_rows, use_obs  # noqa: E402

SCHEMES = {
    "crs": crs_oblivious_scheme,
    "algorithm_a": algorithm_a,
    "algorithm_b": algorithm_b,
    "algorithm_c": algorithm_c,
}


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scheme", choices=sorted(SCHEMES), default="crs")
    parser.add_argument("--topology", default="clique", help="workload topology (default: clique)")
    parser.add_argument("--nodes", type=int, default=8, help="number of parties (default: 8)")
    parser.add_argument("--phases", type=int, default=6, help="gossip phases (default: 6)")
    parser.add_argument(
        "--noise-multiplier",
        type=float,
        default=1.0,
        help="noise level as a multiple of the scheme's nominal fraction (default: 1.0)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trial seed (default: 0)")
    parser.add_argument("--top", type=int, default=25, help="frames to print (default: 25)")
    parser.add_argument(
        "--sort",
        choices=["cumulative", "tottime", "ncalls"],
        default="cumulative",
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--per-slot",
        action="store_true",
        help="profile the single-slot compatibility transport instead of the batched path",
    )
    parser.add_argument(
        "--no-merge",
        action="store_true",
        help="disable whole-phase round merging (profile the per-round reference schedule)",
    )
    parser.add_argument(
        "--packed",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="carry windows as packed (bits, present) planes (default; "
        "--no-packed profiles the symbol-tuple fallback)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="time the trial under the default and the reference engine "
        "configurations instead of profiling (prints both times + speedup)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="run under an observability scope and print counters + span totals",
    )
    parser.add_argument(
        "--forensics",
        action="store_true",
        help="run under a flight recorder and print event counts + the forensic verdict",
    )
    return parser.parse_args(argv)


def _print_obs_report(registry, tracer) -> None:
    print("obs counters:")
    for row in format_metrics_rows(registry.flat_snapshot()):
        print(f"  {row['metric']:<44} {row['value']}")

    spans = tracer.drain()
    totals: dict = {}
    for span in spans:
        count, seconds = totals.get(span["name"], (0, 0.0))
        totals[span["name"]] = (count + 1, seconds + span["duration"])
    print()
    print("span totals:")
    for name in sorted(totals):
        count, seconds = totals[name]
        print(f"  {name:<20} x{count:<6} {seconds:.4f}s")

    # Cross-check: phases nest inside iterations, so their summed wall time
    # should account for (nearly) all of the iteration time — a big gap means
    # the engine is spending time the per-phase instrumentation cannot see.
    iteration = totals.get("iteration")
    phase = totals.get("phase")
    if iteration and phase and iteration[1] > 0:
        coverage = phase[1] / iteration[1]
        print(f"  phase/iteration coverage: {coverage:.1%}")


def _print_forensics_report(dump: dict) -> None:
    print("flight recorder:")
    summary = explain_dump(dump)
    counts = summary["event_counts"]
    print(f"  events recorded: {summary['events_recorded']} (kept {summary['events_kept']})")
    for kind in sorted(counts):
        print(f"  {kind:<20} {counts[kind]}")
    trial = dump.get("trial") or {}
    if trial.get("success"):
        print("  verdict: success (full timeline not kept)")
    else:
        print(f"  verdict: FAILED — {classify_failure(dump)}")


def _compare_configs(args, workload, scheme, fraction) -> int:
    """Time the trial under the default and the reference engine configs."""

    def run(config):
        adversary = RandomNoiseFactory(fraction=fraction)(args.seed)
        simulator = InteractiveCodingSimulator(
            workload.protocol, scheme=scheme, adversary=adversary, seed=args.seed, config=config
        )
        start = time.perf_counter()
        result = simulator.run()
        return time.perf_counter() - start, result

    # Best of three per configuration: the first run also warms the shared
    # δ-biased stream cache, so the minimum reflects steady-state cost.
    fast_seconds, fast_result = min((run(DEFAULT_ENGINE_CONFIG) for _ in range(3)), key=lambda pair: pair[0])
    reference_seconds, reference_result = min(
        (run(REFERENCE_ENGINE_CONFIG) for _ in range(3)), key=lambda pair: pair[0]
    )
    identical = (
        fast_result.success == reference_result.success
        and fast_result.iterations_run == reference_result.iterations_run
        and fast_result.metrics.corruptions == reference_result.metrics.corruptions
        and fast_result.metrics.simulation_communication
        == reference_result.metrics.simulation_communication
    )
    print(
        f"trial: {workload.name} / {scheme.name} / noise x{args.noise_multiplier:g} "
        f"(fraction {fraction:.5f}) / seed {args.seed}"
    )
    print(f"default   (packed fast paths): {fast_seconds * 1e3:8.2f} ms")
    print(f"reference (everything off):    {reference_seconds * 1e3:8.2f} ms")
    print(f"speedup: {reference_seconds / fast_seconds:.2f}x   bit-identical results: {identical}")
    return 0 if identical else 1


def main(argv=None) -> int:
    args = parse_args(argv)
    workload = gossip_workload(
        topology=args.topology, num_nodes=args.nodes, phases=args.phases, seed=0
    )
    scheme = SCHEMES[args.scheme]()
    fraction = scheme.nominal_noise_fraction(workload.graph) * args.noise_multiplier
    if args.compare:
        return _compare_configs(args, workload, scheme, fraction)
    adversary = RandomNoiseFactory(fraction=fraction)(args.seed)
    config = DEFAULT_ENGINE_CONFIG.with_overrides(
        batched_transport=not args.per_slot,
        merge_phases=not args.no_merge,
        packed=args.packed,
    )

    registry = MetricsRegistry() if args.obs else None
    tracer = Tracer(sample_every=1) if args.obs else None
    recorder = FlightRecorder() if args.forensics else None
    scope = (
        use_obs(metrics=registry, tracer=tracer, recorder=recorder)
        if (args.obs or args.forensics)
        else nullcontext()
    )

    # The engine binds the ambient obs context at construction time, so the
    # scope wraps simulator creation, not just the profiled run.
    with scope:
        simulator = InteractiveCodingSimulator(
            workload.protocol, scheme=scheme, adversary=adversary, seed=args.seed, config=config
        )

        if recorder is not None:
            recorder.begin_trial(seed=args.seed, scheme=scheme.name)
        profile = cProfile.Profile()
        profile.enable()
        result = simulator.run()
        profile.disable()
        dump = None
        if recorder is not None:
            dump = recorder.finish_trial(
                success=result.success,
                iterations_run=result.iterations_run,
                iterations_budget=result.metrics.iterations_budget,
                noise_fraction=result.metrics.noise_fraction,
                corruptions=result.metrics.corruptions,
                tolerance=scheme.nominal_noise_fraction(workload.graph),
            )

    path = "per-slot" if args.per_slot else ("packed" if args.packed else "batched")
    print(
        f"trial: {workload.name} / {scheme.name} / noise x{args.noise_multiplier:g} "
        f"(fraction {fraction:.5f}) / seed {args.seed} / {path} transport"
    )
    print(
        f"success={result.success} iterations={result.iterations_run} "
        f"communication={result.metrics.simulation_communication} bits "
        f"corruptions={result.metrics.corruptions}"
    )
    print()
    buffer = io.StringIO()
    pstats.Stats(profile, stream=buffer).sort_stats(args.sort).print_stats(args.top)
    print(buffer.getvalue())
    if args.obs:
        _print_obs_report(registry, tracer)
    if args.forensics and dump is not None:
        _print_forensics_report(dump)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
