"""Tests for the AGHP small-bias generator (Lemma 2.5 substitute)."""

from __future__ import annotations

import random

import pytest

from repro.hashing.small_bias import (
    SmallBiasGenerator,
    empirical_bias,
    required_field_degree,
    seed_length_bits,
)


class TestParameters:
    def test_required_field_degree(self):
        assert required_field_degree(100, 0.01) == 16
        assert required_field_degree(10_000, 2**-40) == 64

    def test_required_field_degree_validation(self):
        with pytest.raises(ValueError):
            required_field_degree(0, 0.1)
        with pytest.raises(ValueError):
            required_field_degree(10, 1.5)

    def test_seed_length(self):
        assert seed_length_bits(64) == 128

    def test_from_bit_list(self):
        bits = [1] * 128
        generator = SmallBiasGenerator.from_bit_list(bits, field_degree=64)
        assert generator.x == (1 << 64) - 1

    def test_from_bit_list_too_short(self):
        with pytest.raises(ValueError):
            SmallBiasGenerator.from_bit_list([1, 0, 1], field_degree=64)


class TestGeneration:
    def test_deterministic(self):
        a = SmallBiasGenerator(seed_bits=123456789, field_degree=32)
        b = SmallBiasGenerator(seed_bits=123456789, field_degree=32)
        assert a.bits(0, 100) == b.bits(0, 100)

    def test_random_access_matches_sequential(self):
        generator = SmallBiasGenerator(seed_bits=0xDEADBEEFCAFEBABE, field_degree=64)
        sequential = generator.bits(0, 200)
        for index in (0, 1, 17, 63, 199):
            assert generator.bit(index) == sequential[index]

    def test_packed_bits_matches_bits(self):
        generator = SmallBiasGenerator(seed_bits=9876543210, field_degree=32)
        bits = generator.bits(37, 48)
        packed = generator.packed_bits(37, 48)
        assert packed == sum(bit << index for index, bit in enumerate(bits))

    def test_offset_validation(self):
        generator = SmallBiasGenerator(seed_bits=1, field_degree=32)
        with pytest.raises(ValueError):
            generator.bits(-1, 4)
        with pytest.raises(ValueError):
            generator.bit(-2)

    def test_different_seeds_give_different_streams(self):
        a = SmallBiasGenerator(seed_bits=1 | (7 << 64), field_degree=64)
        b = SmallBiasGenerator(seed_bits=2 | (9 << 64), field_degree=64)
        assert a.bits(0, 128) != b.bits(0, 128)


class TestBias:
    def test_empirical_bias_requires_bits(self):
        with pytest.raises(ValueError):
            empirical_bias([])

    def test_empirical_bias_of_constant_sequence(self):
        assert empirical_bias([0] * 10) == pytest.approx(0.5)

    def test_average_bias_over_random_seeds_is_small(self):
        """Averaged over seeds, the output of a 2000-bit prefix is close to balanced."""
        rng = random.Random(7)
        biases = []
        for _ in range(12):
            seed = rng.getrandbits(128)
            generator = SmallBiasGenerator(seed_bits=seed, field_degree=64)
            biases.append(empirical_bias(generator.bits(0, 1500)))
        assert sum(biases) / len(biases) < 0.06

    def test_parity_of_linear_combinations_is_balanced(self):
        """δ-bias is about parities of arbitrary index subsets, not just single bits."""
        rng = random.Random(11)
        subset = sorted(rng.sample(range(512), 31))
        parities = []
        for _ in range(40):
            generator = SmallBiasGenerator(seed_bits=rng.getrandbits(128), field_degree=64)
            bits = generator.bits(0, 512)
            parities.append(sum(bits[i] for i in subset) % 2)
        fraction_of_ones = sum(parities) / len(parities)
        assert 0.2 <= fraction_of_ones <= 0.8
