"""Tests for the distributed runtime: wire format, worker, coordinator.

The acceptance criteria of the subsystem are pinned here:

1. ``DistributedBackend`` is **bit-identical** to ``SerialBackend`` — with
   one worker or many, on a plain trial set and on a full noise-sweep cell;
2. a pre-warmed cache on *any* worker short-circuits work cluster-wide
   (zero executed trials on the second run);
3. a worker killed mid-chunk has its work re-dispatched to the survivors
   without duplicating a single seed, and the run still completes;
4. probe hits written under a stale cache-schema version are ignored;
5. per-worker attribution lands in the run store without disturbing the
   existing analytics (``runs diff`` keeps working on distributed records).

All workers run in-process (``WorkerServer.start()`` serves from a daemon
thread on an OS-assigned localhost port); the subprocess path is covered by
``scripts/smoke_distributed.sh`` (opt-in, see ``TestSmokeScript``).
"""

from __future__ import annotations

import os
import socket
import subprocess
from pathlib import Path

import pytest

from repro.core.parameters import algorithm_a
from repro.experiments.factories import RandomNoiseFactory
from repro.experiments.harness import run_trials
from repro.experiments.noise_sweep import noise_sweep
from repro.experiments.workloads import gossip_workload
from repro.runtime import (
    DistributedBackend,
    ResultCache,
    RunStore,
    SerialBackend,
    WorkerServer,
    diff_runs,
    use_runtime,
)
from repro.runtime.cache import CACHE_SCHEMA_VERSION
from repro.runtime.distributed.coordinator import parse_worker_address
from repro.runtime.distributed.wire import (
    PROTOCOL_VERSION,
    WireError,
    recv_frame,
    send_frame,
)
from repro.runtime.spec import build_trial_specs, derive_trial_seed


def _cell():
    """One standard experimental cell used throughout this module."""
    workload = gossip_workload(topology="line", num_nodes=5, phases=6)
    return workload, algorithm_a(), RandomNoiseFactory(fraction=0.004)


def _run(backend, trials=6, cache=None, **kwargs):
    workload, scheme, factory = _cell()
    return run_trials(
        workload, scheme, adversary_factory=factory, trials=trials, base_seed=3,
        backend=backend, cache=cache, **kwargs,
    )


@pytest.fixture
def worker():
    server = WorkerServer().start()
    yield server
    server.stop()


@pytest.fixture
def worker_pair():
    servers = [WorkerServer().start(), WorkerServer().start()]
    yield servers
    for server in servers:
        server.stop()


class TestWireFormat:
    def test_frame_round_trip(self):
        a, b = socket.socketpair()
        try:
            message = {"type": "probe", "digests": ["a" * 64], "nested": {"x": [1, 2.5, None]}}
            send_frame(a, message)
            assert recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_oversized_announced_frame_is_refused(self):
        a, b = socket.socketpair()
        try:
            a.sendall((2**31 - 1).to_bytes(4, "big"))
            with pytest.raises(WireError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_message_payload_is_refused(self):
        a, b = socket.socketpair()
        try:
            payload = b"[1, 2, 3]"
            a.sendall(len(payload).to_bytes(4, "big") + payload)
            with pytest.raises(WireError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    @pytest.mark.parametrize("bad", ["nohost", ":123", "host:", "host:notaport", "host:0", "host:70000"])
    def test_malformed_worker_addresses_are_refused(self, bad):
        with pytest.raises(ValueError):
            parse_worker_address(bad)
        with pytest.raises(ValueError):
            DistributedBackend([bad])

    def test_backend_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            DistributedBackend([])

    def test_duplicate_worker_addresses_are_deduplicated(self, worker):
        """The same address twice is the same worker — two driver threads
        must never end up sharing one socket."""
        backend = DistributedBackend([worker.address, worker.address, worker.address])
        assert backend.workers == [worker.address]
        result = _run(backend)
        assert result.runs == _run(SerialBackend()).runs


class TestDistributedDeterminism:
    def test_single_worker_matches_serial_on_a_full_noise_sweep_cell(self, worker):
        """The satellite criterion: one local worker, a whole sweep cell,
        bit-identical points."""
        workload, scheme, _ = _cell()
        serial_points = noise_sweep(workload, scheme, multipliers=(0.5, 4.0), trials=2)
        with use_runtime(backend=DistributedBackend([worker.address]), cache=None):
            distributed_points = noise_sweep(workload, scheme, multipliers=(0.5, 4.0), trials=2)
        assert distributed_points == serial_points

    def test_two_workers_match_serial_bit_for_bit(self, worker_pair):
        serial = _run(SerialBackend())
        backend = DistributedBackend([w.address for w in worker_pair], chunk_size=2)
        distributed = _run(backend)
        assert distributed.runs == serial.runs
        assert distributed.aggregate == serial.aggregate
        assert backend.trials_executed == 6
        # Both workers really participated (3 chunks round-robined over 2).
        assert sum(w.trials_executed for w in worker_pair) == 6
        assert all(w.trials_executed > 0 for w in worker_pair)

    def test_worker_links_are_reused_across_runs(self, worker):
        """An experiment grid runs many cells; the TCP connection and
        handshake are paid once, not once per cell."""
        backend = DistributedBackend([worker.address])
        first = _run(backend)
        link = backend._links[worker.address]
        second = _run(backend)
        assert backend._links[worker.address] is link
        assert second.runs == first.runs
        backend.close()
        assert backend._links == {}

    def test_version_mismatched_worker_is_refused(self):
        class LyingWorker(WorkerServer):
            def _dispatch(self, connection, write_lock, request):
                if request.get("type") == "hello":
                    send_frame(connection, {
                        "type": "hello", "worker_id": self.worker_id,
                        "protocol": PROTOCOL_VERSION, "version": "0.0.0-not-ours",
                        "cache_schema": CACHE_SCHEMA_VERSION,
                    })
                    return True
                return super()._dispatch(connection, write_lock, request)

        server = LyingWorker().start()
        try:
            with pytest.raises(RuntimeError, match="version"):
                _run(DistributedBackend([server.address]), trials=1)
        finally:
            server.stop()


class TestClusterCacheReuse:
    def test_prewarmed_remote_cache_short_circuits_the_whole_run(self, tmp_path):
        """Acceptance criterion: second run executes zero trials anywhere."""
        warm = WorkerServer(cache_dir=tmp_path / "warm-cache").start()
        try:
            first_backend = DistributedBackend([warm.address])
            first = _run(first_backend)
            executed_after_first = warm.trials_executed
            assert executed_after_first == 6

            # Drive the backend directly for the second run so the
            # attribution is still ours to pop (run_trials pops it itself).
            workload, scheme, factory = _cell()
            seeds = [derive_trial_seed(3, trial) for trial in range(6)]
            specs = build_trial_specs(workload, scheme, factory, seeds)
            second_backend = DistributedBackend([warm.address])
            second = second_backend.run(specs)
            assert second == first.runs
            assert warm.trials_executed == executed_after_first  # nothing re-ran
            assert second_backend.trials_executed == 0           # nothing dispatched
            attribution = second_backend.pop_last_attribution()
            assert attribution["remote_cache_hits"] == 6
        finally:
            warm.stop()

    def test_one_warm_worker_short_circuits_for_cold_workers_too(self, tmp_path):
        """Cross-host reuse: a cold worker never executes what a warm worker
        already knows."""
        cache_dir = tmp_path / "shared-cache"
        warm = WorkerServer(cache_dir=cache_dir).start()
        try:
            _run(DistributedBackend([warm.address]))  # warm it up
        finally:
            pass
        cold = WorkerServer().start()
        try:
            backend = DistributedBackend([warm.address, cold.address])
            result = _run(backend)
            assert cold.trials_executed == 0
            assert backend.trials_executed == 0
            assert result.runs == _run(SerialBackend()).runs
        finally:
            warm.stop()
            cold.stop()

    def test_stale_cache_schema_probe_hits_are_ignored(self):
        """A worker whose cache speaks an incompatible layout must be treated
        as cold: recompute, never deserialize its entries."""

        class StaleSchemaWorker(WorkerServer):
            def _handle_probe(self, request):
                response = super()._handle_probe(request)
                for entry in response["hits"].values():
                    entry["schema"] = 999
                return response

        server = StaleSchemaWorker().start()
        try:
            backend = DistributedBackend([server.address])
            first = _run(backend)
            assert server.trials_executed == 6
            # The worker's cache is warm, but its probe answers are stale →
            # every trial is executed again instead of trusted.
            second_backend = DistributedBackend([server.address])
            second = _run(second_backend)
            assert server.trials_executed == 12
            assert second_backend.trials_executed == 6
            assert second.runs == first.runs
        finally:
            server.stop()

    def test_unpicklable_specs_fail_with_a_clear_error(self, worker):
        """Lambdas cannot cross the wire; the error must say so instead of
        masquerading as a dead worker."""
        from repro.runtime import TrialExecutionError

        workload, scheme, _ = _cell()
        factory = lambda seed: RandomNoiseFactory(fraction=0.004)(seed)  # noqa: E731
        specs = build_trial_specs(workload, scheme, factory, [derive_trial_seed(3, 0)])
        backend = DistributedBackend([worker.address])
        with pytest.raises(TrialExecutionError, match="picklable"):
            backend.run(specs)
        assert worker.trials_executed == 0
        assert len(worker.cache) == 0


class TestFailureHandling:
    def test_worker_killed_mid_chunk_redispatches_without_duplicating_seeds(self):
        """Acceptance criterion: kill one worker mid-run, the sweep still
        completes and every seed's result appears exactly once."""
        workload, scheme, factory = _cell()
        seeds = [derive_trial_seed(3, trial) for trial in range(6)]
        specs = build_trial_specs(workload, scheme, factory, seeds)
        serial = SerialBackend().run(specs)
        crasher = WorkerServer(crash_after_trials=1).start()
        survivor = WorkerServer().start()
        try:
            backend = DistributedBackend(
                [crasher.address, survivor.address], chunk_size=2, heartbeat_timeout=30.0,
            )
            distributed = backend.run(specs)
            # Bit-identical to serial ⇒ exactly one result per seed, in order,
            # even though the crasher double-started one chunk.
            assert distributed == serial
            attribution = backend.pop_last_attribution()
            survivor_stats = attribution["workers"][survivor.worker_id]
            assert survivor_stats["redispatched"] >= 1
            assert survivor_stats["trials_executed"] == 6
        finally:
            survivor.stop()
            crasher.stop()

    def test_unreachable_workers_raise(self):
        backend = DistributedBackend(["127.0.0.1:9"])  # discard port: nothing listens
        with pytest.raises(RuntimeError, match="reachable"):
            _run(backend, trials=1)

    def test_all_workers_dying_raises_instead_of_hanging(self):
        crasher = WorkerServer(crash_after_trials=0).start()
        try:
            backend = DistributedBackend([crasher.address], heartbeat_timeout=30.0)
            with pytest.raises(RuntimeError, match="died"):
                _run(backend, trials=2)
        finally:
            crasher.stop()

    def test_empty_spec_list_is_a_no_op_without_connecting(self):
        backend = DistributedBackend(["127.0.0.1:9"])
        assert backend.run([]) == []

    def test_degraded_cluster_warns_and_records_the_unreachable_worker(self, worker):
        """Half-missing clusters run degraded, but never silently."""
        workload, scheme, factory = _cell()
        seeds = [derive_trial_seed(3, trial) for trial in range(4)]
        specs = build_trial_specs(workload, scheme, factory, seeds)
        backend = DistributedBackend([worker.address, "127.0.0.1:9"])
        with pytest.warns(RuntimeWarning, match="degraded to 1/2"):
            result = backend.run(specs)
        assert result == SerialBackend().run(specs)
        attribution = backend.pop_last_attribution()
        assert len(attribution["unreachable_workers"]) == 1
        assert "127.0.0.1:9" in attribution["unreachable_workers"][0]

    def test_colliding_worker_ids_are_disambiguated(self):
        """Two daemons started with the same --worker-id must not merge into
        one queue/attribution row."""
        twin_a = WorkerServer(worker_id="node").start()
        twin_b = WorkerServer(worker_id="node").start()
        try:
            workload, scheme, factory = _cell()
            seeds = [derive_trial_seed(3, trial) for trial in range(6)]
            specs = build_trial_specs(workload, scheme, factory, seeds)
            backend = DistributedBackend([twin_a.address, twin_b.address], chunk_size=2)
            result = backend.run(specs)
            assert result == SerialBackend().run(specs)
            attribution = backend.pop_last_attribution()
            workers = attribution["workers"]
            assert len(workers) == 2
            assert sum(stats["trials_executed"] for stats in workers.values()) == 6
        finally:
            twin_a.stop()
            twin_b.stop()


class TestAttributionInRunStore:
    def test_distributed_run_records_attribution_and_still_diffs(self, tmp_path, worker_pair):
        store = RunStore(tmp_path)
        addresses = [w.address for w in worker_pair]
        _run(DistributedBackend(addresses, chunk_size=2), store=store)
        _run(DistributedBackend(addresses, chunk_size=2), store=store)

        first, second = (store.load(row["run_id"]) for row in store.list_runs())
        workers = first["workers"]["workers"]
        assert set(workers) == {w.worker_id for w in worker_pair}
        assert sum(stats["trials_executed"] for stats in workers.values()) == 6
        assert all(
            {"dispatched", "stolen", "redispatched"} <= set(stats) for stats in workers.values()
        )
        # The second run hit the workers' in-memory caches instead of executing.
        assert second["workers"]["remote_cache_hits"] == 6

        # Analytics neither choke on nor gate on the attribution payload.
        diff = diff_runs(first, second)
        assert not any(row.status == "regression" for row in diff.rows if row.metric == "success_rate")

    def test_serial_runs_record_no_attribution(self, tmp_path):
        store = RunStore(tmp_path)
        _run(SerialBackend(), store=store)
        payload = store.load(store.list_runs()[0]["run_id"])
        assert "workers" not in payload

    def test_failed_run_leftover_attribution_is_not_inherited(self, tmp_path):
        """A run that raises never reaches the attribution pop; the next cell
        — even one fully served from the local cache, where the backend is
        never invoked — must not record the leftovers as its own."""
        backend = DistributedBackend(["127.0.0.1:9"])
        backend._last_attribution = {  # what a crashed run leaves behind
            "backend": "distributed", "workers": {}, "trials_total": 6, "remote_cache_hits": 6,
        }
        cache = ResultCache()
        _run(SerialBackend(), cache=cache)  # warm the local cache
        store = RunStore(tmp_path)
        trial_set = _run(backend, cache=cache, store=store)  # fully cache-served
        assert backend.trials_executed == 0
        payload = store.load(store.list_runs()[0]["run_id"])
        assert "workers" not in payload
        assert payload["cached_trials"] == len(trial_set.runs)


class TestCliIntegration:
    def test_noise_sweep_backend_distributed_matches_serial(self, worker_pair, capsys):
        from repro.cli import main

        args = ["noise-sweep", "--topology", "line", "--nodes", "4", "--phases", "4",
                "--multipliers", "0.5", "4.0", "--trials", "2", "--seed", "3", "--no-cache"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        workers = ",".join(w.address for w in worker_pair)
        assert main(args + ["--backend", "distributed", "--workers", workers]) == 0
        distributed_out = capsys.readouterr().out
        assert distributed_out == serial_out

    def test_backend_distributed_without_workers_fails_friendly(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["noise-sweep", "--backend", "distributed"])
        assert excinfo.value.code == 1
        assert "--workers" in capsys.readouterr().err


@pytest.mark.distributed_smoke
class TestSmokeScript:
    """Opt-in end-to-end gate: real subprocess workers, the real CLI.

    Activate with ``REPRO_SMOKE_DISTRIBUTED=1 python -m pytest -m
    distributed_smoke``; skipped (not failed) otherwise so the default
    tier-1 run stays hermetic and fast.
    """

    def test_smoke_script_passes(self):
        if os.environ.get("REPRO_SMOKE_DISTRIBUTED", "") not in ("1", "true", "yes"):
            pytest.skip("set REPRO_SMOKE_DISTRIBUTED=1 to run the distributed smoke test")
        script = Path(__file__).resolve().parent.parent / "scripts" / "smoke_distributed.sh"
        completed = subprocess.run(
            ["bash", str(script)], capture_output=True, text=True, timeout=600,
        )
        assert completed.returncode == 0, (
            f"smoke script failed\nstdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
        )
