"""Tests for the experiment harnesses (workloads, trials, Table 1, sweeps, ablations).

These use deliberately tiny configurations: the goal is to exercise the
harness logic, not to re-measure the paper (the benchmarks do that).
"""

from __future__ import annotations

import pytest

from repro.adversary.strategies import RandomNoiseAdversary
from repro.core.parameters import algorithm_a, crs_oblivious_scheme
from repro.experiments.ablations import (
    chunk_size_ablation,
    flag_passing_ablation,
    hash_length_ablation,
    rewind_ablation,
    single_error_cost,
)
from repro.experiments.harness import format_table, run_trials, sweep
from repro.experiments.noise_sweep import crossover_multiplier, noise_sweep
from repro.experiments.table1 import ANALYTICAL_ROWS, TABLE1_COLUMNS, build_table1, default_cells, measure_cell
from repro.experiments.theorem_validation import rate_vs_network_size, rate_vs_protocol_size, scheme_comparison
from repro.experiments.workloads import (
    WORKLOAD_BUILDERS,
    gossip_workload,
    pairwise_workload,
    random_workload,
)


class TestWorkloads:
    @pytest.mark.parametrize("builder", sorted(WORKLOAD_BUILDERS))
    def test_every_builder_produces_a_runnable_workload(self, builder):
        workload = WORKLOAD_BUILDERS[builder]()
        assert workload.communication > 0
        execution = workload.protocol.run_noiseless()
        assert set(execution.outputs) == set(workload.graph.nodes)

    def test_workload_names_encode_parameters(self):
        assert "line" in gossip_workload(topology="line", num_nodes=4).name
        assert "n6" in random_workload(num_nodes=6).name

    def test_workloads_are_deterministic_under_seed(self):
        a = random_workload(seed=3).protocol.run_noiseless().outputs
        b = random_workload(seed=3).protocol.run_noiseless().outputs
        assert a == b


class TestHarness:
    def test_run_trials_counts(self):
        workload = pairwise_workload()
        trial_set = run_trials(workload, crs_oblivious_scheme(), trials=2, base_seed=1)
        assert trial_set.aggregate.trials == 2
        assert trial_set.aggregate.success_rate == 1.0
        assert len(trial_set.runs) == 2

    def test_run_trials_validation(self):
        with pytest.raises(ValueError):
            run_trials(pairwise_workload(), crs_oblivious_scheme(), trials=0)

    def test_run_trials_with_noise_factory(self):
        workload = gossip_workload(num_nodes=4, phases=4)
        trial_set = run_trials(
            workload,
            crs_oblivious_scheme(),
            adversary_factory=lambda seed: RandomNoiseAdversary(corruption_probability=0.002, seed=seed),
            trials=2,
        )
        assert 0.0 <= trial_set.aggregate.success_rate <= 1.0

    def test_sweep_maps_cells(self):
        workload = pairwise_workload()
        cells = [
            {"workload": workload, "scheme": crs_oblivious_scheme(), "trials": 1, "base_seed": i}
            for i in range(2)
        ]
        results = sweep(cells, run_trials)
        assert len(results) == 2

    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123456}]
        text = format_table(rows, ["a", "b"])
        assert "a" in text.splitlines()[0]
        assert len(text.splitlines()) == 4


class TestTable1:
    def test_analytical_rows_match_paper(self):
        schemes = [row["scheme"] for row in ANALYTICAL_ROWS]
        assert schemes == ["RS94", "ABGEH16", "HS16", "HS16 (routed)", "JKL15"]

    def test_default_cells_cover_schemes_and_baselines(self):
        labels = [cell.scheme_label for cell in default_cells()]
        assert "Algorithm A" in labels and "uncoded" in labels and "repetition(3)" in labels

    def test_measure_cell_for_baseline(self):
        workload = gossip_workload(topology="line", num_nodes=4, phases=4)
        row = measure_cell(default_cells()[3], workload, "line", trials=1)
        assert row["kind"] == "measured"
        assert row["scheme"] == "uncoded"
        assert 0.0 <= row["success_rate"] <= 1.0

    def test_build_table1_small(self):
        rows = build_table1(topologies=("line",), num_nodes=4, phases=4, trials=1, include_analytical=True)
        kinds = {row["kind"] for row in rows}
        assert kinds == {"analytical", "measured"}
        assert all(set(TABLE1_COLUMNS) >= set(row) or True for row in rows)
        measured = [row for row in rows if row["kind"] == "measured"]
        assert len(measured) == len(default_cells())


class TestSweepsAndSeries:
    def test_noise_sweep_shape(self):
        workload = gossip_workload(topology="line", num_nodes=4, phases=4)
        points = noise_sweep(workload, crs_oblivious_scheme(), multipliers=(0.5, 32.0), trials=1)
        assert len(points) == 2
        assert points[0].multiplier == 0.5
        assert points[0].success_rate >= points[-1].success_rate

    def test_crossover_multiplier(self):
        workload = gossip_workload(topology="line", num_nodes=4, phases=4)
        points = noise_sweep(workload, crs_oblivious_scheme(), multipliers=(0.5, 64.0), trials=1)
        crossover = crossover_multiplier(points)
        assert crossover is None or crossover in (0.5, 64.0)

    def test_rate_vs_protocol_size_is_flat(self):
        points = rate_vs_protocol_size(crs_oblivious_scheme(), phases_grid=(6, 18), num_nodes=4, trials=1)
        assert len(points) == 2
        assert points[1].x > points[0].x
        # constant-rate claim: the overhead must not grow with CC(Pi)
        assert points[1].overhead <= points[0].overhead * 1.5

    def test_rate_vs_network_size(self):
        points = rate_vs_network_size(crs_oblivious_scheme(), node_grid=(4, 5), phases=6, trials=1)
        assert [point.extra["num_nodes"] for point in points] == [4, 5]

    def test_scheme_comparison_rows(self):
        rows = scheme_comparison(num_nodes=4, phases=5, trials=1)
        names = [row["scheme"] for row in rows]
        assert names == ["algorithm_a", "algorithm_b", "algorithm_c", "uncoded"]


class TestAblations:
    def test_flag_passing_ablation_rows(self):
        rows = flag_passing_ablation(num_nodes=5, blocks=2, errors=1, trials=1)
        assert [row.label for row in rows] == ["flag_passing=on", "flag_passing=off"]
        assert all(0.0 <= row.success_rate <= 1.0 for row in rows)

    def test_rewind_ablation_shows_the_mechanism_matters(self):
        rows = rewind_ablation(num_nodes=6, blocks=3, errors=2, trials=1)
        on, off = rows
        assert on.success_rate >= off.success_rate
        assert on.mean_iterations <= off.mean_iterations

    def test_hash_length_ablation_rows(self):
        rows = hash_length_ablation(hash_bits_grid=(2, 8), num_nodes=4, phases=5, trials=1)
        assert [row.extra["hash_bits"] for row in rows] == [2.0, 8.0]

    def test_chunk_size_ablation_rate_improves_with_chunk_size(self):
        rows = chunk_size_ablation(multiplier_grid=(2, 10), num_nodes=4, phases=8, trials=1)
        assert rows[0].mean_overhead > rows[1].mean_overhead

    def test_single_error_cost_keys(self):
        outcome = single_error_cost(num_nodes=5, blocks=2)
        for key in ("clean_overhead", "noisy_overhead", "extra_overhead", "noisy_success"):
            assert key in outcome
        assert outcome["noisy_success"] == 1.0
