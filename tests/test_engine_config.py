"""EngineConfig: one frozen switchboard, fingerprint-invisible by contract.

PR 10 consolidated the per-keyword engine switches (``fast_hashing``,
``batch_rounds``, ``merge_phases``, transport ``batched`` and the new
``packed``) into :class:`repro.core.config.EngineConfig`.  This suite pins the
three promises the consolidation makes:

* **Fingerprint invisibility** — the configuration selects among bit-identical
  execution paths, so it must never alter a trial fingerprint or cache key: a
  result computed under any configuration is served for the same trial under
  any other.
* **Bit-identity** — the reference profile (everything off) and the default
  profile (everything on) produce identical results on real noisy trials.
* **Compatible migration** — the legacy per-switch keywords still work, warn
  exactly once per process, and land on the same config fields.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import (
    DEFAULT_ENGINE_CONFIG,
    REFERENCE_ENGINE_CONFIG,
    EngineConfig,
    _WARNED_LEGACY,
)
from repro.core.engine import InteractiveCodingSimulator, simulate
from repro.core.parameters import crs_oblivious_scheme, scheme_by_name
from repro.experiments.factories import RandomNoiseFactory
from repro.experiments.harness import run_trials
from repro.experiments.workloads import gossip_workload
from repro.runtime import ResultCache, use_runtime
from repro.runtime.spec import TrialSpec, build_trial_specs, fingerprint_trial


@pytest.fixture
def cell():
    workload = gossip_workload("clique", 4, 3, seed=0)
    scheme = crs_oblivious_scheme()
    factory = RandomNoiseFactory(fraction=scheme.nominal_noise_fraction(workload.protocol.graph))
    return workload, scheme, factory


# ---------------------------------------------------------------------------
# Fingerprint invisibility
# ---------------------------------------------------------------------------


def test_engine_config_never_enters_the_fingerprint(cell):
    workload, scheme, factory = cell
    digests = set()
    for engine in (None, DEFAULT_ENGINE_CONFIG, REFERENCE_ENGINE_CONFIG,
                   EngineConfig(packed=False, merge_phases=False)):
        spec = TrialSpec(
            workload=workload, scheme=scheme, adversary_factory=factory, seed=17, engine=engine
        )
        key = fingerprint_trial(spec)
        assert key.stable
        digests.add(key.digest)
    assert len(digests) == 1, "engine configuration leaked into the trial fingerprint"


def test_build_trial_specs_threads_engine(cell):
    workload, scheme, factory = cell
    specs = build_trial_specs(workload, scheme, factory, [17, 1017], engine=REFERENCE_ENGINE_CONFIG)
    assert [spec.engine for spec in specs] == [REFERENCE_ENGINE_CONFIG] * 2
    assert fingerprint_trial(specs[0]) == fingerprint_trial(
        TrialSpec(workload=workload, scheme=scheme, adversary_factory=factory, seed=17)
    )


def test_cached_result_served_across_configurations(cell):
    """A trial computed under the default profile is a cache hit for the same
    trial under the reference profile — the strongest observable form of
    fingerprint invisibility."""
    workload, scheme, factory = cell
    cache = ResultCache()
    first = run_trials(
        workload, scheme, factory, trials=2, cache=cache, store=None,
        engine=DEFAULT_ENGINE_CONFIG,
    )
    assert cache.stats.hits == 0 and cache.stats.stores == 2
    second = run_trials(
        workload, scheme, factory, trials=2, cache=cache, store=None,
        engine=REFERENCE_ENGINE_CONFIG,
    )
    assert cache.stats.hits == 2, "reference-profile rerun should be served from cache"
    assert [run.as_dict() for run in first.runs] == [run.as_dict() for run in second.runs]


def test_runtime_context_supplies_ambient_engine(cell, monkeypatch):
    """run_trials resolves the ambient EngineConfig into each spec so worker
    processes (which never inherit the context) run the right configuration."""
    workload, scheme, factory = cell
    captured = []

    import repro.experiments.harness as harness

    original = harness.build_trial_specs

    def spy(*args, **kwargs):
        specs = original(*args, **kwargs)
        captured.extend(specs)
        return specs

    monkeypatch.setattr(harness, "build_trial_specs", spy)
    with use_runtime(engine=REFERENCE_ENGINE_CONFIG):
        run_trials(workload, scheme, factory, trials=1, cache=None, store=None)
    assert captured and all(spec.engine == REFERENCE_ENGINE_CONFIG for spec in captured)
    captured.clear()
    # An explicit argument wins over the ambient context.
    with use_runtime(engine=REFERENCE_ENGINE_CONFIG):
        run_trials(
            workload, scheme, factory, trials=1, cache=None, store=None,
            engine=DEFAULT_ENGINE_CONFIG,
        )
    assert captured and all(spec.engine == DEFAULT_ENGINE_CONFIG for spec in captured)


# ---------------------------------------------------------------------------
# Bit-identity of the profiles
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheme_name", ["algorithm_crs", "algorithm_a", "algorithm_b", "algorithm_c"])
def test_reference_and_default_profiles_bit_identical(scheme_name):
    workload = gossip_workload("clique", 4, 3, seed=0)
    scheme = scheme_by_name(scheme_name)
    fraction = scheme.nominal_noise_fraction(workload.protocol.graph)
    factory = RandomNoiseFactory(fraction=fraction)
    results = {}
    for label, config in [("default", DEFAULT_ENGINE_CONFIG), ("reference", REFERENCE_ENGINE_CONFIG)]:
        result = simulate(
            workload.protocol, scheme=scheme, adversary=factory(3), seed=3, config=config
        )
        results[label] = (result.success, result.metrics.as_dict())
    assert results["default"] == results["reference"]


# ---------------------------------------------------------------------------
# Legacy keyword migration
# ---------------------------------------------------------------------------


def _simulator(**kwargs):
    workload = gossip_workload("clique", 4, 2, seed=0)
    return InteractiveCodingSimulator(workload.protocol, scheme=crs_oblivious_scheme(), **kwargs)


def test_legacy_keywords_override_config_and_warn_once():
    _WARNED_LEGACY.clear()
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sim = _simulator(merge_phases=False, batched=False)
            second = _simulator(merge_phases=True)
        assert sim.config == DEFAULT_ENGINE_CONFIG.with_overrides(
            merge_phases=False, batched_transport=False
        )
        assert sim.merge_phases is False and sim.network.batched is False
        assert second.merge_phases is True
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        # One warning per distinct legacy keyword, not per use.
        assert sorted(str(w.message).split("'")[1] for w in deprecations) == [
            "batched", "merge_phases",
        ]
    finally:
        _WARNED_LEGACY.clear()


def test_config_object_is_authoritative_without_legacy_keywords():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        sim = _simulator(config=REFERENCE_ENGINE_CONFIG)
    assert sim.config == REFERENCE_ENGINE_CONFIG
    assert sim.fast_hashing is False
    assert sim.batch_rounds is False
    assert sim.merge_phases is False
    assert sim.packed is False
    assert sim.network.batched is False


def test_with_overrides_returns_new_frozen_config():
    derived = DEFAULT_ENGINE_CONFIG.with_overrides(packed=False)
    assert derived.packed is False and DEFAULT_ENGINE_CONFIG.packed is True
    with pytest.raises(Exception):
        derived.packed = True  # frozen dataclass


# ---------------------------------------------------------------------------
# The 2.0.0 CRS break: pre-break cached state is rejected cleanly
# ---------------------------------------------------------------------------


def test_major_version_and_schemas_reflect_the_crs_break():
    import repro
    from repro.runtime.cache import CACHE_SCHEMA_VERSION
    from repro.runtime.spec import TRIAL_KEY_SCHEMA
    from repro.runtime.store import STORE_SCHEMA_VERSION

    assert repro.__version__.split(".")[0] == "2"
    assert CACHE_SCHEMA_VERSION == 2
    assert TRIAL_KEY_SCHEMA == 2
    # The run store is history, not reusable results: schema deliberately kept.
    assert STORE_SCHEMA_VERSION == 1


def test_pre_break_cache_entries_are_skipped_not_served(tmp_path):
    """A trials.jsonl written before the CRS break (schema 1) must never serve
    results: loading skips every pre-break line without raising, and compact
    sweeps them from disk."""
    import json

    path = tmp_path / "trials.jsonl"
    stale = {
        "schema": 1,
        "key": "f" * 64,
        "metrics": {"anything": "from the 1.x era"},
    }
    path.write_text(json.dumps(stale) + "\n")
    cache = ResultCache(tmp_path)
    assert len(cache) == 0
    outcome = cache.compact()
    assert outcome == {"kept": 0, "dropped_superseded": 0, "dropped_invalid": 1}
    assert path.read_text() == ""


# ---------------------------------------------------------------------------
# Golden fingerprints of the post-break CRS behaviour
# ---------------------------------------------------------------------------


class TestCrsGoldens:
    """Pinned values of the 2.0.0 CRS derivation.

    These are the *new* goldens after the documented break (CrsSeedSource
    expanding through SmallBiasGenerator.packed_slots with hasher-derived slot
    capacities).  They exist so any future change to CRS seed derivation is a
    conscious, version-gated decision — a drift here means another major
    version, not a bugfix.
    """

    def test_crs_seed_source_golden_values(self):
        from repro.hashing.seeds import CrsSeedSource

        source = CrsSeedSource(master_seed=2024, link=(0, 1))
        seeds = [
            source.seed_for(iteration, purpose, 128)
            for iteration in (0, 1)
            for purpose in ("mp_prefix", "mp_counter")
        ]
        assert [hex(value) for value in seeds] == [
            "0xc44727dcadd16e91f6e993981618ace7",
            "0x18d3dc56747c4b87268a4669f6dfa7f1",
            "0x6bad427d510ab6b774d01919bbcab1e1",
            "0x86160139d45b59057320912005c8ac54",
        ]

    def test_crs_trial_golden_metrics(self):
        """One noisy CRS trial (corruptions, rewinds, truncations and a full
        recovery), pinned end to end under the default engine profile."""
        workload = gossip_workload("clique", 4, 4, seed=0)
        scheme = crs_oblivious_scheme()
        factory = RandomNoiseFactory(
            fraction=4 * scheme.nominal_noise_fraction(workload.protocol.graph)
        )
        result = simulate(workload.protocol, scheme=scheme, adversary=factory(2), seed=2)
        metrics = result.metrics.as_dict()
        assert metrics == {
            "scheme": "algorithm_crs",
            "success": True,
            "cc_protocol": 48,
            "cc_simulation": 5664,
            "overhead": 118.0,
            "rate": 0.00847457627118644,
            "noise_fraction": 0.008121468926553672,
            "corruptions": 46,
            "rewinds": 12,
            "truncations": 8,
            "iterations_run": 14,
            "hash_collisions": 0,
        }


# ---------------------------------------------------------------------------
# CLI flag translation
# ---------------------------------------------------------------------------


def test_cli_engine_flags_translate_to_configs():
    from repro.cli import _engine_config, build_parser

    parser = build_parser()
    base = ["table1", "--topologies", "line", "--nodes", "4"]
    assert _engine_config(parser.parse_args(base)) is None
    assert _engine_config(parser.parse_args(base + ["--engine-reference"])) == REFERENCE_ENGINE_CONFIG
    assert _engine_config(
        parser.parse_args(base + ["--engine-no-packed", "--engine-no-merge-phases"])
    ) == DEFAULT_ENGINE_CONFIG.with_overrides(packed=False, merge_phases=False)
    assert _engine_config(
        parser.parse_args(["simulate", "--engine-no-batched-transport"])
    ) == DEFAULT_ENGINE_CONFIG.with_overrides(batched_transport=False)
