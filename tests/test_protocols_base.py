"""Tests for the Protocol/PartyLogic model and the noiseless reference execution."""

from __future__ import annotations

import pytest

from repro.network.topologies import line_topology
from repro.protocols.base import PartyLogic, Protocol
from repro.protocols.gossip import PairwiseExchangeProtocol


class _BadScheduleProtocol(Protocol):
    """Schedules a transmission on a non-existent link (for validation tests)."""

    def build_schedule(self):
        return [[(0, 2)]]

    def create_party(self, party):  # pragma: no cover - never reached
        raise NotImplementedError


class _DuplicateSlotProtocol(Protocol):
    def build_schedule(self):
        return [[(0, 1), (0, 1)]]

    def create_party(self, party):  # pragma: no cover - never reached
        raise NotImplementedError


class _NonBinaryParty(PartyLogic):
    def send_bit(self, round_index, receiver, received):
        return 2

    def compute_output(self, received):
        return None


class _NonBinaryProtocol(Protocol):
    def build_schedule(self):
        return [[(0, 1)]]

    def create_party(self, party):
        return _NonBinaryParty(party)


class TestScheduleValidation:
    def test_rejects_non_link_transmissions(self):
        protocol = _BadScheduleProtocol(line_topology(3))
        with pytest.raises(ValueError):
            protocol.schedule()

    def test_rejects_duplicate_slots(self):
        protocol = _DuplicateSlotProtocol(line_topology(3))
        with pytest.raises(ValueError):
            protocol.schedule()

    def test_rejects_disconnected_graph(self):
        from repro.network.graph import Graph

        graph = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            PairwiseExchangeProtocol(graph, {0: 0, 1: 0, 2: 0})

    def test_rejects_non_binary_bits(self):
        protocol = _NonBinaryProtocol(line_topology(3))
        with pytest.raises(ValueError):
            protocol.run_noiseless()


class TestDerivedQuantities:
    def test_communication_complexity(self, gossip_line5):
        # 2 directions * 4 links * 6 phases
        assert gossip_line5.communication_complexity() == 48
        assert gossip_line5.num_rounds == 6

    def test_transmissions_on_link(self, gossip_line5):
        assert gossip_line5.transmissions_on_link(0, 1) == 12
        assert gossip_line5.transmissions_on_link(1, 0) == 12

    def test_schedule_is_cached(self, gossip_line5):
        assert gossip_line5.schedule() is gossip_line5.schedule()


class TestNoiselessExecution:
    def test_outputs_and_maps_present(self, gossip_line5):
        execution = gossip_line5.run_noiseless()
        assert set(execution.outputs) == set(range(5))
        assert set(execution.received) == set(range(5))
        assert set(execution.sent) == set(range(5))

    def test_reception_matches_send(self, gossip_line5):
        execution = gossip_line5.run_noiseless()
        for receiver, received_map in execution.received.items():
            for (round_index, sender), bit in received_map.items():
                assert execution.sent[sender][(round_index, receiver)] == bit

    def test_deterministic(self, gossip_line5):
        first = gossip_line5.run_noiseless()
        second = gossip_line5.run_noiseless()
        assert first.outputs == second.outputs

    def test_send_bits_only_depend_on_past(self):
        """Causality: the reference execution feeds only earlier-round receptions."""

        class _ProbeParty(PartyLogic):
            def __init__(self, party):
                super().__init__(party)
                self.seen_rounds = []

            def send_bit(self, round_index, receiver, received):
                assert all(r < round_index for (r, _s) in received)
                return 0

            def compute_output(self, received):
                return len(received)

        class _ProbeProtocol(Protocol):
            def build_schedule(self):
                return [[(0, 1), (1, 0)], [(1, 2)], [(2, 1)]]

            def create_party(self, party):
                return _ProbeParty(party)

        _ProbeProtocol(line_topology(3)).run_noiseless()
