"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "distributed_smoke: end-to-end distributed smoke gate (subprocess workers); "
        "opt in with REPRO_SMOKE_DISTRIBUTED=1",
    )
    config.addinivalue_line(
        "markers",
        "smoke: fast end-to-end entry-point checks (scripts run as subprocesses); "
        "always on, deselect with -m 'not smoke'",
    )

from repro.network.graph import Graph
from repro.network.topologies import complete_topology, grid_topology, line_topology, ring_topology, star_topology
from repro.protocols.aggregation import AggregationProtocol
from repro.protocols.gossip import PairwiseExchangeProtocol, ParityGossipProtocol
from repro.protocols.line_example import LineExampleProtocol


@pytest.fixture
def line5() -> Graph:
    return line_topology(5)


@pytest.fixture
def ring5() -> Graph:
    return ring_topology(5)


@pytest.fixture
def star6() -> Graph:
    return star_topology(6)


@pytest.fixture
def clique4() -> Graph:
    return complete_topology(4)


@pytest.fixture
def grid33() -> Graph:
    return grid_topology(3, 3)


@pytest.fixture
def gossip_line5(line5: Graph) -> ParityGossipProtocol:
    return ParityGossipProtocol(line5, {i: i % 2 for i in range(5)}, phases=6)


@pytest.fixture
def gossip_clique4(clique4: Graph) -> ParityGossipProtocol:
    return ParityGossipProtocol(clique4, {i: (i + 1) % 2 for i in range(4)}, phases=5)


@pytest.fixture
def pairwise_line4() -> PairwiseExchangeProtocol:
    graph = line_topology(4)
    return PairwiseExchangeProtocol(graph, {i: i % 2 for i in range(4)})


@pytest.fixture
def aggregation_line6() -> AggregationProtocol:
    graph = line_topology(6)
    return AggregationProtocol(graph, {i: i + 1 for i in range(6)}, value_bits=5)


@pytest.fixture
def line_example6() -> LineExampleProtocol:
    graph = line_topology(6)
    return LineExampleProtocol(graph, {i: i % 2 for i in range(6)}, blocks=2)
