"""Unit tests for repro.utils.rng."""

from __future__ import annotations

import pytest

from repro.utils.rng import fork, fork_seed, make_rng, random_bits, random_bitstring_int, stable_label_hash


class TestStability:
    def test_stable_label_hash_is_deterministic(self):
        assert stable_label_hash("abc") == stable_label_hash("abc")
        assert stable_label_hash("abc") != stable_label_hash("abd")

    def test_make_rng_reproducible(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_fork_same_label_same_stream(self):
        assert fork(1, "x").random() == fork(1, "x").random()

    def test_fork_different_labels_differ(self):
        assert fork(1, "x").random() != fork(1, "y").random()

    def test_fork_seed_matches_fork(self):
        # fork() must be equivalent to seeding with fork_seed().
        assert fork(3, "label").random() == make_rng(fork_seed(3, "label")).random()


class TestBitGeneration:
    def test_random_bits_length_and_values(self):
        bits = random_bits(make_rng(0), 100)
        assert len(bits) == 100
        assert set(bits) <= {0, 1}

    def test_random_bits_negative_count(self):
        with pytest.raises(ValueError):
            random_bits(make_rng(0), -1)

    def test_random_bitstring_int_width(self):
        value = random_bitstring_int(make_rng(0), 40)
        assert 0 <= value < (1 << 40)

    def test_random_bitstring_int_zero(self):
        assert random_bitstring_int(make_rng(0), 0) == 0

    def test_random_bitstring_roughly_balanced(self):
        value = random_bitstring_int(make_rng(5), 4096)
        ones = value.bit_count()
        assert 1500 < ones < 2600
