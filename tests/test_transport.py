"""Unit tests for the synchronous noisy transport.

The second half of this file is the property-style equivalence suite of the
batched window path: random graphs, random window sequences and many seeds
run through both ``exchange_window`` (batched) and
``exchange_window_per_slot`` (the single-slot reference) for every stock
adversary, asserting identical deliveries, identical ``ChannelStats``,
identical clock, and identical adversary-internal state (budgets, cursors,
RNG streams).
"""

from __future__ import annotations

import random

import pytest

from repro.adversary.base import Adversary, NoiseBudget, NoiselessAdversary
from repro.adversary.oblivious import AdditiveObliviousAdversary, FixingObliviousAdversary
from repro.adversary.strategies import (
    BurstAdversary,
    CompositeAdversary,
    DeletionAdversary,
    EchoSpoofingAdversary,
    LinkTargetedAdversary,
    PhaseTargetedAdaptiveAdversary,
    RandomNoiseAdversary,
    RotatingLinkAdaptiveAdversary,
)
from repro.network.topologies import line_topology, random_connected_topology
from repro.network.transport import NoisyNetwork
from repro.utils.rng import make_rng


class TestTransmit:
    def test_clean_delivery(self):
        network = NoisyNetwork(line_topology(3))
        assert network.transmit(0, 1, 1, phase="simulation") == 1
        assert network.stats.transmissions == 1

    def test_silence_costs_nothing(self):
        network = NoisyNetwork(line_topology(3))
        assert network.transmit(0, 1, None, phase="simulation") is None
        assert network.stats.transmissions == 0

    def test_rejects_non_links(self):
        network = NoisyNetwork(line_topology(3))
        with pytest.raises(ValueError):
            network.transmit(0, 2, 1, phase="simulation")

    def test_rejects_bad_symbols(self):
        network = NoisyNetwork(line_topology(3))
        with pytest.raises(ValueError):
            network.transmit(0, 1, 7, phase="simulation")

    def test_round_counter(self):
        network = NoisyNetwork(line_topology(3))
        network.advance_rounds(5)
        assert network.current_round == 5
        with pytest.raises(ValueError):
            network.advance_rounds(-1)


class TestExchangeWindow:
    def test_window_delivers_all_directed_links(self):
        graph = line_topology(3)
        network = NoisyNetwork(graph)
        received = network.exchange_window({(0, 1): [1, 0]}, window_rounds=2, phase="simulation")
        assert set(received) == set(graph.directed_edges())
        assert received[(0, 1)] == [1, 0]
        assert received[(1, 0)] == [None, None]
        assert network.current_round == 2

    def test_window_rejects_overlong_messages(self):
        network = NoisyNetwork(line_topology(3))
        with pytest.raises(ValueError):
            network.exchange_window({(0, 1): [1, 1, 1]}, window_rounds=2, phase="simulation")

    def test_window_counts_communication(self):
        network = NoisyNetwork(line_topology(3))
        network.exchange_window({(0, 1): [1, 1], (2, 1): [0]}, window_rounds=3, phase="simulation")
        assert network.communication() == 3

    def test_deletions_recorded(self):
        adversary = DeletionAdversary(deletion_probability=1.0, seed=0)
        network = NoisyNetwork(line_topology(3), adversary=adversary)
        received = network.exchange_window({(0, 1): [1]}, window_rounds=1, phase="simulation")
        assert received[(0, 1)] == [None]
        assert network.stats.deletions == 1
        assert network.noise_fraction() == 1.0

    def test_insertions_possible_on_idle_links(self):
        adversary = RandomNoiseAdversary(corruption_probability=0.0, insertion_probability=1.0, seed=1)
        network = NoisyNetwork(line_topology(3), adversary=adversary)
        received = network.exchange_window({}, window_rounds=1, phase="simulation")
        # every directed link received an inserted symbol
        assert all(symbols[0] in (0, 1) for symbols in received.values())
        assert network.stats.insertions == len(received)
        # insertions do not count as transmissions
        assert network.stats.transmissions == 0

    def test_non_inserting_adversary_skips_idle_slots(self):
        network = NoisyNetwork(line_topology(3), adversary=NoiselessAdversary())
        received = network.exchange_window({}, window_rounds=4, phase="simulation")
        assert all(symbols == [None] * 4 for symbols in received.values())
        assert network.stats.transmissions == 0

    def test_rejects_unknown_link_keys(self):
        """Messages keyed on non-edges used to be silently dropped; now they raise."""
        network = NoisyNetwork(line_topology(3))
        with pytest.raises(ValueError, match="unknown link"):
            network.exchange_window({(0, 2): [1]}, window_rounds=1, phase="simulation")
        # nothing was transmitted and the clock did not move
        assert network.stats.transmissions == 0
        assert network.current_round == 0

    def test_rejects_unknown_link_keys_per_slot_path(self):
        network = NoisyNetwork(line_topology(3))
        with pytest.raises(ValueError, match="unknown link"):
            network.exchange_window_per_slot({(2, 0): [1]}, window_rounds=1, phase="simulation")

    def test_rejects_invalid_symbols_in_messages(self):
        network = NoisyNetwork(line_topology(3))
        with pytest.raises(ValueError, match="invalid channel symbol"):
            network.exchange_window({(0, 1): [7]}, window_rounds=1, phase="simulation")

    def test_rejects_notify_override_on_inherited_native_corrupt_window(self):
        """Subclassing a stock adversary's corrupt_window past a notify hook
        would silently skip notifications on the batched path — the network
        refuses the pairing at construction time."""

        class WatchingRandomNoise(RandomNoiseAdversary):
            def notify_delivery(self, ctx, sent, received):
                pass  # pretend to record traffic

        with pytest.raises(ValueError, match="overrides notify_delivery"):
            NoisyNetwork(
                line_topology(3),
                adversary=WatchingRandomNoise(corruption_probability=0.1, seed=0),
            )

        class RepairedWatchingRandomNoise(WatchingRandomNoise):
            corrupt_window = Adversary.corrupt_window  # restore the fallback

        NoisyNetwork(
            line_topology(3),
            adversary=RepairedWatchingRandomNoise(corruption_probability=0.1, seed=0),
        )

    def test_adversary_cannot_mutate_the_sent_record(self):
        """The window reaches the adversary as an immutable tuple, so in-place
        mutation (which would corrupt the accounting's sent record) fails loudly."""

        class InPlaceAdversary(NoiselessAdversary):
            def corrupt_window(self, ctx, symbols):
                symbols[0] = 1 - symbols[0]  # type: ignore[index]
                return list(symbols)

        network = NoisyNetwork(line_topology(3), adversary=InPlaceAdversary())
        with pytest.raises(TypeError):
            network.exchange_window({(0, 1): [1]}, window_rounds=1, phase="simulation")

    def test_adversary_returning_its_input_still_accounts_correctly(self):
        """Returning the input tuple unchanged is normalised to a clean list."""

        class EchoAdversary(NoiselessAdversary):
            def corrupt_window(self, ctx, symbols):
                return symbols

        network = NoisyNetwork(line_topology(3), adversary=EchoAdversary())
        received = network.exchange_window({(0, 1): [1, 0]}, window_rounds=2, phase="simulation")
        assert received[(0, 1)] == [1, 0]
        assert isinstance(received[(0, 1)], list)
        assert network.stats.transmissions == 2
        assert network.stats.corruptions == 0

    def test_per_slot_path_matches_on_simple_window(self):
        batched = NoisyNetwork(line_topology(3))
        per_slot = NoisyNetwork(line_topology(3))
        messages = {(0, 1): [1, 0, None], (1, 2): [1]}
        a = batched.exchange_window(messages, 3, phase="simulation")
        b = per_slot.exchange_window_per_slot(messages, 3, phase="simulation")
        assert a == b
        assert batched.stats == per_slot.stats
        assert batched.current_round == per_slot.current_round


# --------------------------------------------------------------------------
# Property-style equivalence of the batched and per-slot transmission paths.
# --------------------------------------------------------------------------

def _random_graph(rng: random.Random):
    num_nodes = rng.randint(2, 7)
    return random_connected_topology(
        num_nodes, edge_probability=rng.choice([0.0, 0.3, 0.8]), rng=rng
    )


def _random_messages(rng: random.Random, graph, window_rounds: int):
    """A random (possibly sparse, possibly ragged) window workload."""
    messages = {}
    for link in graph.directed_edges():
        roll = rng.random()
        if roll < 0.3:
            continue  # silent link
        length = rng.randint(0, window_rounds)
        messages[link] = [rng.choice([0, 1, None]) for _ in range(length)]
    return messages


def _random_oblivious_pattern(rng: random.Random, graph, values):
    pattern = {}
    links = graph.directed_edges()
    for _ in range(rng.randint(0, 12)):
        key = (rng.randint(0, 40), *rng.choice(links))
        pattern[key] = rng.choice(values)
    return pattern


def _adversary_state(adversary: Adversary):
    """Everything observable about an adversary's mutable state."""
    state = {}
    for name in ("budget", "_budget"):
        budget = getattr(adversary, name, None)
        if isinstance(budget, NoiseBudget):
            state[name] = (budget.transmissions_seen, budget.corruptions_spent)
    for name in ("_spent", "_cursor", "_pending_spoof"):
        if hasattr(adversary, name):
            state[name] = getattr(adversary, name)
    rng = getattr(adversary, "_rng", None)
    if rng is not None:
        state["_rng"] = rng.getstate()
    if isinstance(adversary, CompositeAdversary):
        state["components"] = [_adversary_state(component) for component in adversary.components]
    return state


def _composite_builder(seed: int) -> Adversary:
    return CompositeAdversary(
        components=(
            RandomNoiseAdversary(
                corruption_probability=0.1, insertion_probability=0.05, seed=seed
            ),
            DeletionAdversary(deletion_probability=0.1, seed=seed + 1),
            LinkTargetedAdversary(target=(0, 1), fraction=0.2, seed=seed + 2),
        )
    )


#: One builder per stock adversary configuration; each takes (seed, graph, rng)
#: and must build a fresh, identically-initialised instance on every call.
STOCK_ADVERSARIES = {
    "noiseless": lambda seed, graph, rng: NoiselessAdversary(),
    "additive-oblivious": lambda seed, graph, rng: AdditiveObliviousAdversary(
        pattern=_random_oblivious_pattern(rng, graph, values=(1, 2))
    ),
    "fixing-oblivious": lambda seed, graph, rng: FixingObliviousAdversary(
        pattern=_random_oblivious_pattern(rng, graph, values=(0, 1, None))
    ),
    "random-noise": lambda seed, graph, rng: RandomNoiseAdversary(
        corruption_probability=0.15, seed=seed
    ),
    "random-noise-inserting": lambda seed, graph, rng: RandomNoiseAdversary(
        corruption_probability=0.1, insertion_probability=0.08, seed=seed
    ),
    "random-noise-budgeted": lambda seed, graph, rng: RandomNoiseAdversary(
        corruption_probability=0.5,
        insertion_probability=0.2,
        seed=seed,
        budget=NoiseBudget(fraction=0.1, absolute_allowance=2),
    ),
    "link-targeted": lambda seed, graph, rng: LinkTargetedAdversary(
        target=(0, 1), fraction=0.3, seed=seed
    ),
    "link-targeted-capped": lambda seed, graph, rng: LinkTargetedAdversary(
        target=(0, 1), max_corruptions=3, phases=("simulation",), seed=seed
    ),
    "burst": lambda seed, graph, rng: BurstAdversary(
        start_round=2, end_round=9, max_corruptions=6, seed=seed
    ),
    "deletion": lambda seed, graph, rng: DeletionAdversary(
        deletion_probability=0.2, seed=seed
    ),
    "deletion-budgeted": lambda seed, graph, rng: DeletionAdversary(
        deletion_probability=0.6, seed=seed, budget=NoiseBudget(fraction=0.15)
    ),
    "composite": lambda seed, graph, rng: _composite_builder(seed),
    "adaptive-phase-targeted": lambda seed, graph, rng: PhaseTargetedAdaptiveAdversary(
        fraction=0.2, phases=("meeting_points", "simulation"), seed=seed
    ),
    "adaptive-rotating-link": lambda seed, graph, rng: RotatingLinkAdaptiveAdversary(
        links=tuple(graph.directed_edges()), fraction=0.3, seed=seed
    ),
    "echo-spoofing": lambda seed, graph, rng: EchoSpoofingAdversary(
        target=(0, 1), fraction=0.4, seed=seed
    ),
}

_PHASES = ("randomness_exchange", "meeting_points", "flag_passing", "simulation", "rewind")


@pytest.mark.parametrize("adversary_name", sorted(STOCK_ADVERSARIES))
def test_batched_path_is_bit_identical_to_per_slot_path(adversary_name):
    """The tentpole guarantee: same deliveries, stats and budgets on both paths."""
    builder = STOCK_ADVERSARIES[adversary_name]
    for trial in range(8):
        layout_rng = make_rng(1000 * trial + 7)
        graph = _random_graph(layout_rng)
        # Two adversaries built identically (same seeds, same patterns): one
        # per path.  The pattern-drawing RNG must be forked per build so both
        # instances see the same draws.
        pattern_seed = layout_rng.randint(0, 2**31)
        batched_adversary = builder(trial, graph, make_rng(pattern_seed))
        per_slot_adversary = builder(trial, graph, make_rng(pattern_seed))

        batched = NoisyNetwork(graph, adversary=batched_adversary)
        per_slot = NoisyNetwork(graph, adversary=per_slot_adversary)

        # A short session of consecutive windows with varying widths/phases,
        # driven by one traffic RNG so both paths see identical messages.
        traffic_seed = layout_rng.randint(0, 2**31)
        traffic_rng = make_rng(traffic_seed)
        for step in range(5):
            window_rounds = traffic_rng.choice([0, 1, 1, 2, 5, 9])
            phase = traffic_rng.choice(_PHASES)
            iteration = step
            messages = _random_messages(traffic_rng, graph, window_rounds)
            delivered_batched = batched.exchange_window(messages, window_rounds, phase, iteration)
            delivered_per_slot = per_slot.exchange_window_per_slot(
                messages, window_rounds, phase, iteration
            )
            assert delivered_batched == delivered_per_slot, (
                f"{adversary_name}: deliveries diverged (trial {trial}, step {step})"
            )
        assert batched.stats == per_slot.stats, f"{adversary_name}: stats diverged (trial {trial})"
        assert batched.current_round == per_slot.current_round
        assert _adversary_state(batched_adversary) == _adversary_state(per_slot_adversary), (
            f"{adversary_name}: adversary state diverged (trial {trial})"
        )


@pytest.mark.parametrize("adversary_name", sorted(STOCK_ADVERSARIES))
def test_packed_path_is_bit_identical_to_symbol_path(adversary_name):
    """The packed-plane guarantee: exchange_window_packed delivers the same
    corruption mask, stats, clock and adversary end state as exchange_window
    for every stock adversary (the pin exchange_window_packed's docstring
    promises)."""
    from repro.utils.bitstring import pack_symbols, unpack_symbols

    builder = STOCK_ADVERSARIES[adversary_name]
    for trial in range(8):
        layout_rng = make_rng(9000 * trial + 13)
        graph = _random_graph(layout_rng)
        pattern_seed = layout_rng.randint(0, 2**31)
        packed_adversary = builder(trial, graph, make_rng(pattern_seed))
        symbol_adversary = builder(trial, graph, make_rng(pattern_seed))

        packed_network = NoisyNetwork(graph, adversary=packed_adversary)
        symbol_network = NoisyNetwork(graph, adversary=symbol_adversary)

        traffic_seed = layout_rng.randint(0, 2**31)
        traffic_rng = make_rng(traffic_seed)
        for step in range(5):
            window_rounds = traffic_rng.choice([0, 1, 1, 2, 5, 9])
            phase = traffic_rng.choice(_PHASES)
            sparse = traffic_rng.random() < 0.3
            messages = _random_messages(traffic_rng, graph, window_rounds)
            # The packed caller sends plane pairs; ragged windows pad with
            # silence exactly like exchange_window does internally.
            packed_messages = {
                link: pack_symbols(symbols) for link, symbols in messages.items()
            }
            delivered_packed = packed_network.exchange_window_packed(
                packed_messages, window_rounds, phase, step, sparse=sparse
            )
            delivered_symbols = symbol_network.exchange_window(
                messages, window_rounds, phase, step, sparse=sparse
            )
            assert set(delivered_packed) == set(delivered_symbols)
            for link, (bits, present) in delivered_packed.items():
                assert bits & ~present == 0, f"{adversary_name}: plane invariant broken"
                assert unpack_symbols(bits, present, window_rounds) == list(
                    delivered_symbols[link]
                ), f"{adversary_name}: deliveries diverged (trial {trial}, step {step}, {link})"
        assert packed_network.stats == symbol_network.stats, (
            f"{adversary_name}: stats diverged (trial {trial})"
        )
        assert packed_network.current_round == symbol_network.current_round
        assert _adversary_state(packed_adversary) == _adversary_state(symbol_adversary), (
            f"{adversary_name}: adversary state diverged (trial {trial})"
        )
        assert packed_network.packed_dispatches == 5
        assert symbol_network.packed_dispatches == 0


def test_batched_flag_routes_through_per_slot_path():
    """`NoisyNetwork.batched = False` makes exchange_window use the reference path."""
    graph = line_topology(3)
    a = NoisyNetwork(graph, adversary=RandomNoiseAdversary(corruption_probability=0.3, seed=5))
    b = NoisyNetwork(graph, adversary=RandomNoiseAdversary(corruption_probability=0.3, seed=5))
    b.batched = False
    messages = {(0, 1): [1, 0, 1, 1], (2, 1): [0, 0, 1]}
    assert a.exchange_window(messages, 4, "simulation") == b.exchange_window(
        messages, 4, "simulation"
    )
    assert a.stats == b.stats


class TestDispatchCounters:
    """The observability counters on the transport are plain int attributes:
    they classify every window (sparse fast path vs dense) without touching
    deliveries, stats, or any RNG stream."""

    def test_windows_are_classified_sparse_or_dense(self):
        graph = line_topology(3)
        network = NoisyNetwork(graph, adversary=NoiselessAdversary())
        # sparse permitted + non-inserting adversary → the sparse fast path
        network.exchange_window({(0, 1): [1, 0]}, 2, "simulation", sparse=True)
        assert (network.windows_exchanged, network.sparse_dispatches, network.dense_dispatches) == (1, 1, 0)
        network.exchange_window({(0, 1): [1, 0]}, 2, "simulation")  # sparse not requested
        assert (network.sparse_dispatches, network.dense_dispatches) == (1, 1)
        inserting = NoisyNetwork(
            graph,
            adversary=RandomNoiseAdversary(
                corruption_probability=0.1, insertion_probability=0.1, seed=3
            ),
        )
        # sparse requested but the adversary may insert → dense anyway
        inserting.exchange_window({(0, 1): [1, 0]}, 2, "simulation", sparse=True)
        assert (inserting.sparse_dispatches, inserting.dense_dispatches) == (0, 1)

    def test_per_slot_path_counts_dense(self):
        graph = line_topology(3)
        network = NoisyNetwork(graph, adversary=NoiselessAdversary())
        network.exchange_window_per_slot({(0, 1): [1]}, 1, "simulation")
        assert (network.windows_exchanged, network.dense_dispatches) == (1, 1)

    def test_deliveries_and_stats_are_bit_identical_under_an_obs_scope(self):
        from repro.obs import MetricsRegistry, Tracer, use_obs

        graph = line_topology(4)
        messages = {(0, 1): [1, 0, 1], (2, 1): [0, 1, 0], (3, 2): [1, 1, 1]}

        def drive(network):
            out = []
            for phase in ("meeting_points", "simulation", "rewind"):
                out.append(network.exchange_window(messages, 3, phase))
            return out

        plain = NoisyNetwork(graph, adversary=RandomNoiseAdversary(corruption_probability=0.2, seed=9))
        observed = NoisyNetwork(graph, adversary=RandomNoiseAdversary(corruption_probability=0.2, seed=9))
        plain_out = drive(plain)
        with use_obs(metrics=MetricsRegistry(), tracer=Tracer()):
            observed_out = drive(observed)
        assert plain_out == observed_out
        assert plain.stats == observed.stats
        assert plain.current_round == observed.current_round
        assert (plain.windows_exchanged, plain.sparse_dispatches, plain.dense_dispatches) == (
            observed.windows_exchanged,
            observed.sparse_dispatches,
            observed.dense_dispatches,
        )


class TestGuardMessageText:
    """The guard paths promise *exact* error text (callers and docs quote it
    verbatim), so these pin the full messages rather than substrings."""

    def test_unknown_link_rejection_text(self):
        network = NoisyNetwork(line_topology(3))
        expected = "message keyed on unknown link (0, 2): not a directed edge of the network"
        with pytest.raises(ValueError) as excinfo:
            network.exchange_window({(0, 2): [1]}, window_rounds=1, phase="simulation")
        assert str(excinfo.value) == expected
        with pytest.raises(ValueError) as excinfo:
            network.exchange_window_per_slot({(0, 2): [1]}, window_rounds=1, phase="simulation")
        assert str(excinfo.value) == expected

    def test_notify_override_rejection_text(self):
        class WatchingBurst(BurstAdversary):
            def notify_delivery(self, ctx, sent, received):
                pass

        with pytest.raises(ValueError) as excinfo:
            NoisyNetwork(
                line_topology(3),
                adversary=WatchingBurst(start_round=0, end_round=5, max_corruptions=2, seed=0),
            )
        assert str(excinfo.value) == (
            "WatchingBurst overrides notify_delivery but inherits corrupt_window "
            "from BurstAdversary, whose batch path never notifies: override "
            "corrupt_window too, or restore the per-slot fallback with "
            "`corrupt_window = Adversary.corrupt_window`"
        )


class TestPhaseExchange:
    """Guards and accounting of the whole-phase merged dispatch."""

    def _network(self, adversary=None):
        return NoisyNetwork(line_topology(3), adversary=adversary or NoiselessAdversary())

    def test_rejects_non_slot_addressed_adversary(self):
        network = self._network(RandomNoiseAdversary(corruption_probability=0.1, seed=0))
        with pytest.raises(ValueError) as excinfo:
            network.exchange_phase(4, "simulation")
        assert str(excinfo.value) == (
            "RandomNoiseAdversary is not slot-addressed: exchange_phase requires "
            "the corruption_schedule contract (slot_addressed=True)"
        )

    def test_send_rejects_unknown_link(self):
        phase = self._network().exchange_phase(2, "simulation")
        with pytest.raises(ValueError) as excinfo:
            phase.send((0, 2), 0, 1)
        assert str(excinfo.value) == (
            "message keyed on unknown link (0, 2): not a directed edge of the network"
        )

    def test_send_rejects_invalid_symbol(self):
        phase = self._network().exchange_phase(2, "simulation")
        with pytest.raises(ValueError, match="invalid channel symbol 7"):
            phase.send((0, 1), 0, 7)

    def test_send_rejects_out_of_window_offsets(self):
        phase = self._network().exchange_phase(2, "simulation")
        with pytest.raises(ValueError, match="offset 2 outside the 2-round phase window"):
            phase.send((0, 1), 2, 1)
        with pytest.raises(ValueError, match="offset -1 outside the 2-round phase window"):
            phase.send((0, 1), -1, 1)

    def test_send_rejects_double_sends_on_one_slot(self):
        phase = self._network().exchange_phase(2, "simulation")
        phase.send((0, 1), 0, 1)
        with pytest.raises(
            ValueError, match=r"slot 0 on link \(0, 1\) already carried a symbol this phase"
        ):
            phase.send((0, 1), 0, 0)

    def test_commit_is_single_shot(self):
        network = self._network()
        phase = network.exchange_phase(2, "simulation")
        phase.send((0, 1), 0, 1)
        phase.commit()
        with pytest.raises(RuntimeError, match="phase already committed"):
            phase.commit()
        with pytest.raises(RuntimeError, match="phase already committed"):
            phase.send((0, 1), 1, 1)

    def test_commit_accounts_whole_phase_once(self):
        network = self._network()
        phase = network.exchange_phase(3, "flag_passing")
        assert phase.send((0, 1), 0, 1) == 1
        assert phase.send((1, 2), 2, 0) == 0
        assert phase.delivered((0, 1), 0) == 1
        assert phase.delivered((1, 0), 1) is None  # untouched slot, no insertions
        phase.commit()
        assert network.current_round == 3
        assert network.stats.transmissions == 2
        assert (network.windows_exchanged, network.merged_dispatches) == (1, 1)
