"""Unit tests for the synchronous noisy transport."""

from __future__ import annotations

import pytest

from repro.adversary.base import NoiselessAdversary
from repro.adversary.strategies import DeletionAdversary, RandomNoiseAdversary
from repro.network.topologies import line_topology
from repro.network.transport import NoisyNetwork


class TestTransmit:
    def test_clean_delivery(self):
        network = NoisyNetwork(line_topology(3))
        assert network.transmit(0, 1, 1, phase="simulation") == 1
        assert network.stats.transmissions == 1

    def test_silence_costs_nothing(self):
        network = NoisyNetwork(line_topology(3))
        assert network.transmit(0, 1, None, phase="simulation") is None
        assert network.stats.transmissions == 0

    def test_rejects_non_links(self):
        network = NoisyNetwork(line_topology(3))
        with pytest.raises(ValueError):
            network.transmit(0, 2, 1, phase="simulation")

    def test_rejects_bad_symbols(self):
        network = NoisyNetwork(line_topology(3))
        with pytest.raises(ValueError):
            network.transmit(0, 1, 7, phase="simulation")

    def test_round_counter(self):
        network = NoisyNetwork(line_topology(3))
        network.advance_rounds(5)
        assert network.current_round == 5
        with pytest.raises(ValueError):
            network.advance_rounds(-1)


class TestExchangeWindow:
    def test_window_delivers_all_directed_links(self):
        graph = line_topology(3)
        network = NoisyNetwork(graph)
        received = network.exchange_window({(0, 1): [1, 0]}, window_rounds=2, phase="simulation")
        assert set(received) == set(graph.directed_edges())
        assert received[(0, 1)] == [1, 0]
        assert received[(1, 0)] == [None, None]
        assert network.current_round == 2

    def test_window_rejects_overlong_messages(self):
        network = NoisyNetwork(line_topology(3))
        with pytest.raises(ValueError):
            network.exchange_window({(0, 1): [1, 1, 1]}, window_rounds=2, phase="simulation")

    def test_window_counts_communication(self):
        network = NoisyNetwork(line_topology(3))
        network.exchange_window({(0, 1): [1, 1], (2, 1): [0]}, window_rounds=3, phase="simulation")
        assert network.communication() == 3

    def test_deletions_recorded(self):
        adversary = DeletionAdversary(deletion_probability=1.0, seed=0)
        network = NoisyNetwork(line_topology(3), adversary=adversary)
        received = network.exchange_window({(0, 1): [1]}, window_rounds=1, phase="simulation")
        assert received[(0, 1)] == [None]
        assert network.stats.deletions == 1
        assert network.noise_fraction() == 1.0

    def test_insertions_possible_on_idle_links(self):
        adversary = RandomNoiseAdversary(corruption_probability=0.0, insertion_probability=1.0, seed=1)
        network = NoisyNetwork(line_topology(3), adversary=adversary)
        received = network.exchange_window({}, window_rounds=1, phase="simulation")
        # every directed link received an inserted symbol
        assert all(symbols[0] in (0, 1) for symbols in received.values())
        assert network.stats.insertions == len(received)
        # insertions do not count as transmissions
        assert network.stats.transmissions == 0

    def test_non_inserting_adversary_skips_idle_slots(self):
        network = NoisyNetwork(line_topology(3), adversary=NoiselessAdversary())
        received = network.exchange_window({}, window_rounds=4, phase="simulation")
        assert all(symbols == [None] * 4 for symbols in received.values())
        assert network.stats.transmissions == 0
