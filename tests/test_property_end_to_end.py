"""Property-based end-to-end tests.

These are the highest-value invariants of the reproduction:

* **Correctness under tolerated noise** — for random small protocols, random
  topologies and random (budgeted) noise, the simulation either reproduces
  the noiseless outputs exactly or the injected noise exceeded the scheme's
  regime; under no noise it must always succeed.
* **Accounting invariants** — communication and corruption counters are
  internally consistent for every run.
* **Meeting-points invariant** — for arbitrary divergent transcript pairs,
  the mechanism always reconverges to a common prefix with bounded overshoot.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.strategies import LinkTargetedAdversary, RandomNoiseAdversary
from repro.core.engine import simulate
from repro.core.meeting_points import STATUS_SIMULATE, MeetingPointsSession
from repro.core.parameters import crs_oblivious_scheme
from repro.core.transcript import ChunkRecord, LinkTranscript
from repro.hashing.inner_product import InnerProductHash
from repro.hashing.seeds import CrsSeedSource
from repro.network.topologies import random_connected_topology
from repro.protocols.random_protocol import RandomProtocol

_SLOW = settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _random_workload(num_nodes: int, num_rounds: int, density: float, seed: int) -> RandomProtocol:
    graph = random_connected_topology(num_nodes, 0.3, seed=seed)
    inputs = {party: (seed * 31 + party * 7) % 1024 for party in graph.nodes}
    return RandomProtocol(graph, inputs, num_rounds=num_rounds, density=density, seed=seed + 1)


class TestEndToEndProperties:
    @_SLOW
    @given(
        num_nodes=st.integers(3, 6),
        num_rounds=st.integers(4, 14),
        density=st.floats(0.2, 0.8),
        seed=st.integers(0, 10_000),
    )
    def test_noiseless_simulation_always_correct(self, num_nodes, num_rounds, density, seed):
        protocol = _random_workload(num_nodes, num_rounds, density, seed)
        result = simulate(protocol, scheme=crs_oblivious_scheme(), seed=seed)
        assert result.success

    @_SLOW
    @given(
        num_nodes=st.integers(3, 5),
        seed=st.integers(0, 10_000),
        errors=st.integers(1, 2),
    )
    def test_few_targeted_errors_always_recovered(self, num_nodes, seed, errors):
        protocol = _random_workload(num_nodes, 10, 0.5, seed)
        edges = protocol.graph.edges
        target = edges[seed % len(edges)]
        adversary = LinkTargetedAdversary(
            target=target, phases=("simulation",), max_corruptions=errors, seed=seed
        )
        result = simulate(protocol, scheme=crs_oblivious_scheme(), adversary=adversary, seed=seed)
        assert result.success

    @_SLOW
    @given(seed=st.integers(0, 10_000))
    def test_accounting_invariants(self, seed):
        protocol = _random_workload(4, 8, 0.5, seed)
        adversary = RandomNoiseAdversary(corruption_probability=0.004, insertion_probability=0.001, seed=seed)
        result = simulate(protocol, scheme=crs_oblivious_scheme(), adversary=adversary, seed=seed)
        metrics = result.metrics
        # phase breakdowns sum to the totals
        assert sum(metrics.communication_by_phase.values()) == metrics.simulation_communication
        assert sum(metrics.corruptions_by_phase.values()) == metrics.corruptions
        # the noise fraction is consistent with its definition
        if metrics.simulation_communication:
            assert abs(metrics.noise_fraction - metrics.corruptions / metrics.simulation_communication) < 1e-9
        # rates are inverses
        if metrics.simulation_communication:
            assert metrics.rate * metrics.overhead == 1.0 or abs(metrics.rate * metrics.overhead - 1.0) < 1e-9
        # iteration counts within budget
        assert 1 <= result.iterations_run <= result.iterations_budget


class TestMeetingPointsProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        common=st.lists(st.integers(0, 3), min_size=0, max_size=10),
        suffix_u=st.lists(st.integers(0, 3), min_size=0, max_size=4),
        suffix_v=st.lists(st.integers(0, 3), min_size=0, max_size=4),
        master_seed=st.integers(0, 1_000),
    )
    def test_divergent_transcripts_always_reconverge(self, common, suffix_u, suffix_v, master_seed):
        # Make the suffixes genuinely divergent (distinct chunk content).
        suffix_u = [(value, 0) for value in suffix_u]
        suffix_v = [(value, 1) for value in suffix_v]

        def build(owner, neighbor, payloads):
            transcript = LinkTranscript(owner, neighbor)
            for index, payload in enumerate(payloads, start=1):
                if isinstance(payload, tuple):
                    view = payload
                else:
                    view = (payload,)
                transcript.append(ChunkRecord(chunk_index=index, link_view=view))
            return transcript

        transcript_u = build(0, 1, list(common) + suffix_u)
        transcript_v = build(1, 0, list(common) + suffix_v)
        divergence = max(len(suffix_u), len(suffix_v))

        hasher = InnerProductHash(14)
        session_u = MeetingPointsSession(hasher=hasher, seed_source=CrsSeedSource(master_seed, (0, 1)))
        session_v = MeetingPointsSession(hasher=hasher, seed_source=CrsSeedSource(master_seed, (0, 1)))

        converged = False
        for iteration in range(80):
            message_u = session_u.build_message(iteration, transcript_u)
            message_v = session_v.build_message(iteration, transcript_v)
            outcome_u = session_u.process_reply(iteration, transcript_u, message_v)
            outcome_v = session_v.process_reply(iteration, transcript_v, message_u)
            if outcome_u.truncate_to is not None:
                transcript_u.truncate_to(outcome_u.truncate_to)
            if outcome_v.truncate_to is not None:
                transcript_v.truncate_to(outcome_v.truncate_to)
            if outcome_u.status == STATUS_SIMULATE and outcome_v.status == STATUS_SIMULATE:
                converged = True
                break

        assert converged, "meeting points failed to reconverge"
        # After convergence both sides hold the same (possibly shortened) prefix
        # of the common part; with a 14-bit hash collisions are negligible here.
        assert len(transcript_u) == len(transcript_v)
        assert transcript_u.matches_prefix(transcript_v)
        assert len(transcript_u) <= len(common)
