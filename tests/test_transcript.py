"""Tests for pairwise transcripts and chunk records."""

from __future__ import annotations

import pytest

from repro.core.transcript import ChunkRecord, LinkTranscript


def _record(index, view, received=()):
    return ChunkRecord(chunk_index=index, link_view=tuple(view), received_by_round=tuple(received))


class TestChunkRecord:
    def test_serialize_contains_chunk_number_and_symbols(self):
        record = _record(3, (1, 0, None))
        assert record.serialize() == "[3:10*]"

    def test_matches(self):
        assert _record(1, (1, 0)).matches(_record(1, (1, 0)))
        assert not _record(1, (1, 0)).matches(_record(2, (1, 0)))
        assert not _record(1, (1, 0)).matches(_record(1, (1, 1)))
        assert not _record(1, (1, None)).matches(_record(1, (1, 0)))


class TestLinkTranscript:
    def test_append_and_length(self):
        transcript = LinkTranscript(0, 1)
        assert len(transcript) == 0
        transcript.append(_record(1, (1,)))
        transcript.append(_record(2, (0,)))
        assert transcript.num_chunks == 2

    def test_truncate_to(self):
        transcript = LinkTranscript(0, 1)
        for index in range(1, 5):
            transcript.append(_record(index, (index % 2,)))
        dropped = transcript.truncate_to(2)
        assert dropped == 2
        assert len(transcript) == 2
        assert transcript.truncate_to(10) == 0
        with pytest.raises(ValueError):
            transcript.truncate_to(-1)

    def test_truncate_last(self):
        transcript = LinkTranscript(0, 1)
        transcript.append(_record(1, (1,)))
        transcript.append(_record(2, (0,)))
        assert transcript.truncate_last() == 1
        assert len(transcript) == 1
        assert transcript.truncate_last(5) == 1
        assert len(transcript) == 0

    def test_serialize_prefix(self):
        transcript = LinkTranscript(0, 1)
        transcript.append(_record(1, (1, 1)))
        transcript.append(_record(2, (0,)))
        assert transcript.serialize_prefix(1) == b"[1:11]"
        assert transcript.serialize_prefix() == b"[1:11][2:0]"
        assert transcript.serialize_prefix(99) == transcript.serialize_prefix()

    def test_matches_prefix_and_common_prefix(self):
        mine = LinkTranscript(0, 1)
        theirs = LinkTranscript(1, 0)
        for index in range(1, 4):
            mine.append(_record(index, (1, 0)))
            theirs.append(_record(index, (1, 0)))
        assert mine.matches_prefix(theirs)
        assert mine.common_prefix_chunks(theirs) == 3

        theirs.truncate_last()
        theirs.append(_record(3, (1, 1)))
        assert not mine.matches_prefix(theirs)
        assert mine.matches_prefix(theirs, 2)
        assert mine.common_prefix_chunks(theirs) == 2

    def test_matches_prefix_requires_length(self):
        mine = LinkTranscript(0, 1)
        theirs = LinkTranscript(1, 0)
        mine.append(_record(1, (1,)))
        assert not mine.matches_prefix(theirs, 1)

    def test_received_map_fills_deletions(self):
        transcript = LinkTranscript(0, 1)
        transcript.append(_record(1, (1, None), received=((4, 1), (5, None))))
        received = transcript.received_map()
        assert received == {(4, 1): 1, (5, 1): 0}

    def test_received_map_respects_chunk_bound(self):
        transcript = LinkTranscript(0, 1)
        transcript.append(_record(1, (1,), received=((0, 1),)))
        transcript.append(_record(2, (1,), received=((9, 0),)))
        assert transcript.received_map(max_chunk_index=1) == {(0, 1): 1}

    def test_facing_transcripts_differ_after_corruption(self):
        """A substitution on the wire shows up as a link-view mismatch."""
        sender_view = LinkTranscript(0, 1)
        receiver_view = LinkTranscript(1, 0)
        sender_view.append(_record(1, (1, 0)))      # what 0 sent
        receiver_view.append(_record(1, (1, 1)))    # what 1 received (second bit flipped)
        assert sender_view.common_prefix_chunks(receiver_view) == 0
