"""Unit and property tests for GF(2^r) arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.gf2m import GF2m, carryless_multiply


class TestCarrylessMultiply:
    def test_known_values(self):
        # (x + 1) * (x + 1) = x^2 + 1 over GF(2)
        assert carryless_multiply(0b11, 0b11) == 0b101
        assert carryless_multiply(0b10, 0b10) == 0b100
        assert carryless_multiply(5, 0) == 0

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_commutative(self, a, b):
        assert carryless_multiply(a, b) == carryless_multiply(b, a)

    @given(st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1))
    def test_distributive_over_xor(self, a, b, c):
        assert carryless_multiply(a, b ^ c) == carryless_multiply(a, b) ^ carryless_multiply(a, c)


class TestField:
    def test_supported_degrees(self):
        for degree in (8, 16, 32, 64, 128):
            field = GF2m(degree)
            assert field.order == 1 << degree

    def test_unsupported_degree(self):
        with pytest.raises(ValueError):
            GF2m(7)

    def test_reduce_keeps_degree(self):
        field = GF2m(8)
        assert field.reduce(field.modulus) < field.order

    def test_element_range_checked(self):
        field = GF2m(8)
        with pytest.raises(ValueError):
            field.mul(256, 1)

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_mul_commutative_16(self, a, b):
        field = GF2m(16)
        assert field.mul(a, b) == field.mul(b, a)

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    @settings(max_examples=50)
    def test_mul_associative_16(self, a, b, c):
        field = GF2m(16)
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    @given(st.integers(0, 2**16 - 1))
    def test_identity(self, a):
        field = GF2m(16)
        assert field.mul(a, 1) == a
        assert field.mul(a, 0) == 0

    @given(st.integers(1, 2**16 - 1), st.integers(0, 40))
    @settings(max_examples=50)
    def test_pow_matches_iterated_mul(self, a, exponent):
        field = GF2m(16)
        expected = 1
        for _ in range(exponent):
            expected = field.mul(expected, a)
        assert field.pow(a, exponent) == expected

    def test_pow_negative_exponent(self):
        with pytest.raises(ValueError):
            GF2m(16).pow(3, -1)

    def test_inner_product_bit(self):
        assert GF2m.inner_product_bit(0b1011, 0b0011) == 0
        assert GF2m.inner_product_bit(0b1011, 0b0001) == 1

    def test_multiplicative_order_divides_group_order_gf8(self):
        # In GF(2^8), x^(2^8 - 1) = 1 for every non-zero x.
        field = GF2m(8)
        for element in (1, 2, 3, 91, 200, 255):
            assert field.pow(element, field.order - 1) == 1
