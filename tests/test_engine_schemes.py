"""Integration tests for the Algorithm A/B/C presets and their noise regimes."""

from __future__ import annotations

import pytest

from repro.adversary.strategies import (
    LinkTargetedAdversary,
    PhaseTargetedAdaptiveAdversary,
    RandomNoiseAdversary,
    RotatingLinkAdaptiveAdversary,
)
from repro.core.engine import simulate
from repro.core.parameters import algorithm_a, algorithm_b, algorithm_c, crs_oblivious_scheme
from repro.network.topologies import complete_topology, star_topology
from repro.protocols.gossip import ParityGossipProtocol


@pytest.fixture
def gossip_star5():
    graph = star_topology(5)
    return ParityGossipProtocol(graph, {i: i % 2 for i in range(5)}, phases=6)


class TestAlgorithmA:
    """No CRS, oblivious noise at ~eps/m (Theorem 5.1)."""

    def test_oblivious_noise_at_nominal_level(self, gossip_line5):
        graph = gossip_line5.graph
        fraction = algorithm_a().nominal_noise_fraction(graph, epsilon=0.01)
        adversary = RandomNoiseAdversary(
            corruption_probability=fraction, insertion_probability=fraction / 4, seed=21
        )
        result = simulate(gossip_line5, scheme=algorithm_a(), adversary=adversary, seed=21)
        assert result.success
        assert result.metrics.randomness_exchange_failures == 0

    def test_attack_on_randomness_exchange_is_contained(self, gossip_line5):
        """Corrupting one link's seed exchange breaks that link, not the scheme's accounting."""
        adversary = LinkTargetedAdversary(
            target=(0, 1), phases=("randomness_exchange",), max_corruptions=10_000, seed=22
        )
        result = simulate(gossip_line5, scheme=algorithm_a(), adversary=adversary, seed=22)
        assert result.metrics.randomness_exchange_failures == 1
        # The run is allowed to fail (the paper charges this attack against a
        # budget the adversary does not have); the engine must stay well-defined.
        assert result.iterations_run <= result.iterations_budget

    def test_different_seeds_different_noise_realisations(self, gossip_line5):
        results = set()
        for seed in (31, 32):
            adversary = RandomNoiseAdversary(corruption_probability=0.003, seed=seed)
            result = simulate(gossip_line5, scheme=algorithm_a(), adversary=adversary, seed=seed)
            results.add(result.metrics.simulation_communication)
        assert len(results) >= 1  # both runs complete; realisations typically differ


class TestAlgorithmB:
    """No CRS, non-oblivious noise at ~eps/(m log m), Θ(log m) hashes (Theorem 6.1)."""

    def test_hash_length_scales_with_m(self):
        graph = complete_topology(6)  # m = 15
        assert algorithm_b().hash_output_bits(graph) >= 8
        assert algorithm_b().scale_k(graph) == 15 * 4

    def test_adaptive_phase_attack(self, gossip_line5):
        graph = gossip_line5.graph
        fraction = algorithm_b().nominal_noise_fraction(graph, epsilon=0.01)
        adversary = PhaseTargetedAdaptiveAdversary(
            fraction=fraction, phases=("meeting_points", "simulation"), seed=41
        )
        result = simulate(gossip_line5, scheme=algorithm_b(), adversary=adversary, seed=41)
        assert result.success

    def test_adaptive_rotating_attack(self, gossip_star5):
        graph = gossip_star5.graph
        fraction = algorithm_b().nominal_noise_fraction(graph, epsilon=0.01)
        adversary = RotatingLinkAdaptiveAdversary(
            links=tuple(graph.directed_edges()), fraction=fraction, seed=42
        )
        result = simulate(gossip_star5, scheme=algorithm_b(), adversary=adversary, seed=42)
        assert result.success


class TestAlgorithmC:
    """CRS, non-oblivious noise at ~eps/(m log log m) (Appendix B)."""

    def test_uses_crs(self, gossip_line5):
        result = simulate(gossip_line5, scheme=algorithm_c(), seed=51)
        assert result.success
        assert "randomness_exchange" not in result.metrics.communication_by_phase

    def test_adaptive_attack_at_nominal_level(self, gossip_line5):
        graph = gossip_line5.graph
        fraction = algorithm_c().nominal_noise_fraction(graph, epsilon=0.01)
        adversary = PhaseTargetedAdaptiveAdversary(
            fraction=fraction, phases=("meeting_points", "flag_passing", "simulation"), seed=52
        )
        result = simulate(gossip_line5, scheme=algorithm_c(), adversary=adversary, seed=52)
        assert result.success


class TestCrossSchemeShape:
    def test_chunk_scale_ordering(self):
        graph = complete_topology(6)
        assert (
            crs_oblivious_scheme().scale_k(graph)
            == algorithm_a().scale_k(graph)
            < algorithm_c().scale_k(graph)
            < algorithm_b().scale_k(graph)
        )

    def test_nominal_noise_ordering_matches_table1(self):
        graph = complete_topology(6)
        assert (
            algorithm_a().nominal_noise_fraction(graph)
            > algorithm_c().nominal_noise_fraction(graph)
            > algorithm_b().nominal_noise_fraction(graph)
        )

    @pytest.mark.parametrize("factory", [algorithm_a, algorithm_b, algorithm_c])
    def test_all_schemes_handle_a_single_error(self, factory, gossip_line5):
        adversary = LinkTargetedAdversary(
            target=(2, 3), phases=("simulation",), max_corruptions=1, seed=61
        )
        result = simulate(gossip_line5, scheme=factory(), adversary=adversary, seed=61)
        assert result.success
